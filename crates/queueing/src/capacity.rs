//! Inverse capacity solvers: "how many instances do this load and this
//! target require?".
//!
//! Two flavours are used throughout the reproduction:
//!
//! * **utilization targets** — what the paper's Algorithm 1 does: grow or
//!   shrink `n` until `ρ = λ·s/n` falls inside `[ρ_lower, ρ_upper)`;
//! * **response-time (SLO) targets** — what the ground-truth *demand curve*
//!   `d_t` of the elasticity metrics needs: the minimal `n` such that the
//!   M/M/n mean response time meets the SLO.

use crate::erlang::ErlangSweep;
use crate::error::QueueingError;
use crate::mmn::MmnQueue;

/// Converts an instance count computed in `f64` to `u32`, saturating at the
/// bounds (non-positive and NaN map to 0, overflow to `u32::MAX`). This is
/// the designated place where capacity math narrows a float to an integer
/// count, so every call site inherits the range check.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
#[must_use]
pub fn saturating_f64_to_u32(value: f64) -> u32 {
    if !(value > 0.0) {
        0
    } else if value >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        // audit:allow(lossy-cast): value checked non-negative and < u32::MAX above
        value as u32
    }
}

/// Minimal number of instances such that the utilization `λ·s/n` does not
/// exceed `target_utilization`, never less than 1.
///
/// This is the closed-form core of the paper's Algorithm 1 while-loops:
/// repeatedly incrementing `n` until `ρ < ρ_upper` lands on exactly
/// `ceil(λ·s / ρ_upper)`.
///
/// Degenerate inputs are forgiving by design (monitoring data can be noisy):
/// a non-positive or NaN arrival rate or service demand yields 1, and an
/// invalid utilization target (NaN, infinite, or ≤ 0) is treated as 1.0 —
/// the same policy `scalers` applies to `ScalerInput`, so every layer agrees
/// on what a broken target means instead of one clamping to `f64::EPSILON`
/// and demanding `u32::MAX` instances.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::capacity::min_instances_for_utilization;
///
/// // 200 req/s at 0.1 s demand and 80% target => 25 instances.
/// assert_eq!(min_instances_for_utilization(200.0, 0.1, 0.8), 25);
/// // An idle service still needs one instance.
/// assert_eq!(min_instances_for_utilization(0.0, 0.1, 0.8), 1);
/// ```
#[inline]
pub fn min_instances_for_utilization(
    arrival_rate: f64,
    service_demand: f64,
    target_utilization: f64,
) -> u32 {
    if !(arrival_rate > 0.0) || !(service_demand > 0.0) {
        return 1;
    }
    let target = if target_utilization.is_finite() && target_utilization > 0.0 {
        target_utilization.min(1.0)
    } else {
        1.0
    };
    let raw = arrival_rate * service_demand / target;
    // Guard the ceil against round-off on exact integer boundaries: treat
    // values within 1e-9 of an integer as that integer.
    let snapped = if (raw - raw.round()).abs() < 1e-9 {
        raw.round()
    } else {
        raw.ceil()
    };
    saturating_f64_to_u32(snapped).max(1)
}

/// Minimal number of instances such that the M/M/n mean response time is at
/// most `response_time_target` seconds, searched within `max_instances`.
///
/// Used to derive the ground-truth demand curve `d_t` — "the minimal amount
/// of resources required to meet the SLOs under the load intensity at time
/// `t`" (§IV-D).
///
/// # Errors
///
/// * [`QueueingError::NonPositive`] if the service demand or target is not
///   positive.
/// * [`QueueingError::Infeasible`] if the target is below the bare service
///   demand (no amount of horizontal scaling can beat `s`) — `required` is
///   `None`, no finite count works — or if more than `max_instances` would
///   be required, in which case `required` carries the *true minimal*
///   feasible count: feeding it back as `max_instances` is guaranteed to
///   succeed and return exactly that count (round-trip property).
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::capacity::min_instances_for_response_time;
///
/// let n = min_instances_for_response_time(100.0, 0.1, 0.5, 1000)?;
/// assert!(n >= 11); // at least the stability bound ceil(10 Erlangs) + 1
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
pub fn min_instances_for_response_time(
    arrival_rate: f64,
    service_demand: f64,
    response_time_target: f64,
    max_instances: u32,
) -> Result<u32, QueueingError> {
    if !(service_demand > 0.0) {
        return Err(QueueingError::NonPositive {
            name: "service_demand",
            value: service_demand,
        });
    }
    if !(response_time_target > 0.0) {
        return Err(QueueingError::NonPositive {
            name: "response_time_target",
            value: response_time_target,
        });
    }
    if !(arrival_rate > 0.0) {
        return Ok(1);
    }
    if response_time_target < service_demand {
        return Err(QueueingError::Infeasible {
            required: None,
            max_allowed: max_instances,
        });
    }
    incremental_search(
        arrival_rate,
        service_demand,
        response_time_target,
        max_instances,
        |c, n| {
            // MmnQueue::mean_response_time, op for op: E[W_q] + s with
            // E[W_q] = C(n, a) / (n·μ − λ) and μ = 1/s.
            c / (f64::from(n) * (1.0 / service_demand) - arrival_rate) + service_demand
        },
    )
}

/// Minimal number of instances such that the approximate `p`-quantile of
/// the M/M/n response time is at most `response_time_target` seconds.
///
/// This is the solver behind the ground-truth demand curve: an SLO on
/// response time is violated *per request*, so meeting it "most of the
/// time" requires bounding a quantile, not the mean — near saturation the
/// mean can satisfy the target while a third of the requests miss it.
///
/// # Errors
///
/// Same contract as [`min_instances_for_response_time`], plus
/// [`QueueingError::OutOfRange`] for `p` outside `(0, 1)`.
pub fn min_instances_for_response_time_quantile(
    arrival_rate: f64,
    service_demand: f64,
    response_time_target: f64,
    p: f64,
    max_instances: u32,
) -> Result<u32, QueueingError> {
    if !(p > 0.0 && p < 1.0) {
        return Err(QueueingError::OutOfRange {
            name: "quantile",
            value: p,
        });
    }
    if !(service_demand > 0.0) {
        return Err(QueueingError::NonPositive {
            name: "service_demand",
            value: service_demand,
        });
    }
    if !(response_time_target > 0.0) {
        return Err(QueueingError::NonPositive {
            name: "response_time_target",
            value: response_time_target,
        });
    }
    if !(arrival_rate > 0.0) {
        return Ok(1);
    }
    if response_time_target < service_demand {
        return Err(QueueingError::Infeasible {
            required: None,
            max_allowed: max_instances,
        });
    }
    incremental_search(
        arrival_rate,
        service_demand,
        response_time_target,
        max_instances,
        |c, n| {
            // MmnQueue::response_time_quantile, op for op: the waiting-time
            // quantile ln(C/(1−p)) / (n·μ − λ) (0 when C ≤ 1−p) plus s.
            let wait = if c <= 1.0 - p {
                0.0
            } else {
                (c / (1.0 - p)).ln() / (f64::from(n) * (1.0 / service_demand) - arrival_rate)
            };
            wait + service_demand
        },
    )
}

/// The shared incremental search: walks `n` upward from the stability
/// bound, carrying the Erlang recurrence state in an [`ErlangSweep`] so the
/// whole search costs O(n_final) recurrence steps instead of the O(n²) of
/// re-deriving the blocking probability from scratch per candidate.
///
/// `metric(c, n)` maps the Erlang-C waiting probability at `n` servers to
/// the response-time measure under test; it must replicate the
/// corresponding [`MmnQueue`] accessor bit-for-bit, which keeps this search
/// bit-equal to the naive [`naive`] reference (pinned by property tests).
fn incremental_search<M>(
    arrival_rate: f64,
    service_demand: f64,
    response_time_target: f64,
    max_instances: u32,
    metric: M,
) -> Result<u32, QueueingError>
where
    M: Fn(f64, u32) -> f64,
{
    // Stability requires n > a; start the search there.
    let a = arrival_rate * service_demand;
    let stability_bound = saturating_f64_to_u32(a.floor()).saturating_add(1).max(1);
    let mut sweep = ErlangSweep::new(a)?;
    sweep.advance_to(stability_bound);
    let mut n = stability_bound;
    // Walk upward until the metric first meets the target. The walk does
    // not stop at `max_instances`: past the budget it keeps going so that
    // `Infeasible::required` reports the *true* minimal count — a bound
    // that round-trips when fed back as the budget. Termination is
    // guaranteed because the Erlang-C probability decays to zero as `n`
    // grows, driving every supported metric down to the bare demand `s`
    // (and targets below `s` are rejected before this search runs).
    let minimal = loop {
        if let Ok(c) = sweep.waiting() {
            if metric(c, n) <= response_time_target {
                break Some(n);
            }
        }
        if n == u32::MAX {
            break None;
        }
        n = n.saturating_add(1);
        sweep.advance_to(n);
    };
    match minimal {
        Some(n) if n <= max_instances => Ok(n),
        required => Err(QueueingError::Infeasible {
            required,
            max_allowed: max_instances,
        }),
    }
}

/// The largest arrival rate `n` instances can absorb while keeping the
/// utilization at or below `target_utilization`: `λ_max = n·ρ_target / s`.
///
/// This is the "maximum arrival rate that can be served by the bottleneck
/// service" used when the paper caps the rate forwarded to downstream
/// services (Algorithm 1, line 5, and the baseline chain-input formula).
///
/// Degenerate inputs (non-positive demand, zero servers) yield 0. An
/// invalid utilization target (NaN, infinite, or ≤ 0) is treated as 1.0 —
/// the same policy as [`min_instances_for_utilization`]; returning 0 here
/// would zero out the chain-input cap and silently starve every downstream
/// service of forwarded load.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::capacity::max_arrival_rate_for_utilization;
///
/// // 10 validation instances at full capacity serve 100 req/s.
/// let max = max_arrival_rate_for_utilization(10, 0.1, 1.0);
/// assert!((max - 100.0).abs() < 1e-12);
/// ```
pub fn max_arrival_rate_for_utilization(
    servers: u32,
    service_demand: f64,
    target_utilization: f64,
) -> f64 {
    if servers == 0 || !(service_demand > 0.0) {
        return 0.0;
    }
    // Clamp the target into (0, 1] like `min_instances_for_utilization`
    // does: a target above full utilization would claim capacity the
    // instances do not have, inflating the chain-input cap
    // `r(i) = min(r(i-1), n(i-1)/s(i-1))`; an invalid target means "the
    // instances' real capacity", not "no capacity".
    let target = if target_utilization.is_finite() && target_utilization > 0.0 {
        target_utilization.min(1.0)
    } else {
        1.0
    };
    f64::from(servers) * target / service_demand
}

/// The original O(n²) reference searches, retained verbatim so property
/// tests can pin the incremental solvers bit-equal to them and so the
/// solver microbenchmark has a faithful "before" baseline.
///
/// These rebuild the Erlang-B recurrence from `k = 1` for every candidate
/// `n` via a fresh [`MmnQueue`]; production code should use the
/// incremental entry points in the parent module instead.
pub mod naive {
    use super::{saturating_f64_to_u32, MmnQueue, QueueingError};

    /// Reference implementation of
    /// [`min_instances_for_response_time`](super::min_instances_for_response_time):
    /// identical contract and — by construction — identical results,
    /// at O(n²) recurrence cost.
    ///
    /// # Errors
    ///
    /// Same contract as the incremental solver.
    pub fn min_instances_for_response_time(
        arrival_rate: f64,
        service_demand: f64,
        response_time_target: f64,
        max_instances: u32,
    ) -> Result<u32, QueueingError> {
        if !(service_demand > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "service_demand",
                value: service_demand,
            });
        }
        if !(response_time_target > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "response_time_target",
                value: response_time_target,
            });
        }
        if !(arrival_rate > 0.0) {
            return Ok(1);
        }
        if response_time_target < service_demand {
            return Err(QueueingError::Infeasible {
                required: None,
                max_allowed: max_instances,
            });
        }
        let a = arrival_rate * service_demand;
        let stability_bound = saturating_f64_to_u32(a.floor()).saturating_add(1).max(1);
        let mut n = stability_bound;
        // Like the incremental solver, the walk continues past the budget
        // so `Infeasible::required` reports the true minimal count.
        let minimal = loop {
            let station = MmnQueue::new(arrival_rate, service_demand, n)?;
            if let Ok(r) = station.mean_response_time() {
                if r <= response_time_target {
                    break Some(n);
                }
            }
            if n == u32::MAX {
                break None;
            }
            n = n.saturating_add(1);
        };
        match minimal {
            Some(n) if n <= max_instances => Ok(n),
            required => Err(QueueingError::Infeasible {
                required,
                max_allowed: max_instances,
            }),
        }
    }

    /// Reference implementation of
    /// [`min_instances_for_response_time_quantile`](super::min_instances_for_response_time_quantile),
    /// at O(n²) recurrence cost.
    ///
    /// # Errors
    ///
    /// Same contract as the incremental solver.
    pub fn min_instances_for_response_time_quantile(
        arrival_rate: f64,
        service_demand: f64,
        response_time_target: f64,
        p: f64,
        max_instances: u32,
    ) -> Result<u32, QueueingError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(QueueingError::OutOfRange {
                name: "quantile",
                value: p,
            });
        }
        if !(service_demand > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "service_demand",
                value: service_demand,
            });
        }
        if !(response_time_target > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "response_time_target",
                value: response_time_target,
            });
        }
        if !(arrival_rate > 0.0) {
            return Ok(1);
        }
        if response_time_target < service_demand {
            return Err(QueueingError::Infeasible {
                required: None,
                max_allowed: max_instances,
            });
        }
        let a = arrival_rate * service_demand;
        let stability_bound = saturating_f64_to_u32(a.floor()).saturating_add(1).max(1);
        let mut n = stability_bound;
        let minimal = loop {
            let station = MmnQueue::new(arrival_rate, service_demand, n)?;
            if let Ok(r) = station.response_time_quantile(p) {
                if r <= response_time_target {
                    break Some(n);
                }
            }
            if n == u32::MAX {
                break None;
            }
            n = n.saturating_add(1);
        };
        match minimal {
            Some(n) if n <= max_instances => Ok(n),
            required => Err(QueueingError::Infeasible {
                required,
                max_allowed: max_instances,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_solver_matches_ceil_formula() {
        assert_eq!(min_instances_for_utilization(85.0, 0.1, 0.8), 11);
        assert_eq!(min_instances_for_utilization(200.0, 0.1, 0.8), 25);
        assert_eq!(min_instances_for_utilization(17.0, 0.059, 0.85), 2);
    }

    #[test]
    fn utilization_solver_exact_boundary_not_overshot() {
        // 80 req/s * 0.1 s / 0.8 = exactly 10 instances.
        assert_eq!(min_instances_for_utilization(80.0, 0.1, 0.8), 10);
    }

    #[test]
    fn utilization_solver_minimum_is_one() {
        assert_eq!(min_instances_for_utilization(0.0, 0.1, 0.8), 1);
        assert_eq!(min_instances_for_utilization(-5.0, 0.1, 0.8), 1);
        assert_eq!(min_instances_for_utilization(0.001, 0.1, 0.8), 1);
        assert_eq!(min_instances_for_utilization(f64::NAN, 0.1, 0.8), 1);
    }

    #[test]
    fn utilization_solver_clamps_target() {
        // Target > 1 behaves like 1 (full utilization allowed).
        assert_eq!(min_instances_for_utilization(100.0, 0.1, 5.0), 10);
        assert_eq!(min_instances_for_utilization(100.0, 0.1, f64::NAN), 10);
    }

    #[test]
    fn utilization_solver_treats_non_positive_target_as_full_utilization() {
        // Regression: a target of 0 or below used to be clamped to
        // `f64::EPSILON`, demanding u32::MAX instances for any load.
        // The unified policy treats every invalid target as 1.0.
        assert_eq!(min_instances_for_utilization(100.0, 0.1, 0.0), 10);
        assert_eq!(min_instances_for_utilization(100.0, 0.1, -0.5), 10);
        assert_eq!(
            min_instances_for_utilization(100.0, 0.1, f64::NEG_INFINITY),
            10
        );
        assert_eq!(min_instances_for_utilization(100.0, 0.1, f64::INFINITY), 10);
    }

    #[test]
    fn utilization_solver_result_meets_target() {
        for &(lambda, s, rho) in &[
            (12.3, 0.059, 0.75),
            (456.0, 0.04, 0.9),
            (99.9, 0.1, 0.5),
            (1.0, 2.0, 0.66),
        ] {
            let n = min_instances_for_utilization(lambda, s, rho);
            let util = lambda * s / f64::from(n);
            assert!(util <= rho + 1e-9, "lambda={lambda} s={s} rho={rho} n={n}");
            // Minimality: one fewer instance would violate the target
            // (unless already at the floor of 1).
            if n > 1 {
                let util_less = lambda * s / f64::from(n - 1);
                assert!(util_less > rho, "not minimal for lambda={lambda}");
            }
        }
    }

    #[test]
    fn response_time_solver_meets_slo_and_is_minimal() {
        let n = min_instances_for_response_time(100.0, 0.1, 0.15, 1000).unwrap();
        let ok = MmnQueue::new(100.0, 0.1, n)
            .unwrap()
            .mean_response_time()
            .unwrap();
        assert!(ok <= 0.15);
        if n > 1 {
            let worse = MmnQueue::new(100.0, 0.1, n - 1).unwrap();
            let violated = match worse.mean_response_time() {
                Ok(r) => r > 0.15,
                Err(_) => true, // unstable also violates
            };
            assert!(violated);
        }
    }

    #[test]
    fn response_time_solver_idle_needs_one() {
        assert_eq!(
            min_instances_for_response_time(0.0, 0.1, 0.5, 100).unwrap(),
            1
        );
    }

    #[test]
    fn response_time_solver_rejects_impossible_target() {
        // Cannot reach 0.05 s when the bare demand is 0.1 s.
        assert!(matches!(
            min_instances_for_response_time(10.0, 0.1, 0.05, 100),
            Err(QueueingError::Infeasible { .. })
        ));
    }

    #[test]
    fn response_time_solver_respects_max_instances() {
        assert!(matches!(
            min_instances_for_response_time(1000.0, 0.1, 0.11, 50),
            Err(QueueingError::Infeasible {
                max_allowed: 50,
                ..
            })
        ));
    }

    #[test]
    fn response_time_solver_rejects_bad_inputs() {
        assert!(min_instances_for_response_time(10.0, 0.0, 0.5, 100).is_err());
        assert!(min_instances_for_response_time(10.0, 0.1, 0.0, 100).is_err());
        assert!(min_instances_for_response_time(10.0, 0.1, -1.0, 100).is_err());
    }

    #[test]
    fn quantile_solver_needs_more_than_mean_solver() {
        // Bounding the 90th percentile requires at least as many instances
        // as bounding the mean.
        for &lambda in &[50.0, 150.0, 400.0] {
            let mean_n = min_instances_for_response_time(lambda, 0.1, 0.2, 10_000).unwrap();
            let q_n =
                min_instances_for_response_time_quantile(lambda, 0.1, 0.2, 0.9, 10_000).unwrap();
            assert!(q_n >= mean_n, "lambda={lambda}: {q_n} vs {mean_n}");
        }
    }

    #[test]
    fn quantile_solver_meets_target() {
        let n = min_instances_for_response_time_quantile(150.0, 0.1, 0.25, 0.9, 10_000).unwrap();
        let q = MmnQueue::new(150.0, 0.1, n).unwrap();
        assert!(q.response_time_quantile(0.9).unwrap() <= 0.25);
        if n > 1 {
            let worse = MmnQueue::new(150.0, 0.1, n - 1).unwrap();
            let violated = match worse.response_time_quantile(0.9) {
                Ok(r) => r > 0.25,
                Err(_) => true,
            };
            assert!(violated, "not minimal");
        }
    }

    #[test]
    fn quantile_solver_validates_inputs() {
        assert!(min_instances_for_response_time_quantile(10.0, 0.1, 0.5, 0.0, 100).is_err());
        assert!(min_instances_for_response_time_quantile(10.0, 0.1, 0.5, 1.0, 100).is_err());
        assert!(min_instances_for_response_time_quantile(10.0, 0.1, 0.05, 0.9, 100).is_err());
        assert_eq!(
            min_instances_for_response_time_quantile(0.0, 0.1, 0.5, 0.9, 100).unwrap(),
            1
        );
    }

    #[test]
    fn max_rate_inverse_of_min_instances() {
        let lambda = max_arrival_rate_for_utilization(25, 0.1, 0.8);
        assert_eq!(min_instances_for_utilization(lambda, 0.1, 0.8), 25);
    }

    #[test]
    fn max_rate_degenerate_inputs() {
        assert_eq!(max_arrival_rate_for_utilization(0, 0.1, 0.8), 0.0);
        assert_eq!(max_arrival_rate_for_utilization(5, 0.0, 0.8), 0.0);
        // An invalid *target* no longer zeroes the rate — that would starve
        // every downstream service; it falls back to full utilization, the
        // same policy as the instance solver.
        let full = max_arrival_rate_for_utilization(5, 0.1, 1.0);
        assert_eq!(max_arrival_rate_for_utilization(5, 0.1, 0.0), full);
        assert_eq!(max_arrival_rate_for_utilization(5, 0.1, f64::NAN), full);
        assert_eq!(
            max_arrival_rate_for_utilization(5, 0.1, f64::INFINITY),
            full
        );
    }

    #[test]
    fn max_rate_clamps_target_above_full_utilization() {
        // A target of 5.0 must not claim 5× the real capacity: it behaves
        // like full utilization, the same clamp the instance solver applies.
        let clamped = max_arrival_rate_for_utilization(10, 0.1, 5.0);
        let full = max_arrival_rate_for_utilization(10, 0.1, 1.0);
        assert_eq!(clamped, full);
        assert!((clamped - 100.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_reports_true_minimum() {
        // 1000 req/s · 0.1 s = 100 Erlangs: stability needs ≥ 101, more
        // than the 50 allowed — the error reports the count that actually
        // meets the target, not just the stability bound.
        let unconstrained = min_instances_for_response_time(1000.0, 0.1, 0.11, u32::MAX).unwrap();
        match min_instances_for_response_time(1000.0, 0.1, 0.11, 50) {
            Err(QueueingError::Infeasible {
                required,
                max_allowed,
            }) => {
                assert_eq!(required, Some(unconstrained));
                assert!(
                    unconstrained > 101,
                    "target 0.11 needs headroom over stability"
                );
                assert_eq!(max_allowed, 50);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
        let q_unconstrained =
            min_instances_for_response_time_quantile(1000.0, 0.1, 0.11, 0.9, u32::MAX).unwrap();
        match min_instances_for_response_time_quantile(1000.0, 0.1, 0.11, 0.9, 50) {
            Err(QueueingError::Infeasible { required, .. }) => {
                assert_eq!(required, Some(q_unconstrained));
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
        // An impossible target (below the bare demand) stays `None`: no
        // finite instance count works at all.
        match min_instances_for_response_time(10.0, 0.1, 0.05, 100) {
            Err(QueueingError::Infeasible { required, .. }) => assert_eq!(required, None),
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_required_round_trips() {
        // Regression: the reported `required` used to be the stability
        // bound `⌊λ·s⌋ + 1`, which could be *rejected* when fed back as
        // the budget. The contract now is a round-trip: re-solving with
        // `required` as `max_instances` succeeds and returns `required`.
        for &(lambda, s, t) in &[
            (1000.0, 0.1, 0.11),
            (456.0, 0.04, 0.041),
            (85.0, 0.1, 0.101),
            (150.0, 0.059, 0.06),
        ] {
            let Err(QueueingError::Infeasible {
                required: Some(req),
                ..
            }) = min_instances_for_response_time(lambda, s, t, 1)
            else {
                panic!("expected Infeasible with required for λ={lambda}");
            };
            assert_eq!(
                min_instances_for_response_time(lambda, s, t, req),
                Ok(req),
                "λ={lambda} s={s} t={t}: required={req} does not round-trip"
            );
            let Err(QueueingError::Infeasible {
                required: Some(qreq),
                ..
            }) = min_instances_for_response_time_quantile(lambda, s, t, 0.9, 1)
            else {
                panic!("expected Infeasible with required (quantile) for λ={lambda}");
            };
            assert_eq!(
                min_instances_for_response_time_quantile(lambda, s, t, 0.9, qreq),
                Ok(qreq),
                "quantile λ={lambda} s={s} t={t}: required={qreq} does not round-trip"
            );
        }
    }

    #[test]
    fn incremental_matches_naive_on_grid() {
        for &lambda in &[0.5, 17.0, 85.0, 150.0, 456.0, 1000.0] {
            for &s in &[0.04, 0.059, 0.1, 1.0] {
                for &target in &[0.05, 0.12, 0.25, 0.5, 2.0] {
                    let fast = min_instances_for_response_time(lambda, s, target, 500);
                    let slow = naive::min_instances_for_response_time(lambda, s, target, 500);
                    assert_eq!(fast, slow, "mean λ={lambda} s={s} t={target}");
                    for &p in &[0.5, 0.9, 0.99] {
                        let fast =
                            min_instances_for_response_time_quantile(lambda, s, target, p, 500);
                        let slow = naive::min_instances_for_response_time_quantile(
                            lambda, s, target, p, 500,
                        );
                        assert_eq!(fast, slow, "q λ={lambda} s={s} t={target} p={p}");
                    }
                }
            }
        }
    }
}
