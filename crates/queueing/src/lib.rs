//! Queueing-theory primitives for the Chamulteon reproduction.
//!
//! Chamulteon (ICDCS 2019, §III-B) sizes every micro-service by transforming
//! the descriptive performance model into a product-form queueing network in
//! which each service is an M/M/n/∞ station. This crate provides the pieces
//! of that transformation:
//!
//! * [`erlang`] — numerically stable Erlang-B and Erlang-C formulas,
//! * [`mmn`] — the [`MmnQueue`] station model (utilization,
//!   waiting probability, expected response time, queue lengths),
//! * [`capacity`] — inverse solvers ("how many instances do I need?") used
//!   both by the auto-scalers and by the ground-truth demand curve of the
//!   elasticity metrics,
//! * [`network`] — open tandem networks of M/M/n stations for end-to-end
//!   response-time analysis and bottleneck identification.
//!
//! # Example
//!
//! Size the paper's validation service (service demand 0.1 s) for a predicted
//! arrival rate of 85 req/s and a target utilization of 0.8:
//!
//! ```
//! use chamulteon_queueing::capacity::min_instances_for_utilization;
//!
//! let n = min_instances_for_utilization(85.0, 0.1, 0.8);
//! assert_eq!(n, 11); // ceil(85 * 0.1 / 0.8)
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

/// Quantized-key memoization for the capacity solvers.
pub mod cache;
/// Inverse capacity solvers: instances needed for a load and an SLO.
pub mod capacity;
/// Erlang-B and Erlang-C formulas.
pub mod erlang;
/// Error types for queueing computations.
pub mod error;
/// The M/M/n/∞ station model used for every micro-service.
pub mod mmn;
/// Open tandem networks of M/M/n stations.
pub mod network;

pub use cache::{CacheStats, CapacityCache, UtilizationCornerSolver};
pub use capacity::{
    max_arrival_rate_for_utilization, min_instances_for_response_time,
    min_instances_for_response_time_quantile, min_instances_for_utilization,
};
pub use erlang::{erlang_b, erlang_c, ErlangSweep};
pub use error::QueueingError;
pub use mmn::MmnQueue;
pub use network::{StationSpec, TandemNetwork};
