//! Erlang-B and Erlang-C formulas.
//!
//! Both are computed with the classical recurrence on the Erlang-B blocking
//! probability, which is numerically stable for large server counts and
//! offered loads (no factorials or large powers are ever formed):
//!
//! ```text
//! B(0, a) = 1
//! B(k, a) = a·B(k-1, a) / (k + a·B(k-1, a))
//! C(n, a) = n·B(n, a) / (n - a·(1 - B(n, a)))
//! ```

use crate::error::QueueingError;

/// Erlang-B blocking probability for `n` servers and offered load `a`
/// (in Erlangs, i.e. `a = λ·s` for arrival rate `λ` and mean service time
/// `s`).
///
/// This is the probability that an arriving request finds all `n` servers
/// busy in an M/M/n/n loss system. The value always lies in `[0, 1]` and is
/// defined for any `a ≥ 0` (a loss system is always stable).
///
/// # Errors
///
/// Returns [`QueueingError::NonPositive`] if `a` is negative or NaN and
/// [`QueueingError::OutOfRange`] if `n` is zero.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::erlang::erlang_b;
///
/// // Classic telephony example: 10 Erlangs offered to 12 trunks.
/// let b = erlang_b(12, 10.0)?;
/// assert!((b - 0.1196).abs() < 1e-3);
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
pub fn erlang_b(n: u32, a: f64) -> Result<f64, QueueingError> {
    if !(a >= 0.0) {
        return Err(QueueingError::NonPositive {
            name: "offered_load",
            value: a,
        });
    }
    if n == 0 {
        return Err(QueueingError::OutOfRange {
            name: "servers",
            value: 0.0,
        });
    }
    if a == 0.0 {
        return Ok(0.0);
    }
    let mut b = 1.0_f64;
    for k in 1..=n {
        b = a * b / (f64::from(k) + a * b);
    }
    Ok(b)
}

/// Erlang-C waiting probability for `n` servers and offered load `a`
/// (in Erlangs).
///
/// This is the probability that an arriving request has to wait in an
/// M/M/n/∞ delay system. The value lies in `[0, 1]`.
///
/// # Errors
///
/// Returns [`QueueingError::Unstable`] when `a ≥ n` (the delay system has no
/// steady state), and propagates the input-validation errors of
/// [`erlang_b`].
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::erlang::erlang_c;
///
/// // 2 servers, offered load 1 Erlang => P(wait) = 1/3.
/// let c = erlang_c(2, 1.0)?;
/// assert!((c - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
pub fn erlang_c(n: u32, a: f64) -> Result<f64, QueueingError> {
    let b = erlang_b(n, a)?;
    let n_f = f64::from(n);
    if a >= n_f {
        return Err(QueueingError::Unstable {
            offered_load: a,
            servers: n,
        });
    }
    let c = n_f * b / (n_f - a * (1.0 - b));
    // Clamp tiny negative round-off; mathematically c ∈ [0, 1].
    Ok(c.clamp(0.0, 1.0))
}

/// Incremental Erlang-B/C evaluator: carries the blocking-probability
/// recurrence state across successive server counts, so sweeping
/// `n = 1, 2, …, N` costs O(N) recurrence steps in total instead of the
/// O(N²) of calling [`erlang_b`] afresh for every `n`.
///
/// Each [`step`](ErlangSweep::step) executes exactly one iteration of the
/// same recurrence `erlang_b` runs, in the same order — so after advancing
/// to `n` servers, [`blocking`](ErlangSweep::blocking) and
/// [`waiting`](ErlangSweep::waiting) are **bit-identical** to
/// `erlang_b(n, a)` and `erlang_c(n, a)` (the property tests pin this).
/// This is what makes the incremental capacity solvers in
/// [`crate::capacity`] drop-in replacements for the naive searches.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::erlang::{erlang_b, ErlangSweep};
///
/// let mut sweep = ErlangSweep::new(10.0)?;
/// sweep.advance_to(12);
/// assert_eq!(sweep.blocking()?, erlang_b(12, 10.0)?);
/// sweep.step(); // one more server, one more recurrence step
/// assert_eq!(sweep.blocking()?, erlang_b(13, 10.0)?);
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErlangSweep {
    offered_load: f64,
    servers: u32,
    blocking: f64,
}

impl ErlangSweep {
    /// Starts a sweep at zero servers for the given offered load `a = λ·s`
    /// (Erlangs).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::NonPositive`] if `a` is negative or NaN —
    /// the same validation [`erlang_b`] applies.
    pub fn new(offered_load: f64) -> Result<Self, QueueingError> {
        if !(offered_load >= 0.0) {
            return Err(QueueingError::NonPositive {
                name: "offered_load",
                value: offered_load,
            });
        }
        Ok(ErlangSweep {
            offered_load,
            servers: 0,
            blocking: 1.0,
        })
    }

    /// The offered load this sweep was created with.
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// The server count the sweep currently sits at.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Advances the sweep by one server (one recurrence step), returning
    /// the new server count. Saturates at `u32::MAX`.
    pub fn step(&mut self) -> u32 {
        if self.servers < u32::MAX {
            let k = self.servers + 1;
            let a = self.offered_load;
            // The exact update `erlang_b` performs for iteration k.
            self.blocking = a * self.blocking / (f64::from(k) + a * self.blocking);
            self.servers = k;
        }
        self.servers
    }

    /// Advances the sweep until it reaches `servers` (no-op if already at
    /// or beyond it — the recurrence cannot run backwards).
    pub fn advance_to(&mut self, servers: u32) {
        while self.servers < servers {
            self.step();
        }
    }

    /// Erlang-B blocking probability at the current server count,
    /// bit-identical to `erlang_b(self.servers(), a)`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::OutOfRange`] at zero servers (the sweep has
    /// not stepped yet), matching [`erlang_b`].
    pub fn blocking(&self) -> Result<f64, QueueingError> {
        if self.servers == 0 {
            return Err(QueueingError::OutOfRange {
                name: "servers",
                value: 0.0,
            });
        }
        if self.offered_load == 0.0 {
            return Ok(0.0);
        }
        Ok(self.blocking)
    }

    /// Erlang-C waiting probability at the current server count,
    /// bit-identical to `erlang_c(self.servers(), a)`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] when `a ≥ n` and
    /// [`QueueingError::OutOfRange`] at zero servers, matching
    /// [`erlang_c`].
    pub fn waiting(&self) -> Result<f64, QueueingError> {
        let b = self.blocking()?;
        let n_f = f64::from(self.servers);
        if self.offered_load >= n_f {
            return Err(QueueingError::Unstable {
                offered_load: self.offered_load,
                servers: self.servers,
            });
        }
        let c = n_f * b / (n_f - self.offered_load * (1.0 - b));
        // Clamp tiny negative round-off; mathematically c ∈ [0, 1].
        Ok(c.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn erlang_b_single_server_matches_closed_form() {
        // B(1, a) = a / (1 + a)
        for &a in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let b = erlang_b(1, a).unwrap();
            assert!((b - a / (1.0 + a)).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_b_two_servers_matches_closed_form() {
        // B(2, a) = a^2/2 / (1 + a + a^2/2)
        for &a in &[0.1, 0.5, 1.0, 3.0] {
            let b = erlang_b(2, a).unwrap();
            let expect = (a * a / 2.0) / (1.0 + a + a * a / 2.0);
            assert!((b - expect).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_b_zero_load_is_zero() {
        assert_eq!(erlang_b(5, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn erlang_b_rejects_bad_inputs() {
        assert!(matches!(
            erlang_b(0, 1.0),
            Err(QueueingError::OutOfRange { .. })
        ));
        assert!(matches!(
            erlang_b(3, -1.0),
            Err(QueueingError::NonPositive { .. })
        ));
        assert!(matches!(
            erlang_b(3, f64::NAN),
            Err(QueueingError::NonPositive { .. })
        ));
    }

    #[test]
    fn erlang_b_is_stable_for_large_systems() {
        // 1000 servers at 95% load must not overflow or go negative.
        let b = erlang_b(1000, 950.0).unwrap();
        assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn erlang_c_single_server_equals_utilization() {
        // For M/M/1, P(wait) = rho.
        for &a in &[0.1, 0.5, 0.9] {
            let c = erlang_c(1, a).unwrap();
            assert!((c - a).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_c_known_value_two_servers() {
        let c = erlang_c(2, 1.0).unwrap();
        assert!((c - 1.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn erlang_c_exceeds_erlang_b() {
        // In a stable system the delay probability is at least the loss
        // probability for the same (n, a).
        for n in 1..20u32 {
            let a = f64::from(n) * 0.8;
            let b = erlang_b(n, a).unwrap();
            let c = erlang_c(n, a).unwrap();
            assert!(c >= b - EPS, "n={n}");
        }
    }

    #[test]
    fn erlang_c_unstable_when_load_reaches_servers() {
        assert!(matches!(
            erlang_c(4, 4.0),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(matches!(
            erlang_c(4, 5.5),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn erlang_c_approaches_one_near_saturation() {
        let c = erlang_c(8, 7.999).unwrap();
        assert!(c > 0.99);
    }

    #[test]
    fn sweep_matches_from_scratch_bitwise() {
        for &a in &[0.0, 0.1, 0.5, 1.0, 3.7, 10.0, 950.0] {
            let mut sweep = ErlangSweep::new(a).unwrap();
            for n in 1..=64u32 {
                sweep.step();
                assert_eq!(sweep.servers(), n);
                assert_eq!(
                    sweep.blocking().unwrap().to_bits(),
                    erlang_b(n, a).unwrap().to_bits(),
                    "B(n={n}, a={a})"
                );
                match (sweep.waiting(), erlang_c(n, a)) {
                    (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits(), "C(n={n}, a={a})"),
                    (Err(_), Err(_)) => {}
                    (x, y) => panic!("divergent errors for n={n} a={a}: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn sweep_advance_to_is_idempotent_backwards() {
        let mut sweep = ErlangSweep::new(5.0).unwrap();
        sweep.advance_to(10);
        let at_ten = sweep.clone();
        sweep.advance_to(3); // cannot run backwards: no-op
        assert_eq!(sweep, at_ten);
    }

    #[test]
    fn sweep_validates_like_erlang_b() {
        assert!(matches!(
            ErlangSweep::new(-1.0),
            Err(QueueingError::NonPositive { .. })
        ));
        assert!(matches!(
            ErlangSweep::new(f64::NAN),
            Err(QueueingError::NonPositive { .. })
        ));
        let sweep = ErlangSweep::new(1.0).unwrap();
        assert!(matches!(
            sweep.blocking(),
            Err(QueueingError::OutOfRange { .. })
        ));
        assert!(sweep.waiting().is_err());
    }
}
