//! Erlang-B and Erlang-C formulas.
//!
//! Both are computed with the classical recurrence on the Erlang-B blocking
//! probability, which is numerically stable for large server counts and
//! offered loads (no factorials or large powers are ever formed):
//!
//! ```text
//! B(0, a) = 1
//! B(k, a) = a·B(k-1, a) / (k + a·B(k-1, a))
//! C(n, a) = n·B(n, a) / (n - a·(1 - B(n, a)))
//! ```

use crate::error::QueueingError;

/// Erlang-B blocking probability for `n` servers and offered load `a`
/// (in Erlangs, i.e. `a = λ·s` for arrival rate `λ` and mean service time
/// `s`).
///
/// This is the probability that an arriving request finds all `n` servers
/// busy in an M/M/n/n loss system. The value always lies in `[0, 1]` and is
/// defined for any `a ≥ 0` (a loss system is always stable).
///
/// # Errors
///
/// Returns [`QueueingError::NonPositive`] if `a` is negative or NaN and
/// [`QueueingError::OutOfRange`] if `n` is zero.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::erlang::erlang_b;
///
/// // Classic telephony example: 10 Erlangs offered to 12 trunks.
/// let b = erlang_b(12, 10.0)?;
/// assert!((b - 0.1196).abs() < 1e-3);
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
pub fn erlang_b(n: u32, a: f64) -> Result<f64, QueueingError> {
    if !(a >= 0.0) {
        return Err(QueueingError::NonPositive {
            name: "offered_load",
            value: a,
        });
    }
    if n == 0 {
        return Err(QueueingError::OutOfRange {
            name: "servers",
            value: 0.0,
        });
    }
    if a == 0.0 {
        return Ok(0.0);
    }
    let mut b = 1.0_f64;
    for k in 1..=n {
        b = a * b / (f64::from(k) + a * b);
    }
    Ok(b)
}

/// Erlang-C waiting probability for `n` servers and offered load `a`
/// (in Erlangs).
///
/// This is the probability that an arriving request has to wait in an
/// M/M/n/∞ delay system. The value lies in `[0, 1]`.
///
/// # Errors
///
/// Returns [`QueueingError::Unstable`] when `a ≥ n` (the delay system has no
/// steady state), and propagates the input-validation errors of
/// [`erlang_b`].
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::erlang::erlang_c;
///
/// // 2 servers, offered load 1 Erlang => P(wait) = 1/3.
/// let c = erlang_c(2, 1.0)?;
/// assert!((c - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
pub fn erlang_c(n: u32, a: f64) -> Result<f64, QueueingError> {
    let b = erlang_b(n, a)?;
    let n_f = f64::from(n);
    if a >= n_f {
        return Err(QueueingError::Unstable {
            offered_load: a,
            servers: n,
        });
    }
    let c = n_f * b / (n_f - a * (1.0 - b));
    // Clamp tiny negative round-off; mathematically c ∈ [0, 1].
    Ok(c.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn erlang_b_single_server_matches_closed_form() {
        // B(1, a) = a / (1 + a)
        for &a in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let b = erlang_b(1, a).unwrap();
            assert!((b - a / (1.0 + a)).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_b_two_servers_matches_closed_form() {
        // B(2, a) = a^2/2 / (1 + a + a^2/2)
        for &a in &[0.1, 0.5, 1.0, 3.0] {
            let b = erlang_b(2, a).unwrap();
            let expect = (a * a / 2.0) / (1.0 + a + a * a / 2.0);
            assert!((b - expect).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_b_zero_load_is_zero() {
        assert_eq!(erlang_b(5, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn erlang_b_rejects_bad_inputs() {
        assert!(matches!(
            erlang_b(0, 1.0),
            Err(QueueingError::OutOfRange { .. })
        ));
        assert!(matches!(
            erlang_b(3, -1.0),
            Err(QueueingError::NonPositive { .. })
        ));
        assert!(matches!(
            erlang_b(3, f64::NAN),
            Err(QueueingError::NonPositive { .. })
        ));
    }

    #[test]
    fn erlang_b_is_stable_for_large_systems() {
        // 1000 servers at 95% load must not overflow or go negative.
        let b = erlang_b(1000, 950.0).unwrap();
        assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn erlang_c_single_server_equals_utilization() {
        // For M/M/1, P(wait) = rho.
        for &a in &[0.1, 0.5, 0.9] {
            let c = erlang_c(1, a).unwrap();
            assert!((c - a).abs() < EPS, "a={a}");
        }
    }

    #[test]
    fn erlang_c_known_value_two_servers() {
        let c = erlang_c(2, 1.0).unwrap();
        assert!((c - 1.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn erlang_c_exceeds_erlang_b() {
        // In a stable system the delay probability is at least the loss
        // probability for the same (n, a).
        for n in 1..20u32 {
            let a = f64::from(n) * 0.8;
            let b = erlang_b(n, a).unwrap();
            let c = erlang_c(n, a).unwrap();
            assert!(c >= b - EPS, "n={n}");
        }
    }

    #[test]
    fn erlang_c_unstable_when_load_reaches_servers() {
        assert!(matches!(
            erlang_c(4, 4.0),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(matches!(
            erlang_c(4, 5.5),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn erlang_c_approaches_one_near_saturation() {
        let c = erlang_c(8, 7.999).unwrap();
        assert!(c > 0.99);
    }
}
