//! Quantized-key memoization for the capacity solvers.
//!
//! The evaluation pipeline asks the same capacity questions over and over:
//! every scaler scored against a trace re-derives the same demand curve,
//! and Algorithm 1 re-sizes every service each cycle from rates that
//! repeat across intervals and forecast horizons. [`CapacityCache`]
//! memoizes the three solver entry points behind a *quantized* key so that
//! float inputs differing only in the last few mantissa bits share one
//! entry.
//!
//! # Keying and error bound
//!
//! Each float input is bucketed by masking the low [`QUANT_BITS`] mantissa
//! bits, i.e. buckets are `2^QUANT_BITS` ulps wide — a relative width of
//! `2^(QUANT_BITS − 52) = 2^-40`. The bucket corner is chosen
//! *conservatively* per dimension: arrival rate and service demand round
//! **up**, the response-time target rounds **down**, the quantile rounds
//! **up**. Every rounding direction makes the sizing problem harder, so
//! the cached instance count is always sufficient for every exact input in
//! the bucket (never an undersized answer), and it exceeds the exact
//! answer only when the exact input sits within `2^-40` relative of a
//! solver decision boundary.
//!
//! # Determinism
//!
//! A cached result is a pure function of the quantized key — the solver is
//! always evaluated at the bucket corner, never at the first-seen exact
//! input. Lookup order therefore cannot change any value the cache
//! returns, which is what lets the parallel lineup runner share one cache
//! across worker threads and still produce bit-identical reports to the
//! sequential path.

use std::collections::HashMap;
// audit:allow(R8): cache interior mutability; hits return memoized bit-identical values
use std::sync::Mutex;

use chamulteon_obs::{Counter, MetricsRegistry};

use crate::capacity::{
    min_instances_for_response_time, min_instances_for_response_time_quantile,
    min_instances_for_utilization,
};
use crate::error::QueueingError;

/// Number of low mantissa bits masked off when bucketing a float key:
/// buckets are `2^12` ulps ≈ `2^-40` relative wide.
pub const QUANT_BITS: u32 = 12;

const MANTISSA_MASK: u64 = (1u64 << QUANT_BITS) - 1;

/// Largest bucket corner at or below `x` (positive finite `x`): masks the
/// low mantissa bits, which for positive floats rounds toward zero.
#[inline]
fn quantize_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() & !MANTISSA_MASK)
}

/// Smallest bucket corner at or above `x` (positive finite `x`). Stepping
/// a positive float's bit pattern up is monotone, so adding one bucket
/// width to the masked pattern lands on the next corner; if the carry
/// overflows to infinity the input is returned unchanged.
#[inline]
fn quantize_up(x: f64) -> f64 {
    let bits = x.to_bits();
    if bits & MANTISSA_MASK == 0 {
        return x;
    }
    let up = f64::from_bits((bits & !MANTISSA_MASK) + (MANTISSA_MASK + 1));
    if up.is_finite() {
        up
    } else {
        x
    }
}

/// [`quantize_down`] that never collapses a (subnormal) positive value to
/// zero — the solvers treat exact zero as invalid.
fn positive_quantize_down(x: f64) -> f64 {
    let down = quantize_down(x);
    if down > 0.0 {
        down
    } else {
        x
    }
}

/// Corner evaluation of the Utilization solver with the target hoisted:
/// construction applies the invalid-target policy and quantizes the target
/// down to its bucket corner once, and every [`solve`] call is then the
/// pure closed-form inversion at the quantized input corner — exactly the
/// value a [`CapacityCache`] memo entry would hold, with zero per-query
/// setup, no lock, and no hit/miss accounting.
///
/// Obtained from [`CapacityCache::utilization_corner_solver`]; `Copy`, so
/// worker threads sharding a decision pass can each carry their own.
///
/// [`solve`]: UtilizationCornerSolver::solve
#[derive(Debug, Clone, Copy)]
pub struct UtilizationCornerSolver {
    rho: f64,
}

impl UtilizationCornerSolver {
    /// Builds a solver for `target_utilization`, applying the same
    /// invalid-target policy as every memoized entry point (NaN, infinite,
    /// or non-positive targets mean full utilization).
    fn new(target_utilization: f64) -> Self {
        let target = if target_utilization.is_finite() && target_utilization > 0.0 {
            target_utilization.min(1.0)
        } else {
            1.0
        };
        UtilizationCornerSolver {
            rho: quantize_down(target),
        }
    }

    /// Sizes one `(arrival_rate, service_demand)` query at the quantized
    /// bucket corner — bit-identical to
    /// [`CapacityCache::min_instances_for_utilization`] with the same
    /// target, including the degenerate-input bypass.
    #[must_use]
    #[inline]
    pub fn solve(&self, arrival_rate: f64, service_demand: f64) -> u32 {
        if !(arrival_rate > 0.0) || !(service_demand > 0.0) {
            return 1; // the solver's degenerate fast path
        }
        min_instances_for_utilization(
            quantize_up(arrival_rate),
            quantize_up(service_demand),
            self.rho,
        )
    }
}

/// Which solver a cache entry belongs to (part of the key, so the three
/// entry points never collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SolverKind {
    Utilization,
    MeanResponseTime,
    ResponseTimeQuantile,
}

/// A quantized cache key: the bit patterns of the bucket-corner inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CapacityKey {
    kind: SolverKind,
    arrival_rate: u64,
    service_demand: u64,
    target: u64,
    quantile: u64,
    max_instances: u32,
}

/// Multiply-rotate hasher for [`CapacityKey`] (FxHash-style). The keys
/// are fixed-width integers the caller cannot choose adversarially (they
/// are quantized solver inputs, not attacker-controlled strings), so the
/// DoS resistance of the standard SipHash buys nothing here — but its
/// cost dominates a warm cache hit, which is the whole point of the memo.
#[derive(Debug, Default, Clone)]
struct CapacityHasher(u64);

impl CapacityHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }

    /// Zero-extends a platform-width integer's native bytes into a `u64`
    /// lane (portable across 16/32/64-bit `usize` without numeric casts).
    fn extend_native<const N: usize>(bytes: [u8; N]) -> u64 {
        let mut lane = [0u8; 8];
        lane[..N.min(8)].copy_from_slice(&bytes[..N.min(8)]);
        u64::from_ne_bytes(lane)
    }
}

impl std::hash::Hasher for CapacityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut lane = [0u8; 8];
            lane[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_ne_bytes(lane));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(Self::extend_native(i.to_ne_bytes()));
    }

    fn write_isize(&mut self, i: isize) {
        self.add(Self::extend_native(i.to_ne_bytes()));
    }
}

/// Builder producing [`CapacityHasher`]s for the cache map.
#[derive(Debug, Default, Clone)]
struct CapacityHashBuilder;

impl std::hash::BuildHasher for CapacityHashBuilder {
    type Hasher = CapacityHasher;

    fn build_hasher(&self) -> CapacityHasher {
        CapacityHasher::default()
    }
}

/// Hit/miss counters of a [`CapacityCache`], as captured by
/// [`CapacityCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that ran the underlying solver and stored the result.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of counted lookups answered from the map, in `[0, 1]`
    /// (0 when nothing was counted yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            return 0.0;
        }
        // audit:allow(lossy-cast): counters fit f64's 53-bit integer range
        self.hits as f64 / total as f64
    }
}

/// A thread-safe memo cache over the capacity solvers in
/// [`crate::capacity`], keyed by quantized inputs (see the module docs for
/// the bucketing scheme and error bound).
///
/// Degenerate inputs (non-positive, NaN, out-of-range quantiles) bypass
/// the cache entirely and are answered by the underlying solver's own
/// validation, so cached and uncached error behavior agree.
///
/// # Examples
///
/// ```
/// use chamulteon_queueing::CapacityCache;
///
/// let cache = CapacityCache::new();
/// let first = cache.min_instances_for_response_time_quantile(100.0, 0.1, 0.5, 0.9, 1000)?;
/// let again = cache.min_instances_for_response_time_quantile(100.0, 0.1, 0.5, 0.9, 1000)?;
/// assert_eq!(first, again);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
#[derive(Debug, Default)]
pub struct CapacityCache {
    map: Mutex<HashMap<CapacityKey, Result<u32, QueueingError>, CapacityHashBuilder>>,
    hits: Counter,
    misses: Counter,
}

impl Clone for CapacityCache {
    /// Clones the cached entries; the clone starts with the same counters.
    /// (Entries are pure functions of their keys, so sharing or splitting
    /// a cache never changes any result.)
    fn clone(&self) -> Self {
        let map = match self.map.lock() {
            Ok(guard) => guard.clone(),
            // A poisoned lock means a panic elsewhere; start empty rather
            // than propagate — the cache is only ever an accelerator.
            Err(_) => HashMap::default(),
        };
        CapacityCache {
            map: Mutex::new(map),
            hits: self.hits.clone(),
            misses: self.misses.clone(),
        }
    }
}

impl CapacityCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CapacityCache::default()
    }

    /// Current hit/miss counters. (Thin shim over the obs
    /// [`Counter`]s the cache keeps internally.)
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Publishes the cache's current state as gauges on an obs metrics
    /// registry: `capacity_cache.hits`, `capacity_cache.misses`,
    /// `capacity_cache.hit_rate` and `capacity_cache.entries`.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let stats = self.stats();
        // audit:allow(lossy-cast): counters fit f64's 53-bit integer range
        registry.set_gauge("capacity_cache.hits", stats.hits as f64);
        // audit:allow(lossy-cast): counters fit f64's 53-bit integer range
        registry.set_gauge("capacity_cache.misses", stats.misses as f64);
        registry.set_gauge("capacity_cache.hit_rate", stats.hit_rate());
        // audit:allow(lossy-cast): counters fit f64's 53-bit integer range
        registry.set_gauge("capacity_cache.entries", self.len() as f64);
    }

    /// Number of distinct quantized keys currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared lookup-or-compute on the quantized key.
    fn lookup<F>(&self, key: CapacityKey, solve: F) -> Result<u32, QueueingError>
    where
        F: FnOnce() -> Result<u32, QueueingError>,
    {
        if let Ok(mut map) = self.map.lock() {
            if let Some(found) = map.get(&key) {
                self.hits.increment();
                return found.clone();
            }
            let computed = solve();
            self.misses.increment();
            map.insert(key, computed.clone());
            return computed;
        }
        // Poisoned lock: degrade to uncached computation.
        solve()
    }

    /// Memoized [`min_instances_for_utilization`]. Behaviorally identical
    /// up to the quantization bound: the bucket error (`≤ 2^-40` relative)
    /// is far inside the solver's own `1e-9` integer-boundary snap.
    pub fn min_instances_for_utilization(
        &self,
        arrival_rate: f64,
        service_demand: f64,
        target_utilization: f64,
    ) -> u32 {
        if !(arrival_rate > 0.0) || !(service_demand > 0.0) {
            return 1; // the solver's own degenerate fast path, uncounted
        }
        // Same invalid-target policy as the uncached solver: NaN,
        // infinite, or non-positive targets mean full utilization.
        let target = if target_utilization.is_finite() && target_utilization > 0.0 {
            target_utilization.min(1.0)
        } else {
            1.0
        };
        let lambda = quantize_up(arrival_rate);
        let demand = quantize_up(service_demand);
        let rho = quantize_down(target);
        let key = CapacityKey {
            kind: SolverKind::Utilization,
            arrival_rate: lambda.to_bits(),
            service_demand: demand.to_bits(),
            target: rho.to_bits(),
            quantile: 0,
            max_instances: 0,
        };
        self.lookup(key, || {
            Ok(min_instances_for_utilization(lambda, demand, rho))
        })
        .unwrap_or(1)
    }

    /// Batched [`CapacityCache::min_instances_for_utilization`]: answers
    /// every `(arrival_rate, service_demand)` query against the shared
    /// `target_utilization`, taking the cache lock **once** for the whole
    /// batch instead of once per query — this is what Algorithm 1's
    /// per-stage sizing calls, so a thousand-service stage pays one lock
    /// acquisition, not a thousand.
    ///
    /// Per query, the result, the degenerate-input bypass, and the
    /// hit/miss accounting are all identical to issuing the individual
    /// calls in order.
    pub fn min_instances_for_utilization_batch(
        &self,
        queries: &[(f64, f64)],
        target_utilization: f64,
    ) -> Vec<u32> {
        let mut out = Vec::with_capacity(queries.len());
        self.min_instances_for_utilization_batch_into(queries, target_utilization, &mut out);
        out
    }

    /// [`CapacityCache::min_instances_for_utilization_batch`] writing its
    /// answers into a caller-provided buffer (cleared first), so a hot
    /// loop issuing one batch per graph stage can reuse a single
    /// allocation across thousands of stages.
    pub fn min_instances_for_utilization_batch_into(
        &self,
        queries: &[(f64, f64)],
        target_utilization: f64,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        out.reserve(queries.len());
        // Same invalid-target policy as the single-query entry point.
        let target = if target_utilization.is_finite() && target_utilization > 0.0 {
            target_utilization.min(1.0)
        } else {
            1.0
        };
        let rho = quantize_down(target);
        // One lock for the batch; a poisoned lock degrades every query to
        // uncached computation, exactly like the single-query path.
        let mut guard = self.map.lock().ok();
        for &(arrival_rate, service_demand) in queries {
            if !(arrival_rate > 0.0) || !(service_demand > 0.0) {
                out.push(1); // the solver's degenerate fast path, uncounted
                continue;
            }
            let lambda = quantize_up(arrival_rate);
            let demand = quantize_up(service_demand);
            let key = CapacityKey {
                kind: SolverKind::Utilization,
                arrival_rate: lambda.to_bits(),
                service_demand: demand.to_bits(),
                target: rho.to_bits(),
                quantile: 0,
                max_instances: 0,
            };
            let value = match guard.as_mut() {
                Some(map) => {
                    if let Some(found) = map.get(&key) {
                        self.hits.increment();
                        found.clone()
                    } else {
                        let computed = Ok(min_instances_for_utilization(lambda, demand, rho));
                        self.misses.increment();
                        map.insert(key, computed.clone());
                        computed
                    }
                }
                None => Ok(min_instances_for_utilization(lambda, demand, rho)),
            };
            out.push(value.unwrap_or(1));
        }
    }

    /// Batched utilization sizing by **direct corner evaluation**: every
    /// `(arrival_rate, service_demand)` query is answered by running the
    /// closed-form solver at the cache's quantized bucket corner, without
    /// touching the memo map.
    ///
    /// The answers are bit-identical to
    /// [`CapacityCache::min_instances_for_utilization_batch`] (and the
    /// single-query path): a memo entry for the Utilization kind is
    /// nothing but `min_instances_for_utilization` evaluated at the same
    /// quantized corner, and that solver is a pure function. What changes
    /// is only the cost profile — the closed-form inversion is a handful
    /// of float ops, cheaper than the lock + hash + probe (and, cold, the
    /// insert) it would take to memoize it, so the thousand-service
    /// decision pass uses this entry point. The memoized batch remains the
    /// right call for solvers that are genuinely expensive (the Erlang
    /// response-time sweeps). No hit/miss accounting: nothing is looked
    /// up. The degenerate-input bypass matches the memoized path exactly.
    pub fn min_instances_for_utilization_corner_batch(
        &self,
        queries: &[(f64, f64)],
        target_utilization: f64,
    ) -> Vec<u32> {
        let mut out = Vec::with_capacity(queries.len());
        self.min_instances_for_utilization_corner_batch_into(queries, target_utilization, &mut out);
        out
    }

    /// [`CapacityCache::min_instances_for_utilization_corner_batch`]
    /// writing into a caller-provided buffer (cleared first), for hot
    /// loops that issue one batch per graph stage.
    pub fn min_instances_for_utilization_corner_batch_into(
        &self,
        queries: &[(f64, f64)],
        target_utilization: f64,
        out: &mut Vec<u32>,
    ) {
        let solver = self.utilization_corner_solver(target_utilization);
        out.clear();
        out.reserve(queries.len());
        for &(arrival_rate, service_demand) in queries {
            out.push(solver.solve(arrival_rate, service_demand));
        }
    }

    /// A hoisted corner evaluator answering exactly what this cache would
    /// memoize for the Utilization solver at `target_utilization`: the
    /// invalid-target policy and the bucket-corner quantization of the
    /// target happen **once** here, so a caller issuing thousands of
    /// per-service solves per decision pass pays only the pure closed-form
    /// inversion per query.
    #[must_use]
    pub fn utilization_corner_solver(&self, target_utilization: f64) -> UtilizationCornerSolver {
        UtilizationCornerSolver::new(target_utilization)
    }

    /// Memoized [`min_instances_for_response_time`].
    ///
    /// # Errors
    ///
    /// Same contract as the underlying solver (evaluated at the bucket
    /// corner for valid inputs; validation errors come from the exact
    /// inputs, uncached).
    pub fn min_instances_for_response_time(
        &self,
        arrival_rate: f64,
        service_demand: f64,
        response_time_target: f64,
        max_instances: u32,
    ) -> Result<u32, QueueingError> {
        if !(arrival_rate > 0.0) || !(service_demand > 0.0) || !(response_time_target > 0.0) {
            return min_instances_for_response_time(
                arrival_rate,
                service_demand,
                response_time_target,
                max_instances,
            );
        }
        let lambda = quantize_up(arrival_rate);
        let demand = quantize_up(service_demand);
        let target = positive_quantize_down(response_time_target);
        let key = CapacityKey {
            kind: SolverKind::MeanResponseTime,
            arrival_rate: lambda.to_bits(),
            service_demand: demand.to_bits(),
            target: target.to_bits(),
            quantile: 0,
            max_instances,
        };
        self.lookup(key, || {
            min_instances_for_response_time(lambda, demand, target, max_instances)
        })
    }

    // Each `!(x > 0.0)` term in the body deliberately treats NaN as
    // degenerate; clippy's "simplified" conjunction would obscure that.
    /// Memoized [`min_instances_for_response_time_quantile`] — the demand
    /// curve's solver, and the cache's hottest entry point.
    ///
    /// # Errors
    ///
    /// Same contract as the underlying solver (evaluated at the bucket
    /// corner for valid inputs; validation errors come from the exact
    /// inputs, uncached).
    #[allow(clippy::nonminimal_bool)]
    pub fn min_instances_for_response_time_quantile(
        &self,
        arrival_rate: f64,
        service_demand: f64,
        response_time_target: f64,
        p: f64,
        max_instances: u32,
    ) -> Result<u32, QueueingError> {
        if !(arrival_rate > 0.0)
            || !(service_demand > 0.0)
            || !(response_time_target > 0.0)
            || !(p > 0.0 && p < 1.0)
        {
            return min_instances_for_response_time_quantile(
                arrival_rate,
                service_demand,
                response_time_target,
                p,
                max_instances,
            );
        }
        let lambda = quantize_up(arrival_rate);
        let demand = quantize_up(service_demand);
        let target = positive_quantize_down(response_time_target);
        // Rounding p up makes the tail bound harder (conservative); fall
        // back to the exact p in the measure-zero corner where the bucket
        // step would cross 1.0.
        let quantile = {
            let up = quantize_up(p);
            if up < 1.0 {
                up
            } else {
                p
            }
        };
        let key = CapacityKey {
            kind: SolverKind::ResponseTimeQuantile,
            arrival_rate: lambda.to_bits(),
            service_demand: demand.to_bits(),
            target: target.to_bits(),
            quantile: quantile.to_bits(),
            max_instances,
        };
        self.lookup(key, || {
            min_instances_for_response_time_quantile(
                lambda,
                demand,
                target,
                quantile,
                max_instances,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_conservative_and_tight() {
        for &x in &[0.1, 0.059, 1.0, 85.3, 1234.5678, 1e-3, 1e6] {
            let down = quantize_down(x);
            let up = quantize_up(x);
            assert!(down <= x && x <= up, "x={x}");
            // Bucket width is ~2^-40 relative.
            assert!((x - down) / x < 1e-11, "x={x} down={down}");
            assert!((up - x) / x < 1e-11, "x={x} up={up}");
        }
        // Exact bucket corners are fixed points of both directions.
        let corner = quantize_down(0.1);
        assert_eq!(quantize_down(corner), corner);
        assert_eq!(quantize_up(corner), corner);
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let cache = CapacityCache::new();
        assert_eq!(cache.stats(), CacheStats::default());
        let a = cache
            .min_instances_for_response_time_quantile(100.0, 0.1, 0.5, 0.9, 1000)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let b = cache
            .min_instances_for_response_time_quantile(100.0, 0.1, 0.5, 0.9, 1000)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearby_inputs_share_a_bucket() {
        let cache = CapacityCache::new();
        // Two rates a few ulps apart on the same side of a bucket corner
        // round up to the same corner: one miss, then a hit.
        let low = f64::from_bits(100.0_f64.to_bits() + 3);
        let high = f64::from_bits(100.0_f64.to_bits() + 7);
        let first = cache
            .min_instances_for_response_time_quantile(low, 0.1, 0.5, 0.9, 1000)
            .unwrap();
        let second = cache
            .min_instances_for_response_time_quantile(high, 0.1, 0.5, 0.9, 1000)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_never_undersizes() {
        // Conservative rounding: the cached count meets the SLO for the
        // exact inputs too, across a sweep of awkward values.
        let cache = CapacityCache::new();
        for i in 1..60u32 {
            let lambda = f64::from(i) * 7.3 + 0.011;
            let n = cache
                .min_instances_for_response_time_quantile(lambda, 0.1, 0.4, 0.9, 10_000)
                .unwrap();
            let exact = crate::capacity::min_instances_for_response_time_quantile(
                lambda, 0.1, 0.4, 0.9, 10_000,
            )
            .unwrap();
            assert!(n >= exact, "λ={lambda}: cached {n} < exact {exact}");
            assert!(n <= exact + 1, "λ={lambda}: cached {n} ≫ exact {exact}");
        }
    }

    #[test]
    fn utilization_entry_matches_plain_solver() {
        let cache = CapacityCache::new();
        for &(lambda, s, rho) in &[
            (85.0, 0.1, 0.8),
            (200.0, 0.1, 0.8),
            (80.0, 0.1, 0.8), // exact integer boundary: snap must hold
            (17.0, 0.059, 0.85),
            (0.0, 0.1, 0.8),
            (f64::NAN, 0.1, 0.8),
            (100.0, 0.1, 5.0),
        ] {
            assert_eq!(
                cache.min_instances_for_utilization(lambda, s, rho),
                min_instances_for_utilization(lambda, s, rho),
                "λ={lambda} s={s} ρ={rho}"
            );
        }
    }

    #[test]
    fn batch_matches_individual_calls_and_counters() {
        let queries: Vec<(f64, f64)> = vec![
            (85.0, 0.1),
            (200.0, 0.059),
            (85.0, 0.1), // exact repeat: dedupe via cache hit
            (0.0, 0.1),  // degenerate: bypass, uncounted
            (50.0, f64::NAN),
            (17.0, 0.04),
        ];
        let batched = CapacityCache::new();
        let individual = CapacityCache::new();
        let got = batched.min_instances_for_utilization_batch(&queries, 0.8);
        let want: Vec<u32> = queries
            .iter()
            .map(|&(l, d)| individual.min_instances_for_utilization(l, d, 0.8))
            .collect();
        assert_eq!(got, want);
        assert_eq!(batched.stats(), individual.stats());
        assert_eq!(batched.stats(), CacheStats { hits: 1, misses: 3 });
        assert_eq!(batched.len(), individual.len());
    }

    #[test]
    fn batch_warm_cache_only_hits() {
        let cache = CapacityCache::new();
        let queries = vec![(85.0, 0.1), (200.0, 0.059)];
        let cold = cache.min_instances_for_utilization_batch(&queries, 0.8);
        let warm = cache.min_instances_for_utilization_batch(&queries, 0.8);
        assert_eq!(cold, warm);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn batch_degenerate_target_matches_single() {
        let batched = CapacityCache::new();
        let single = CapacityCache::new();
        for &rho in &[f64::NAN, -1.0, 0.0, 5.0] {
            let got = batched.min_instances_for_utilization_batch(&[(100.0, 0.1)], rho);
            assert_eq!(
                got[0],
                single.min_instances_for_utilization(100.0, 0.1, rho)
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cache = CapacityCache::new();
        assert!(cache
            .min_instances_for_utilization_batch(&[], 0.8)
            .is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn corner_batch_is_bit_identical_to_memoized_batch() {
        // The corner batch must agree with the memoized path on every
        // query — boundaries, repeats, degenerates, NaNs — both against a
        // cold memo (values inserted from the corner solve) and a warm one
        // (values cloned out of the map).
        let queries: Vec<(f64, f64)> = vec![
            (85.0, 0.1),
            (200.0, 0.059),
            (80.0, 0.1), // exact integer boundary: 10 instances
            (85.0, 0.1), // exact repeat
            (0.0, 0.1),  // degenerate rate
            (50.0, f64::NAN),
            (-3.0, 0.2),
            (1e-300, 0.25),
            (17.0, 0.04),
        ];
        for &rho in &[0.8, 0.65, 1.0, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cache = CapacityCache::new();
            let memoized_cold = cache.min_instances_for_utilization_batch(&queries, rho);
            let memoized_warm = cache.min_instances_for_utilization_batch(&queries, rho);
            let corner = cache.min_instances_for_utilization_corner_batch(&queries, rho);
            assert_eq!(corner, memoized_cold, "rho={rho}");
            assert_eq!(corner, memoized_warm, "rho={rho}");
        }
    }

    #[test]
    fn corner_batch_issues_no_lookups() {
        let cache = CapacityCache::new();
        let out = cache.min_instances_for_utilization_corner_batch(&[(85.0, 0.1)], 0.8);
        assert_eq!(out.len(), 1);
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn degenerate_inputs_bypass_cache() {
        let cache = CapacityCache::new();
        assert!(cache
            .min_instances_for_response_time_quantile(10.0, 0.1, 0.5, 1.5, 100)
            .is_err());
        assert!(cache
            .min_instances_for_response_time(10.0, -0.1, 0.5, 100)
            .is_err());
        assert_eq!(
            cache
                .min_instances_for_response_time_quantile(0.0, 0.1, 0.5, 0.9, 100)
                .unwrap(),
            1
        );
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = CapacityCache::new();
        for _ in 0..2 {
            match cache.min_instances_for_response_time(1000.0, 0.1, 0.11, 50) {
                Err(QueueingError::Infeasible {
                    required: Some(req),
                    ..
                }) => {
                    // `required` is the true minimal count (> the 101
                    // stability bound for this target), see the solver's
                    // round-trip contract.
                    assert!(req > 101, "required={req}");
                }
                other => panic!("expected Infeasible, got {other:?}"),
            }
        }
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn export_metrics_publishes_gauges() {
        let cache = CapacityCache::new();
        let _ = cache.min_instances_for_response_time(100.0, 0.1, 0.5, 1000);
        let _ = cache.min_instances_for_response_time(100.0, 0.1, 0.5, 1000);
        let registry = MetricsRegistry::new();
        cache.export_metrics(&registry);
        assert_eq!(registry.gauge_value("capacity_cache.hits"), Some(1.0));
        assert_eq!(registry.gauge_value("capacity_cache.misses"), Some(1.0));
        assert_eq!(registry.gauge_value("capacity_cache.hit_rate"), Some(0.5));
        assert_eq!(registry.gauge_value("capacity_cache.entries"), Some(1.0));
    }

    #[test]
    fn clone_carries_entries() {
        let cache = CapacityCache::new();
        let _ = cache.min_instances_for_response_time(100.0, 0.1, 0.5, 1000);
        let copy = cache.clone();
        assert_eq!(copy.len(), 1);
        let _ = copy.min_instances_for_response_time(100.0, 0.1, 0.5, 1000);
        assert_eq!(copy.stats().hits, 1);
        // The original's counters are unaffected by the clone's lookups.
        assert_eq!(cache.stats().hits, 0);
    }
}
