//! Property test: JSONL emit → parse → re-emit is the identity, on both
//! the text and the value level, across randomly generated events of
//! every schema kind.

// Example/test/bench code: panics are acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use chamulteon_obs::{
    jsonl, ActuationOutcome, Event, EventKind, Provenance, WarmAction, Winner, EVENT_KIND_CODES,
};
use proptest::prelude::*;

/// Builds one event of the kind indexed by `kind_idx`, with optional
/// fields present or absent according to `mask` bits and payloads drawn
/// from the remaining primitives. `rate` may be substituted with NaN
/// (via bit 7 of the mask) to cover the non-finite → `null` path.
#[allow(clippy::too_many_arguments)]
fn build_event(
    kind_idx: usize,
    mask: u32,
    time: f64,
    rate: f64,
    small: f64,
    n: u64,
    target: u32,
    flag: bool,
) -> Event {
    let opt_f64 = |bit: u32, v: f64| (mask & (1 << bit) != 0).then_some(v);
    let opt_u64 = |bit: u32, v: u64| (mask & (1 << bit) != 0).then_some(v);
    let opt_u32 = |bit: u32, v: u32| (mask & (1 << bit) != 0).then_some(v);
    let opt_bool = |bit: u32, v: bool| (mask & (1 << bit) != 0).then_some(v);
    let rate = if mask & (1 << 7) != 0 { f64::NAN } else { rate };
    let winner = match mask % 3 {
        0 => Winner::Proactive,
        1 => Winner::Reactive,
        _ => Winner::Hold,
    };
    let service = usize::try_from(target % 7).unwrap();
    let kind = match kind_idx {
        0 => EventKind::CycleStart {
            tick: n,
            measured_rate: rate,
            entry_fresh: flag,
        },
        1 => EventKind::Forecast {
            generation: n,
            horizon: n % 97,
            trusted: flag,
            mase: opt_f64(0, small),
        },
        2 => EventKind::DemandEstimate {
            demand: small,
            fresh: flag,
        },
        3 => EventKind::CapacitySolve {
            hits: n,
            misses: n / 3,
        },
        4 => EventKind::ConflictResolution {
            proactive: opt_u32(0, target),
            proactive_trusted: opt_bool(1, flag),
            reactive: opt_u32(2, target / 2),
            winner,
            chosen: target,
        },
        5 => EventKind::FoxVerdict {
            proposed: target,
            reviewed: target.saturating_add(1),
            suppressed: flag,
            paid_remaining: opt_f64(0, small),
        },
        6 => EventKind::Degradation {
            code: format!("reason_{}", n % 9),
            attempt: opt_u32(0, target),
        },
        7 => EventKind::Actuation {
            target,
            outcome: match mask % 3 {
                0 => ActuationOutcome::Applied,
                1 => ActuationOutcome::Retried,
                _ => ActuationOutcome::Abandoned,
            },
            attempt: target % 5,
        },
        8 => EventKind::Fault {
            code: format!("fault \"{}\"\n{}", n % 6, small),
        },
        9 => EventKind::Decision(Provenance {
            tick: n,
            measured_rate: rate,
            offered_rate: opt_f64(0, rate * 0.5),
            demand: small,
            forecast_rate: opt_f64(1, rate * 1.5),
            forecast_generation: opt_u64(2, n % 1000),
            forecast_trusted: opt_bool(3, flag),
            winner,
            cache_hit: opt_bool(4, flag),
            fox_suppressed: opt_bool(5, !flag),
            proposed: target,
            target: target.saturating_add(u32::from(flag)),
        }),
        10 => EventKind::Checkpoint {
            cycle: n,
            bytes: n.saturating_mul(3),
        },
        11 => EventKind::Restore {
            cycle: n,
            cold: flag,
            checkpoint_cycle: opt_u64(0, n.saturating_sub(1)),
        },
        12 => EventKind::Arbitration {
            tenant: target % 5,
            policy: match mask % 3 {
                0 => "strict-priority".to_owned(),
                1 => "fair-share".to_owned(),
                _ => "cost-greedy".to_owned(),
            },
            requested: target,
            granted: target / 2,
            drawn_warm: target % 3,
            opened_cold: target % 4,
            deposited: target % 2,
            closed: target % 5,
            in_use: target.saturating_add(1),
            budget: target.saturating_add(2),
        },
        _ => EventKind::WarmTransfer {
            action: match mask % 3 {
                0 => WarmAction::Deposit,
                1 => WarmAction::Draw,
                _ => WarmAction::Expire,
            },
            tenant: opt_u32(0, target % 5),
            origin: target % 7,
            start: time * 0.5,
            paid_until: opt_f64(1, time * 0.75),
        },
    };
    if mask & (1 << 8) != 0 {
        Event::service(time, service, kind)
    } else {
        Event::cycle(time, kind)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// emit → parse → re-emit is the identity on both the parsed value
    /// and the serialized text, for every kind and optional-field mask.
    #[test]
    fn jsonl_round_trip_is_identity(
        kind_idx in 0usize..14,
        mask in 0u32..512,
        time in 0.0f64..1.0e7,
        rate in 0.0f64..1.0e5,
        small in 0.0f64..10.0,
        n in 0u64..1_000_000,
        target in 0u32..10_000,
        flag in any::<bool>(),
    ) {
        let event = build_event(kind_idx, mask, time, rate, small, n, target, flag);
        let line = jsonl::emit_line(&event);
        let parsed = jsonl::parse_line(&line, 1)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n  line: {line}")))?;
        // Value identity, modulo NaN (compare via re-emission instead).
        let reemitted = jsonl::emit_line(&parsed);
        prop_assert_eq!(&reemitted, &line, "re-emit must reproduce the text");
        if !has_nan(&event) {
            prop_assert_eq!(&parsed, &event);
        }
        // Whole-document path agrees with the per-line path.
        let text = jsonl::emit(&[event.clone(), parsed]);
        let back = jsonl::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("doc parse failed: {e}")))?;
        prop_assert_eq!(jsonl::emit(&back), text);
    }
}

/// Whether the event carries a NaN payload (NaN breaks `PartialEq`
/// value comparison; textual identity still holds).
fn has_nan(event: &Event) -> bool {
    match &event.kind {
        EventKind::CycleStart { measured_rate, .. } => measured_rate.is_nan(),
        EventKind::Decision(p) => p.measured_rate.is_nan(),
        _ => false,
    }
}

#[test]
fn every_kind_code_appears_in_generated_events() {
    // Deterministic sweep: each kind index maps onto its schema code.
    let mut seen = Vec::new();
    for kind_idx in 0..14 {
        let event = build_event(kind_idx, 0x1ff, 1.0, 2.0, 0.5, 42, 3, true);
        seen.push(event.kind.code());
        let line = jsonl::emit_line(&event);
        let parsed = jsonl::parse_line(&line, 1).expect("canonical line parses");
        assert_eq!(jsonl::emit_line(&parsed), line);
    }
    assert_eq!(seen, EVENT_KIND_CODES);
}
