//! `chamulteon-obs` — decision-provenance tracing, metrics and cycle
//! profiling for the Chamulteon reproduction.
//!
//! The crate has three parts, all std-only:
//!
//! * **Tracing** ([`event`], [`recorder`]): instrumented code holds a
//!   [`RecorderHandle`] and emits [`Event`]s through
//!   [`RecorderHandle::record_with`]. The schema follows one control
//!   cycle (`cycle_start` → `demand_estimate` → `forecast` →
//!   `capacity_solve` → `conflict_resolution` → `fox_verdict` →
//!   `decision`) plus harness-side `degradation`, `actuation` and
//!   `fault` records; every final target carries a full [`Provenance`].
//! * **Metrics** ([`metrics`]): a [`MetricsRegistry`] of counters,
//!   gauges and log-bucketed histograms with a plain-text snapshot,
//!   plus a [`PhaseTimer`] for per-phase wall-clock.
//! * **Export** ([`jsonl`]): a canonical JSONL serialization of traces
//!   where emit → parse → re-emit is the identity.
//!
//! Everything defaults to *off*: [`Obs::default`] carries no recorder
//! and a disabled registry, so the instrumented hot paths pay one branch
//! per emission point. The bit-identity tests in `chamulteon-bench` pin
//! that attaching a recorder never changes a scaling decision.

#![forbid(unsafe_code)]

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod recorder;

pub use event::{
    ActuationOutcome, Event, EventKind, Provenance, WarmAction, Winner, EVENT_KIND_CODES,
};
pub use jsonl::JsonlError;
pub use metrics::{Counter, Histogram, MetricsRegistry, PhaseTimer, DISABLED_METRICS};
pub use recorder::{NoopRecorder, Recorder, RecorderHandle, RingRecorder};

use std::sync::Arc;

/// The observability bundle an instrumented component carries: an event
/// recorder plus a metrics registry. Cloning shares both.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    recorder: RecorderHandle,
    metrics: Arc<MetricsRegistry>,
}

impl Obs {
    /// A fully disabled bundle (the default): no recorder, disabled
    /// registry.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A bundle feeding `recorder`, with a fresh enabled registry.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Obs {
        Obs {
            recorder: RecorderHandle::new(recorder),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// A recording bundle backed by a fresh [`RingRecorder`] of the given
    /// capacity; returns the bundle and the ring for later readout.
    pub fn recording(capacity: usize) -> (Obs, Arc<RingRecorder>) {
        let ring = Arc::new(RingRecorder::new(capacity));
        (Obs::with_recorder(ring.clone()), ring)
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits the event built by `make` when tracing is on (see
    /// [`RecorderHandle::record_with`]).
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> Event) {
        self.recorder.record_with(make);
    }

    /// The metrics registry (disabled unless the bundle records).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundle_is_fully_off() {
        let obs = Obs::default();
        assert!(!obs.tracing());
        assert!(!obs.metrics().enabled());
        let mut built = false;
        obs.record_with(|| {
            built = true;
            Event::cycle(
                0.0,
                EventKind::Fault {
                    code: "drop_sample".to_owned(),
                },
            )
        });
        assert!(!built, "disabled bundle must not build events");
        obs.metrics().increment("x");
        assert_eq!(obs.metrics().counter_value("x"), None);
    }

    #[test]
    fn recording_bundle_captures_events_and_metrics() {
        let (obs, ring) = Obs::recording(8);
        assert!(obs.tracing());
        assert!(obs.metrics().enabled());
        obs.record_with(|| {
            Event::cycle(
                1.0,
                EventKind::Fault {
                    code: "drop_sample".to_owned(),
                },
            )
        });
        obs.metrics().increment("x");
        assert_eq!(ring.len(), 1);
        assert_eq!(obs.metrics().counter_value("x"), Some(1));

        let clone = obs.clone();
        clone.record_with(|| {
            Event::cycle(
                2.0,
                EventKind::Fault {
                    code: "drop_sample".to_owned(),
                },
            )
        });
        assert_eq!(ring.len(), 2, "clones share the recorder");
        clone.metrics().increment("x");
        assert_eq!(obs.metrics().counter_value("x"), Some(2));
    }
}
