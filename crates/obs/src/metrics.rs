//! Metrics registry: monotonic counters, gauges and log-bucketed
//! histograms with a plain-text [`MetricsRegistry::snapshot`] render.
//!
//! The registry is either *enabled* or *disabled*; every mutation on a
//! disabled registry returns after one branch, so instrumented code can
//! call it unconditionally. [`DISABLED_METRICS`] is a `static` disabled
//! registry for call sites that need a `&MetricsRegistry` but no
//! recording (e.g. the thin `RetryPolicy::run` shim in `chamulteon-core`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
// audit:allow(R8): lock-free counters observe the decision path without perturbing it
use std::sync::atomic::{AtomicU64, Ordering};
// audit:allow(R8): registry interior mutability; never held across a decision
use std::sync::Mutex;
use std::time::Instant;

/// A monotonic counter, safe to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at `value`.
    pub const fn new(value: u64) -> Counter {
        Counter(AtomicU64::new(value))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter::new(self.get())
    }
}

/// A histogram with power-of-two buckets: an observation `v` lands in the
/// bucket indexed by `floor(log2(v))`, read straight from the float's
/// exponent bits (no float→int casts). Tracks count, sum, min and max
/// alongside the buckets. Non-finite and negative observations are
/// ignored; zero lands in the denormal bucket (index −1023).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// The bucket index (binary exponent) an observation falls into.
fn bucket_of(v: f64) -> i32 {
    // IEEE-754 biased exponent, bits 62..52; bias 1023. Lossless: the
    // shifted value fits in 11 bits.
    let biased = (v.to_bits() >> 52) & 0x7ff;
    i32::try_from(biased).unwrap_or(0) - 1023
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation; non-finite or negative values are dropped.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            // audit:allow(lossy-cast): counts fit f64's 53-bit integer range
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `(exponent, count)` buckets in ascending exponent order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &c)| (e, c))
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Names are free-form dotted strings (`"decisions.proactive"`,
/// `"cycle.resolve_us"`). All methods take `&self` and are thread-safe; a
/// poisoned lock silently drops the operation (observability must never
/// take the controller down).
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A `static` disabled registry, for call sites that need a
/// `&MetricsRegistry` but should record nothing.
pub static DISABLED_METRICS: MetricsRegistry = MetricsRegistry::disabled();

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::disabled()
    }
}

impl MetricsRegistry {
    /// Creates an enabled, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates a disabled registry: every mutation is a single-branch
    /// no-op and every read sees an empty registry.
    pub const fn disabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: false,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let Ok(mut counters) = self.counters.lock() else {
            return;
        };
        match counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                counters.insert(name.to_owned(), n);
            }
        }
    }

    /// Adds one to the named counter.
    pub fn increment(&self, name: &str) {
        self.count(name, 1);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let Ok(mut gauges) = self.gauges.lock() else {
            return;
        };
        match gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let Ok(mut histograms) = self.histograms.lock() else {
            return;
        };
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Current value of a counter, when it exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let Ok(counters) = self.counters.lock() else {
            return None;
        };
        counters.get(name).copied()
    }

    /// Current value of a gauge, when it exists.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let Ok(gauges) = self.gauges.lock() else {
            return None;
        };
        gauges.get(name).copied()
    }

    /// A copy of the named histogram, when it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let Ok(histograms) = self.histograms.lock() else {
            return None;
        };
        histograms.get(name).cloned()
    }

    /// Renders every metric as sorted plain text, one line per metric:
    /// counters, then gauges, then histograms (count/mean/min/max).
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        if let Ok(counters) = self.counters.lock() {
            for (name, value) in counters.iter() {
                let _ = writeln!(out, "counter {name} = {value}");
            }
        }
        if let Ok(gauges) = self.gauges.lock() {
            for (name, value) in gauges.iter() {
                let _ = writeln!(out, "gauge {name} = {value:.6}");
            }
        }
        if let Ok(histograms) = self.histograms.lock() {
            for (name, h) in histograms.iter() {
                let _ = writeln!(
                    out,
                    "histogram {name}: count={} mean={:.3} min={:.3} max={:.3}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                );
            }
        }
        out
    }
}

/// Measures successive phases of a cycle, feeding one histogram per phase.
///
/// Constructed with [`PhaseTimer::start`]; each [`PhaseTimer::lap`]
/// records the microseconds since the previous lap (or start) into the
/// named histogram and restarts the clock. When the registry is disabled
/// the timer never reads the clock at all.
#[derive(Debug)]
pub struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    /// Starts a timer; pass `enabled = false` to make every lap a no-op.
    pub fn start(enabled: bool) -> PhaseTimer {
        PhaseTimer {
            last: enabled.then(Instant::now),
        }
    }

    /// Records the elapsed phase into `metrics` under `name`
    /// (microseconds) and restarts the clock.
    pub fn lap(&mut self, metrics: &MetricsRegistry, name: &str) {
        let Some(last) = self.last else {
            return;
        };
        let now = Instant::now();
        metrics.observe(name, now.duration_since(last).as_secs_f64() * 1e6);
        self.last = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.increment("a");
        m.count("a", 4);
        m.increment("b");
        assert_eq!(m.counter_value("a"), Some(5));
        assert_eq!(m.counter_value("b"), Some(1));
        assert_eq!(m.counter_value("absent"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge_value("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_by_binary_exponent() {
        let mut h = Histogram::new();
        h.observe(1.5); // exponent 0
        h.observe(3.0); // exponent 1
        h.observe(2.0); // exponent 1
        h.observe(f64::NAN); // dropped
        h.observe(-1.0); // dropped
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
        assert_eq!(h.min(), 1.5);
        assert_eq!(h.max(), 3.0);
        assert!((h.mean() - 6.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::disabled();
        assert!(!m.enabled());
        m.increment("a");
        m.set_gauge("g", 1.0);
        m.observe("h", 1.0);
        assert_eq!(m.counter_value("a"), None);
        assert_eq!(m.gauge_value("g"), None);
        assert!(m.histogram("h").is_none());
        assert!(m.snapshot().is_empty());
        assert_eq!(DISABLED_METRICS.counter_value("a"), None);
    }

    #[test]
    fn snapshot_renders_sorted_sections() {
        let m = MetricsRegistry::new();
        m.increment("z.counter");
        m.increment("a.counter");
        m.set_gauge("mid.gauge", 0.25);
        m.observe("lat", 10.0);
        let snap = m.snapshot();
        let a = snap.find("counter a.counter").unwrap_or(usize::MAX);
        let z = snap.find("counter z.counter").unwrap_or(usize::MAX);
        assert!(a < z, "{snap}");
        assert!(snap.contains("gauge mid.gauge = 0.250000"), "{snap}");
        assert!(snap.contains("histogram lat: count=1"), "{snap}");
    }

    #[test]
    fn phase_timer_observes_laps() {
        let m = MetricsRegistry::new();
        let mut t = PhaseTimer::start(m.enabled());
        t.lap(&m, "phase.one_us");
        t.lap(&m, "phase.two_us");
        let h = m.histogram("phase.one_us").unwrap_or_default();
        assert_eq!(h.count(), 1);
        assert!(h.min() >= 0.0);

        let disabled = MetricsRegistry::disabled();
        let mut t = PhaseTimer::start(disabled.enabled());
        t.lap(&disabled, "phase.one_us");
        assert!(disabled.histogram("phase.one_us").is_none());
    }
}
