//! JSONL export and import of traced events.
//!
//! One event per line, as a flat JSON object with a canonical key order:
//! `time`, `kind`, `service` (when per-service), then the kind's payload
//! fields in schema order. Optional fields that are absent are *omitted*
//! (never written as `null`); a required float that is non-finite is
//! written as `null` and read back as NaN. Both rules make
//! emit → parse → re-emit the identity on the text, which the round-trip
//! tests pin.
//!
//! The parser accepts exactly the flat-object subset the emitter produces
//! (string, number, `true`/`false`/`null` values — no nesting), with
//! arbitrary whitespace between tokens.

use crate::event::{ActuationOutcome, Event, EventKind, Provenance, WarmAction, Winner};
use std::fmt::Write as _;

/// A parse failure, locating the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

// --- emitting -----------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one canonical JSON line.
struct LineWriter {
    out: String,
    first: bool,
}

impl LineWriter {
    fn new() -> LineWriter {
        LineWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(&mut self.out, key);
        self.out.push(':');
    }

    fn f64(&mut self, key: &str, v: f64) {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    fn opt_f64(&mut self, key: &str, v: Option<f64>) {
        if let Some(v) = v {
            self.f64(key, v);
        }
    }

    fn u64(&mut self, key: &str, v: u64) {
        self.key(key);
        let _ = write!(self.out, "{v}");
    }

    fn opt_u64(&mut self, key: &str, v: Option<u64>) {
        if let Some(v) = v {
            self.u64(key, v);
        }
    }

    fn u32(&mut self, key: &str, v: u32) {
        self.u64(key, u64::from(v));
    }

    fn opt_u32(&mut self, key: &str, v: Option<u32>) {
        if let Some(v) = v {
            self.u32(key, v);
        }
    }

    fn bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn opt_bool(&mut self, key: &str, v: Option<bool>) {
        if let Some(v) = v {
            self.bool(key, v);
        }
    }

    fn str(&mut self, key: &str, v: &str) {
        self.key(key);
        push_json_str(&mut self.out, v);
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Serializes one event as its canonical JSONL line (no trailing newline).
pub fn emit_line(event: &Event) -> String {
    let mut w = LineWriter::new();
    w.f64("time", event.time);
    w.str("kind", event.kind.code());
    w.opt_u32("service", event.service);
    match &event.kind {
        EventKind::CycleStart {
            tick,
            measured_rate,
            entry_fresh,
        } => {
            w.u64("tick", *tick);
            w.f64("measured_rate", *measured_rate);
            w.bool("entry_fresh", *entry_fresh);
        }
        EventKind::Forecast {
            generation,
            horizon,
            trusted,
            mase,
        } => {
            w.u64("generation", *generation);
            w.u64("horizon", *horizon);
            w.bool("trusted", *trusted);
            w.opt_f64("mase", *mase);
        }
        EventKind::DemandEstimate { demand, fresh } => {
            w.f64("demand", *demand);
            w.bool("fresh", *fresh);
        }
        EventKind::CapacitySolve { hits, misses } => {
            w.u64("hits", *hits);
            w.u64("misses", *misses);
        }
        EventKind::ConflictResolution {
            proactive,
            proactive_trusted,
            reactive,
            winner,
            chosen,
        } => {
            w.opt_u32("proactive", *proactive);
            w.opt_bool("proactive_trusted", *proactive_trusted);
            w.opt_u32("reactive", *reactive);
            w.str("winner", winner.as_code());
            w.u32("chosen", *chosen);
        }
        EventKind::FoxVerdict {
            proposed,
            reviewed,
            suppressed,
            paid_remaining,
        } => {
            w.u32("proposed", *proposed);
            w.u32("reviewed", *reviewed);
            w.bool("suppressed", *suppressed);
            w.opt_f64("paid_remaining", *paid_remaining);
        }
        EventKind::Degradation { code, attempt } => {
            w.str("code", code);
            w.opt_u32("attempt", *attempt);
        }
        EventKind::Actuation {
            target,
            outcome,
            attempt,
        } => {
            w.u32("target", *target);
            w.str("outcome", outcome.as_code());
            w.u32("attempt", *attempt);
        }
        EventKind::Fault { code } => {
            w.str("code", code);
        }
        EventKind::Decision(p) => {
            w.u64("tick", p.tick);
            w.f64("measured_rate", p.measured_rate);
            w.opt_f64("offered_rate", p.offered_rate);
            w.f64("demand", p.demand);
            w.opt_f64("forecast_rate", p.forecast_rate);
            w.opt_u64("forecast_generation", p.forecast_generation);
            w.opt_bool("forecast_trusted", p.forecast_trusted);
            w.str("winner", p.winner.as_code());
            w.opt_bool("cache_hit", p.cache_hit);
            w.opt_bool("fox_suppressed", p.fox_suppressed);
            w.u32("proposed", p.proposed);
            w.u32("target", p.target);
        }
        EventKind::Checkpoint { cycle, bytes } => {
            w.u64("cycle", *cycle);
            w.u64("bytes", *bytes);
        }
        EventKind::Restore {
            cycle,
            cold,
            checkpoint_cycle,
        } => {
            w.u64("cycle", *cycle);
            w.bool("cold", *cold);
            w.opt_u64("checkpoint_cycle", *checkpoint_cycle);
        }
        EventKind::Arbitration {
            tenant,
            policy,
            requested,
            granted,
            drawn_warm,
            opened_cold,
            deposited,
            closed,
            in_use,
            budget,
        } => {
            w.u32("tenant", *tenant);
            w.str("policy", policy);
            w.u32("requested", *requested);
            w.u32("granted", *granted);
            w.u32("drawn_warm", *drawn_warm);
            w.u32("opened_cold", *opened_cold);
            w.u32("deposited", *deposited);
            w.u32("closed", *closed);
            w.u32("in_use", *in_use);
            w.u32("budget", *budget);
        }
        EventKind::WarmTransfer {
            action,
            tenant,
            origin,
            start,
            paid_until,
        } => {
            w.str("action", action.as_code());
            w.opt_u32("tenant", *tenant);
            w.u32("origin", *origin);
            w.f64("start", *start);
            w.opt_f64("paid_until", *paid_until);
        }
    }
    w.finish()
}

/// Serializes a slice of events as JSONL text (one line per event, each
/// newline-terminated).
pub fn emit(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&emit_line(event));
        out.push('\n');
    }
    out
}

// --- parsing ------------------------------------------------------------

/// A scalar JSON value as it appears on a line. Numbers keep their exact
/// source text so integer fields re-parse losslessly.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(text: &'a str, line: usize) -> Tokenizer<'a> {
        Tokenizer {
            chars: text.chars().peekable(),
            line,
        }
    }

    fn err(&self, message: impl Into<String>) -> JsonlError {
        JsonlError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\r')) {
            self.chars.next();
        }
    }

    fn consume(&mut self, c: char) -> Result<(), JsonlError> {
        self.skip_ws();
        match self.chars.next() {
            Some(found) if found == c => Ok(()),
            Some(found) => Err(self.err(format!("expected `{c}`, found `{found}`"))),
            None => Err(self.err(format!("expected `{c}`, found end of line"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonlError> {
        self.consume('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(self.err(format!("bad escape `\\{}`", other.unwrap_or(' '))))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<Val, JsonlError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('"') => Ok(Val::Str(self.string()?)),
            Some('t') => self.literal("true").map(|()| Val::Bool(true)),
            Some('f') => self.literal("false").map(|()| Val::Bool(false)),
            Some('n') => self.literal("null").map(|()| Val::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                Ok(Val::Num(num))
            }
            Some(c) => Err(self.err(format!("unexpected `{c}`"))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonlError> {
        for expected in word.chars() {
            if self.chars.next() != Some(expected) {
                return Err(self.err(format!("expected `{word}`")));
            }
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, JsonlError> {
        self.consume('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.consume(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some('}') => return Ok(pairs),
                Some(c) => return Err(self.err(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.err("unterminated object")),
            }
        }
    }
}

/// Typed access to one parsed line's fields.
struct Fields {
    pairs: Vec<(String, Val)>,
    line: usize,
}

impl Fields {
    fn err(&self, message: impl Into<String>) -> JsonlError {
        JsonlError {
            line: self.line,
            message: message.into(),
        }
    }

    fn get(&self, key: &str) -> Option<&Val> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn req_f64(&self, key: &str) -> Result<f64, JsonlError> {
        match self.get(key) {
            Some(Val::Num(n)) => n
                .parse()
                .map_err(|_| self.err(format!("field `{key}`: bad number `{n}`"))),
            Some(Val::Null) => Ok(f64::NAN),
            Some(_) => Err(self.err(format!("field `{key}`: expected number"))),
            None => Err(self.err(format!("missing field `{key}`"))),
        }
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, JsonlError> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.req_f64(key).map(Some),
        }
    }

    fn req_u64(&self, key: &str) -> Result<u64, JsonlError> {
        match self.get(key) {
            Some(Val::Num(n)) => n
                .parse()
                .map_err(|_| self.err(format!("field `{key}`: bad integer `{n}`"))),
            Some(_) => Err(self.err(format!("field `{key}`: expected integer"))),
            None => Err(self.err(format!("missing field `{key}`"))),
        }
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, JsonlError> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.req_u64(key).map(Some),
        }
    }

    fn req_u32(&self, key: &str) -> Result<u32, JsonlError> {
        let v = self.req_u64(key)?;
        u32::try_from(v).map_err(|_| self.err(format!("field `{key}`: {v} exceeds u32")))
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, JsonlError> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.req_u32(key).map(Some),
        }
    }

    fn req_bool(&self, key: &str) -> Result<bool, JsonlError> {
        match self.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            Some(_) => Err(self.err(format!("field `{key}`: expected bool"))),
            None => Err(self.err(format!("missing field `{key}`"))),
        }
    }

    fn opt_bool(&self, key: &str) -> Result<Option<bool>, JsonlError> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.req_bool(key).map(Some),
        }
    }

    fn req_str(&self, key: &str) -> Result<&str, JsonlError> {
        match self.get(key) {
            Some(Val::Str(s)) => Ok(s),
            Some(_) => Err(self.err(format!("field `{key}`: expected string"))),
            None => Err(self.err(format!("missing field `{key}`"))),
        }
    }
}

/// Parses one JSONL line back into an [`Event`].
///
/// # Errors
///
/// Returns a [`JsonlError`] (tagged with `lineno`) on malformed JSON, an
/// unknown kind code, or missing/mistyped schema fields.
pub fn parse_line(line: &str, lineno: usize) -> Result<Event, JsonlError> {
    let mut tok = Tokenizer::new(line, lineno);
    let pairs = tok.object()?;
    tok.skip_ws();
    if let Some(c) = tok.chars.next() {
        return Err(tok.err(format!("trailing `{c}` after object")));
    }
    let fields = Fields {
        pairs,
        line: lineno,
    };

    let time = fields.req_f64("time")?;
    let service = fields.opt_u32("service")?;
    let kind_code = fields.req_str("kind")?;
    let kind = match kind_code {
        "cycle_start" => EventKind::CycleStart {
            tick: fields.req_u64("tick")?,
            measured_rate: fields.req_f64("measured_rate")?,
            entry_fresh: fields.req_bool("entry_fresh")?,
        },
        "forecast" => EventKind::Forecast {
            generation: fields.req_u64("generation")?,
            horizon: fields.req_u64("horizon")?,
            trusted: fields.req_bool("trusted")?,
            mase: fields.opt_f64("mase")?,
        },
        "demand_estimate" => EventKind::DemandEstimate {
            demand: fields.req_f64("demand")?,
            fresh: fields.req_bool("fresh")?,
        },
        "capacity_solve" => EventKind::CapacitySolve {
            hits: fields.req_u64("hits")?,
            misses: fields.req_u64("misses")?,
        },
        "conflict_resolution" => EventKind::ConflictResolution {
            proactive: fields.opt_u32("proactive")?,
            proactive_trusted: fields.opt_bool("proactive_trusted")?,
            reactive: fields.opt_u32("reactive")?,
            winner: parse_winner(&fields)?,
            chosen: fields.req_u32("chosen")?,
        },
        "fox_verdict" => EventKind::FoxVerdict {
            proposed: fields.req_u32("proposed")?,
            reviewed: fields.req_u32("reviewed")?,
            suppressed: fields.req_bool("suppressed")?,
            paid_remaining: fields.opt_f64("paid_remaining")?,
        },
        "degradation" => EventKind::Degradation {
            code: fields.req_str("code")?.to_owned(),
            attempt: fields.opt_u32("attempt")?,
        },
        "actuation" => EventKind::Actuation {
            target: fields.req_u32("target")?,
            outcome: {
                let code = fields.req_str("outcome")?;
                ActuationOutcome::parse(code)
                    .ok_or_else(|| fields.err(format!("unknown outcome `{code}`")))?
            },
            attempt: fields.req_u32("attempt")?,
        },
        "fault" => EventKind::Fault {
            code: fields.req_str("code")?.to_owned(),
        },
        "decision" => EventKind::Decision(Provenance {
            tick: fields.req_u64("tick")?,
            measured_rate: fields.req_f64("measured_rate")?,
            offered_rate: fields.opt_f64("offered_rate")?,
            demand: fields.req_f64("demand")?,
            forecast_rate: fields.opt_f64("forecast_rate")?,
            forecast_generation: fields.opt_u64("forecast_generation")?,
            forecast_trusted: fields.opt_bool("forecast_trusted")?,
            winner: parse_winner(&fields)?,
            cache_hit: fields.opt_bool("cache_hit")?,
            fox_suppressed: fields.opt_bool("fox_suppressed")?,
            proposed: fields.req_u32("proposed")?,
            target: fields.req_u32("target")?,
        }),
        "checkpoint" => EventKind::Checkpoint {
            cycle: fields.req_u64("cycle")?,
            bytes: fields.req_u64("bytes")?,
        },
        "restore" => EventKind::Restore {
            cycle: fields.req_u64("cycle")?,
            cold: fields.req_bool("cold")?,
            checkpoint_cycle: fields.opt_u64("checkpoint_cycle")?,
        },
        "arbitration" => EventKind::Arbitration {
            tenant: fields.req_u32("tenant")?,
            policy: fields.req_str("policy")?.to_owned(),
            requested: fields.req_u32("requested")?,
            granted: fields.req_u32("granted")?,
            drawn_warm: fields.req_u32("drawn_warm")?,
            opened_cold: fields.req_u32("opened_cold")?,
            deposited: fields.req_u32("deposited")?,
            closed: fields.req_u32("closed")?,
            in_use: fields.req_u32("in_use")?,
            budget: fields.req_u32("budget")?,
        },
        "warm_transfer" => EventKind::WarmTransfer {
            action: {
                let code = fields.req_str("action")?;
                WarmAction::parse(code)
                    .ok_or_else(|| fields.err(format!("unknown warm action `{code}`")))?
            },
            tenant: fields.opt_u32("tenant")?,
            origin: fields.req_u32("origin")?,
            start: fields.req_f64("start")?,
            paid_until: fields.opt_f64("paid_until")?,
        },
        other => return Err(fields.err(format!("unknown kind `{other}`"))),
    };
    Ok(Event {
        time,
        service,
        kind,
    })
}

fn parse_winner(fields: &Fields) -> Result<Winner, JsonlError> {
    let code = fields.req_str("winner")?;
    Winner::parse(code).ok_or_else(|| fields.err(format!("unknown winner `{code}`")))
}

/// Parses JSONL text (as produced by [`emit`]) back into events. Blank
/// lines are skipped.
///
/// # Errors
///
/// Returns the first line's [`JsonlError`] on any malformed line.
pub fn parse(text: &str) -> Result<Vec<Event>, JsonlError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, idx + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_canonical_json() {
        let e = Event::service(
            120.0,
            1,
            EventKind::Actuation {
                target: 7,
                outcome: ActuationOutcome::Applied,
                attempt: 0,
            },
        );
        assert_eq!(
            emit_line(&e),
            "{\"time\":120,\"kind\":\"actuation\",\"service\":1,\"target\":7,\
             \"outcome\":\"applied\",\"attempt\":0}"
        );
    }

    #[test]
    fn optional_fields_are_omitted() {
        let e = Event::cycle(
            0.5,
            EventKind::Forecast {
                generation: 3,
                horizon: 8,
                trusted: false,
                mase: None,
            },
        );
        let line = emit_line(&e);
        assert!(!line.contains("mase"), "{line}");
        assert_eq!(parse_line(&line, 1), Ok(e));
    }

    #[test]
    fn non_finite_floats_become_null_and_stay_null() {
        let e = Event::cycle(
            60.0,
            EventKind::CycleStart {
                tick: 4,
                measured_rate: f64::NAN,
                entry_fresh: false,
            },
        );
        let line = emit_line(&e);
        assert!(line.contains("\"measured_rate\":null"), "{line}");
        let back = parse_line(&line, 1).unwrap();
        assert_eq!(emit_line(&back), line, "text-level round trip");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("{", 1).is_err());
        assert!(parse_line("{\"time\":1}", 1).is_err(), "missing kind");
        assert!(
            parse_line("{\"time\":1,\"kind\":\"nope\"}", 1).is_err(),
            "unknown kind"
        );
        assert!(
            parse_line("{\"time\":1,\"kind\":\"fault\",\"code\":\"x\"}extra", 1).is_err(),
            "trailing garbage"
        );
        let err = parse_line("{\"time\":true,\"kind\":\"fault\",\"code\":\"x\"}", 7)
            .expect_err("mistyped time");
        assert_eq!(err.line, 7);
    }

    #[test]
    fn string_escapes_round_trip() {
        let e = Event::cycle(
            1.0,
            EventKind::Fault {
                code: "weird \"code\"\\with\nescapes\u{1}".to_owned(),
            },
        );
        let line = emit_line(&e);
        assert_eq!(parse_line(&line, 1), Ok(e.clone()));
        assert_eq!(emit_line(&parse_line(&line, 1).unwrap()), line);
    }

    #[test]
    fn checkpoint_and_restore_kinds_round_trip() {
        let checkpoint = Event::cycle(
            720.0,
            EventKind::Checkpoint {
                cycle: 12,
                bytes: 4096,
            },
        );
        let warm = Event::cycle(
            780.0,
            EventKind::Restore {
                cycle: 13,
                cold: false,
                checkpoint_cycle: Some(12),
            },
        );
        let cold = Event::cycle(
            780.0,
            EventKind::Restore {
                cycle: 13,
                cold: true,
                checkpoint_cycle: None,
            },
        );
        for e in [&checkpoint, &warm, &cold] {
            let line = emit_line(e);
            assert_eq!(parse_line(&line, 1).as_ref(), Ok(e));
            assert_eq!(emit_line(&parse_line(&line, 1).unwrap()), line);
        }
        assert_eq!(
            emit_line(&checkpoint),
            "{\"time\":720,\"kind\":\"checkpoint\",\"cycle\":12,\"bytes\":4096}"
        );
        let cold_line = emit_line(&cold);
        assert!(
            !cold_line.contains("checkpoint_cycle"),
            "absent checkpoint_cycle must be omitted: {cold_line}"
        );
    }

    #[test]
    fn arbitration_and_warm_transfer_kinds_round_trip() {
        let verdict = Event::cycle(
            3600.0,
            EventKind::Arbitration {
                tenant: 2,
                policy: "cost-greedy".to_owned(),
                requested: 6,
                granted: 4,
                drawn_warm: 1,
                opened_cold: 3,
                deposited: 0,
                closed: 0,
                in_use: 7,
                budget: 8,
            },
        );
        let draw = Event::cycle(
            3600.0,
            EventKind::WarmTransfer {
                action: WarmAction::Draw,
                tenant: Some(2),
                origin: 0,
                start: 600.0,
                paid_until: None,
            },
        );
        let expire = Event::cycle(
            7200.0,
            EventKind::WarmTransfer {
                action: WarmAction::Expire,
                tenant: None,
                origin: 1,
                start: 600.0,
                paid_until: Some(4200.0),
            },
        );
        for e in [&verdict, &draw, &expire] {
            let line = emit_line(e);
            assert_eq!(parse_line(&line, 1).as_ref(), Ok(e));
            assert_eq!(emit_line(&parse_line(&line, 1).unwrap()), line);
        }
        let expire_line = emit_line(&expire);
        assert!(
            !expire_line.contains("\"tenant\""),
            "expiry has no acting tenant: {expire_line}"
        );
        assert!(expire_line.contains("\"paid_until\":4200"), "{expire_line}");
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = "\n{\"time\":1,\"kind\":\"fault\",\"service\":0,\"code\":\"drop_sample\"}\n\n";
        let events = parse(text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(emit(&events).trim(), text.trim());
    }
}
