//! Recorders: where traced [`Event`]s go.
//!
//! The tracing core is a single indirection: instrumented code holds a
//! [`RecorderHandle`] and calls [`RecorderHandle::record_with`] with a
//! closure that *builds* the event. A disabled handle (the default) is
//! `None` inside, so the disabled path is one branch and the event is
//! never constructed — tracing compiles to ~nothing when off.

use crate::event::Event;
use std::collections::VecDeque;
// audit:allow(R8): shared trace sink; append-only, ordering restored at report time
use std::sync::{Arc, Mutex};

/// A sink for traced events.
///
/// Implementations must be cheap and must never panic: recorders run
/// inside the controller's decision path.
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);
}

/// A recorder that discards everything.
///
/// Prefer a default [`RecorderHandle`] (no recorder at all) for the
/// disabled path; `NoopRecorder` exists for call sites that need a
/// concrete `Arc<dyn Recorder>`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &Event) {}
}

/// The (possibly absent) recorder an instrumented component holds.
///
/// Cloning a handle shares the underlying recorder.
#[derive(Debug, Clone, Default)]
pub struct RecorderHandle(Option<Arc<dyn Recorder>>);

impl RecorderHandle {
    /// A disabled handle; [`RecorderHandle::record_with`] is a no-op.
    pub fn disabled() -> RecorderHandle {
        RecorderHandle(None)
    }

    /// A handle feeding the given recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> RecorderHandle {
        RecorderHandle(Some(recorder))
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event built by `make` — which only runs when the
    /// handle is enabled, so the disabled path pays one `Option` check.
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> Event) {
        if let Some(recorder) = &self.0 {
            recorder.record(&make());
        }
    }
}

/// State behind the ring recorder's mutex.
#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<Event>,
    dropped: u64,
}

/// A bounded in-memory recorder: keeps the most recent `capacity` events,
/// counting (and dropping) the oldest ones past that.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingState>,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events (floored at 1).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(RingState::default()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let Ok(state) = self.inner.lock() else {
            return Vec::new();
        };
        state.events.iter().cloned().collect()
    }

    /// Drains and returns the retained events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        let Ok(mut state) = self.inner.lock() else {
            return Vec::new();
        };
        state.events.drain(..).collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().map(|state| state.dropped).unwrap_or(0)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .map(|state| state.events.len())
            .unwrap_or(0)
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: &Event) {
        let Ok(mut state) = self.inner.lock() else {
            return;
        };
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn fault(time: f64) -> Event {
        Event::cycle(
            time,
            EventKind::Fault {
                code: "drop_sample".to_owned(),
            },
        )
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let handle = RecorderHandle::disabled();
        assert!(!handle.enabled());
        let mut built = false;
        handle.record_with(|| {
            built = true;
            fault(0.0)
        });
        assert!(!built, "closure must not run on a disabled handle");
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = Arc::new(RingRecorder::new(3));
        let handle = RecorderHandle::new(ring.clone());
        assert!(handle.enabled());
        for t in 0..5 {
            handle.record_with(|| fault(f64::from(t)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<f64> = ring.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);

        let taken = ring.take();
        assert_eq!(taken.len(), 3);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drop count survives take()");
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let ring = RingRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&fault(1.0));
        ring.record(&fault(2.0));
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].time, 2.0);
    }
}
