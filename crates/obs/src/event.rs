//! The stable event schema of the tracing core.
//!
//! Every record a [`crate::Recorder`] sees is an [`Event`]: a simulation
//! timestamp, an optional service index and an [`EventKind`] payload. The
//! kinds mirror the phases of one Chamulteon control cycle — from
//! `cycle_start` through demand estimation, forecasting, capacity solving,
//! conflict resolution and the FOX review down to the final per-service
//! `decision` carrying its full [`Provenance`] — plus the harness-side
//! `actuation` and `fault` records.
//!
//! The schema is *stable*: kind codes and field names are part of the
//! JSONL contract (see [`crate::jsonl`]) and pinned by tests; extend it by
//! adding kinds or optional fields, never by renaming.

/// Which decision cycle produced the final target of a scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// A stored (trusted) proactive decision won conflict resolution.
    Proactive,
    /// The reactive cycle's sizing won (or was the only candidate).
    Reactive,
    /// Neither cycle proposed a change; the current supply was kept.
    Hold,
}

impl Winner {
    /// Stable snake_case code used in the JSONL schema.
    pub fn as_code(&self) -> &'static str {
        match self {
            Winner::Proactive => "proactive",
            Winner::Reactive => "reactive",
            Winner::Hold => "hold",
        }
    }

    /// Parses a [`Winner::as_code`] code.
    pub fn parse(code: &str) -> Option<Winner> {
        Some(match code {
            "proactive" => Winner::Proactive,
            "reactive" => Winner::Reactive,
            "hold" => Winner::Hold,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Winner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// What happened to one scaling command issued to the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationOutcome {
    /// The command was accepted.
    Applied,
    /// The command failed transiently and will be retried.
    Retried,
    /// The command kept failing past the retry budget and was dropped.
    Abandoned,
}

impl ActuationOutcome {
    /// Stable snake_case code used in the JSONL schema.
    pub fn as_code(&self) -> &'static str {
        match self {
            ActuationOutcome::Applied => "applied",
            ActuationOutcome::Retried => "retried",
            ActuationOutcome::Abandoned => "abandoned",
        }
    }

    /// Parses an [`ActuationOutcome::as_code`] code.
    pub fn parse(code: &str) -> Option<ActuationOutcome> {
        Some(match code {
            "applied" => ActuationOutcome::Applied,
            "retried" => ActuationOutcome::Retried,
            "abandoned" => ActuationOutcome::Abandoned,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ActuationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// How a lease moved across the cross-tenant warm pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmAction {
    /// A still-paid release parked the lease in the warm pool.
    Deposit,
    /// A scale-up drew the lease out of the warm pool.
    Draw,
    /// The lease's paid window ran out undrawn; it was terminated.
    Expire,
}

impl WarmAction {
    /// Stable snake_case code used in the JSONL schema.
    pub fn as_code(&self) -> &'static str {
        match self {
            WarmAction::Deposit => "deposit",
            WarmAction::Draw => "draw",
            WarmAction::Expire => "expire",
        }
    }

    /// Parses a [`WarmAction::as_code`] code.
    pub fn parse(code: &str) -> Option<WarmAction> {
        Some(match code {
            "deposit" => WarmAction::Deposit,
            "draw" => WarmAction::Draw,
            "expire" => WarmAction::Expire,
            _ => return None,
        })
    }
}

impl std::fmt::Display for WarmAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// The full input lineage of one scaling decision — emitted once per
/// service per control cycle, so every target the controller returns can
/// be traced back to what it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// 1-based control-cycle counter of the emitting controller.
    pub tick: u64,
    /// The measured entry arrival rate driving this cycle (NaN when no
    /// fresh measurement existed, e.g. a held cycle).
    pub measured_rate: f64,
    /// The local arrival rate this service was sized for by the reactive
    /// pass; `None` when no reactive sizing ran this cycle.
    pub offered_rate: Option<f64>,
    /// The service's current demand estimate in seconds per request.
    pub demand: f64,
    /// The active forecast's rate for the upcoming interval, when one
    /// exists.
    pub forecast_rate: Option<f64>,
    /// Generation counter of the forecast in play.
    pub forecast_generation: Option<u64>,
    /// Whether that forecast passed the trust (MASE) threshold.
    pub forecast_trusted: Option<bool>,
    /// Which cycle won conflict resolution for this service.
    pub winner: Winner,
    /// Whether the reactive sizing solve was answered from the capacity
    /// cache (`None`: no solve was issued — in-band hold or no sizing).
    pub cache_hit: Option<bool>,
    /// Whether FOX raised the target to keep paid instances (`None` when
    /// no FOX reviewer is attached).
    pub fox_suppressed: Option<bool>,
    /// The target proposed before the FOX review and model-bounds clamp.
    pub proposed: u32,
    /// The final target instance count returned to the caller.
    pub target: u32,
}

/// The payload of one traced event; see the module docs for the cycle
/// phases the kinds map to.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A control cycle began.
    CycleStart {
        /// 1-based control-cycle counter.
        tick: u64,
        /// Measured entry arrival rate (NaN when nothing fresh arrived).
        measured_rate: f64,
        /// Whether the entry service's sample was freshly measured.
        entry_fresh: bool,
    },
    /// A new forecast replaced the active one.
    Forecast {
        /// Generation counter of the new forecast.
        generation: u64,
        /// Number of future intervals predicted.
        horizon: u64,
        /// Whether the forecast passed the trust (MASE) threshold.
        trusted: bool,
        /// In-sample MASE of the forecast, when computable.
        mase: Option<f64>,
    },
    /// A service's demand estimate entering this cycle.
    DemandEstimate {
        /// Estimated demand in seconds per request.
        demand: f64,
        /// Whether the estimate was refreshed from a fresh sample.
        fresh: bool,
    },
    /// Cumulative capacity-cache counters after this cycle's sizing.
    CapacitySolve {
        /// Lookups answered from the memo so far.
        hits: u64,
        /// Lookups that ran the solver so far.
        misses: u64,
    },
    /// Conflict resolution between the stored proactive decision and the
    /// reactive candidate for one service.
    ConflictResolution {
        /// The stored proactive candidate's target, when one covers now.
        proactive: Option<u32>,
        /// Whether that proactive candidate's forecast was trusted.
        proactive_trusted: Option<bool>,
        /// The reactive candidate's target, when the reactive cycle ran.
        reactive: Option<u32>,
        /// Which side won.
        winner: Winner,
        /// The winning target forwarded to the FOX review.
        chosen: u32,
    },
    /// The FOX cost reviewer's verdict on one proposed target.
    FoxVerdict {
        /// The target proposed by conflict resolution.
        proposed: u32,
        /// The (possibly raised) target after the review.
        reviewed: u32,
        /// Whether FOX vetoed part of the scale-down.
        suppressed: bool,
        /// Smallest remaining paid fraction of the charging interval
        /// across the service's leases — FOX's release criterion.
        paid_remaining: Option<f64>,
    },
    /// One rung of the degradation ladder was taken.
    Degradation {
        /// Stable reason code (`DegradationReason::as_code`).
        code: String,
        /// Retry attempt number, for actuation-retry reasons.
        attempt: Option<u32>,
    },
    /// A scaling command was issued to the environment.
    Actuation {
        /// The commanded target instance count.
        target: u32,
        /// What happened to the command.
        outcome: ActuationOutcome,
        /// Zero-based attempt number of this command.
        attempt: u32,
    },
    /// An environment fault was injected (from the simulator's fault log).
    Fault {
        /// Stable fault code (`FaultKind::as_code`).
        code: String,
    },
    /// The final per-service scaling decision with its full lineage.
    Decision(Provenance),
    /// The controller's state was checkpointed (snapshot encoded and
    /// persisted by the harness).
    Checkpoint {
        /// Control cycle the snapshot was taken after.
        cycle: u64,
        /// Size of the encoded snapshot in bytes.
        bytes: u64,
    },
    /// A crashed controller was restarted.
    Restore {
        /// Control cycle at which the replacement controller took over.
        cycle: u64,
        /// `true` for a cold restart (no usable checkpoint), `false`
        /// when state was restored from a snapshot.
        cold: bool,
        /// Cycle of the checkpoint restored from, for warm restarts.
        checkpoint_cycle: Option<u64>,
    },
    /// One tenant's verdict from a multi-tenant cluster arbitration cycle.
    Arbitration {
        /// The tenant this verdict applies to.
        tenant: u32,
        /// Stable policy name (`ArbitrationPolicy::name`).
        policy: String,
        /// The desired total the tenant asked for.
        requested: u32,
        /// The total the arbiter granted (the target actually applied).
        granted: u32,
        /// Instances satisfied from the warm pool this cycle.
        drawn_warm: u32,
        /// Fresh (cold) leases opened this cycle.
        opened_cold: u32,
        /// Still-paid releases parked into the warm pool this cycle.
        deposited: u32,
        /// Releases closed outright this cycle.
        closed: u32,
        /// Cluster budget consumption (running + warm) after the cycle.
        in_use: u32,
        /// The cluster's global instance budget.
        budget: u32,
    },
    /// A lease crossed the warm pool; provenance names the origin tenant
    /// its billed seconds stay attributed to.
    WarmTransfer {
        /// What happened to the lease.
        action: WarmAction,
        /// Tenant on the acting side (depositor or drawer); `None` for
        /// expiries, which happen to the pool itself.
        tenant: Option<u32>,
        /// Tenant billed for the lease — the original lessee.
        origin: u32,
        /// Original lease start time (preserved across transfers).
        start: f64,
        /// End of the already-paid window, for expiries.
        paid_until: Option<f64>,
    },
}

impl EventKind {
    /// The stable snake_case kind code used in the JSONL schema.
    pub fn code(&self) -> &'static str {
        match self {
            EventKind::CycleStart { .. } => "cycle_start",
            EventKind::Forecast { .. } => "forecast",
            EventKind::DemandEstimate { .. } => "demand_estimate",
            EventKind::CapacitySolve { .. } => "capacity_solve",
            EventKind::ConflictResolution { .. } => "conflict_resolution",
            EventKind::FoxVerdict { .. } => "fox_verdict",
            EventKind::Degradation { .. } => "degradation",
            EventKind::Actuation { .. } => "actuation",
            EventKind::Fault { .. } => "fault",
            EventKind::Decision(_) => "decision",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Restore { .. } => "restore",
            EventKind::Arbitration { .. } => "arbitration",
            EventKind::WarmTransfer { .. } => "warm_transfer",
        }
    }
}

/// Every kind code of the schema, in cycle order — the JSONL contract
/// surface, pinned by the round-trip tests.
pub const EVENT_KIND_CODES: &[&str] = &[
    "cycle_start",
    "forecast",
    "demand_estimate",
    "capacity_solve",
    "conflict_resolution",
    "fox_verdict",
    "degradation",
    "actuation",
    "fault",
    "decision",
    "checkpoint",
    "restore",
    "arbitration",
    "warm_transfer",
];

/// One traced record: a timestamp, an optional service index and the
/// phase payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in seconds.
    pub time: f64,
    /// Service index the event concerns; `None` for cycle-level events.
    pub service: Option<u32>,
    /// The phase payload.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor for a cycle-level (serviceless) event.
    pub fn cycle(time: f64, kind: EventKind) -> Event {
        Event {
            time,
            service: None,
            kind,
        }
    }

    /// Convenience constructor for a per-service event; service indices
    /// above `u32::MAX` saturate (no real deployment gets there).
    pub fn service(time: f64, service: usize, kind: EventKind) -> Event {
        Event {
            time,
            service: Some(u32::try_from(service).unwrap_or(u32::MAX)),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_are_stable_and_exhaustive() {
        let samples: Vec<EventKind> = vec![
            EventKind::CycleStart {
                tick: 1,
                measured_rate: 1.0,
                entry_fresh: true,
            },
            EventKind::Forecast {
                generation: 1,
                horizon: 8,
                trusted: true,
                mase: None,
            },
            EventKind::DemandEstimate {
                demand: 0.1,
                fresh: true,
            },
            EventKind::CapacitySolve { hits: 0, misses: 0 },
            EventKind::ConflictResolution {
                proactive: None,
                proactive_trusted: None,
                reactive: Some(3),
                winner: Winner::Reactive,
                chosen: 3,
            },
            EventKind::FoxVerdict {
                proposed: 1,
                reviewed: 2,
                suppressed: true,
                paid_remaining: Some(0.5),
            },
            EventKind::Degradation {
                code: "sample_held".to_owned(),
                attempt: None,
            },
            EventKind::Actuation {
                target: 4,
                outcome: ActuationOutcome::Applied,
                attempt: 0,
            },
            EventKind::Fault {
                code: "drop_sample".to_owned(),
            },
            EventKind::Decision(Provenance {
                tick: 1,
                measured_rate: 1.0,
                offered_rate: Some(1.0),
                demand: 0.1,
                forecast_rate: None,
                forecast_generation: None,
                forecast_trusted: None,
                winner: Winner::Reactive,
                cache_hit: Some(true),
                fox_suppressed: None,
                proposed: 3,
                target: 3,
            }),
            EventKind::Checkpoint {
                cycle: 12,
                bytes: 2048,
            },
            EventKind::Restore {
                cycle: 13,
                cold: false,
                checkpoint_cycle: Some(12),
            },
            EventKind::Arbitration {
                tenant: 0,
                policy: "fair-share".to_owned(),
                requested: 5,
                granted: 3,
                drawn_warm: 1,
                opened_cold: 2,
                deposited: 0,
                closed: 0,
                in_use: 6,
                budget: 8,
            },
            EventKind::WarmTransfer {
                action: WarmAction::Draw,
                tenant: Some(1),
                origin: 0,
                start: 0.0,
                paid_until: None,
            },
        ];
        let codes: Vec<&str> = samples.iter().map(EventKind::code).collect();
        assert_eq!(codes, EVENT_KIND_CODES);
    }

    #[test]
    fn winner_and_outcome_codes_round_trip() {
        for w in [Winner::Proactive, Winner::Reactive, Winner::Hold] {
            assert_eq!(Winner::parse(w.as_code()), Some(w));
            assert_eq!(w.to_string(), w.as_code());
        }
        for o in [
            ActuationOutcome::Applied,
            ActuationOutcome::Retried,
            ActuationOutcome::Abandoned,
        ] {
            assert_eq!(ActuationOutcome::parse(o.as_code()), Some(o));
            assert_eq!(o.to_string(), o.as_code());
        }
        for a in [WarmAction::Deposit, WarmAction::Draw, WarmAction::Expire] {
            assert_eq!(WarmAction::parse(a.as_code()), Some(a));
            assert_eq!(a.to_string(), a.as_code());
        }
        assert_eq!(Winner::parse("nope"), None);
        assert_eq!(ActuationOutcome::parse("nope"), None);
        assert_eq!(WarmAction::parse("nope"), None);
    }
}
