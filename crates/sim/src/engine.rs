//! The discrete-event simulation engine.

use crate::config::SimulationConfig;
use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, FaultRecord};
use crate::nested::VmPoolState;
use crate::stats::{
    second_index, ObservedSample, ServiceIntervalStats, SimulationResult, SupplyChange,
};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_workload::{LoadTrace, PoissonArrivals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Every instance crash a fault plan dictates over a run, in schedule
/// order: one roll per (monitoring interval, service), firing
/// mid-interval. Shared between construction-time scheduling, the
/// checkpoint fork, and the event-driven core (`crate::des`) so all three
/// walk the identical query sequence.
///
/// Interval starts are derived as `k · interval` rather than accumulated
/// with `start += interval`: repeated addition drifts by an ulp every few
/// thousand steps, so on long runs the accumulated schedule would diverge
/// from the derived one and crash times would depend on the duration.
#[allow(clippy::cast_precision_loss)] // k stays far below 2^52 intervals
pub(crate) fn planned_crashes(
    plan: &FaultPlan,
    interval: f64,
    duration: f64,
    service_count: usize,
) -> Vec<(f64, usize, u32)> {
    if !(interval > 0.0) {
        return Vec::new();
    }
    let mut crashes: Vec<(f64, usize, u32)> = Vec::new();
    let mut k = 0usize;
    loop {
        let start = k as f64 * interval;
        if !(start + interval <= duration + 1e-9) {
            break;
        }
        let mid = start + interval / 2.0;
        for service in 0..service_count {
            if let Some(count) = plan.crash_fault(service, k, mid) {
                crashes.push((mid, service, count));
            }
        }
        k += 1;
    }
    crashes
}

/// How a crashed controller comes back
/// ([`FaultKind::ControllerCrash`]).
///
/// The policy belongs to the *driver* running the control loop, not to
/// the simulation itself: the engine only reports crashes via
/// [`Simulation::controller_crash_at`]; rebuilding the scaler — cold or
/// from a checkpoint — is the caller's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// The restarted controller starts from scratch: empty demand
    /// windows, no forecast, a fresh FOX ledger. This models a scaler
    /// with no durable state.
    ColdRestart,
    /// The controller snapshots its state every `cadence` decision
    /// cycles and, after a crash, restores from the latest checkpoint.
    Checkpoint {
        /// Decision cycles between checkpoints; a cadence of 1 means a
        /// snapshot after every cycle. Zero is treated as 1.
        cadence: usize,
    },
}

impl RecoveryPolicy {
    /// The effective cycles-between-checkpoints: `0` for
    /// [`ColdRestart`](RecoveryPolicy::ColdRestart) (never checkpoints),
    /// at least `1` otherwise.
    pub fn checkpoint_every(&self) -> usize {
        match self {
            RecoveryPolicy::ColdRestart => 0,
            RecoveryPolicy::Checkpoint { cadence } => (*cadence).max(1),
        }
    }
}

/// An event in the future-event list. Ordering is by time, then by a
/// monotonically increasing sequence number so simultaneous events process
/// in deterministic FIFO order.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled {
    time: f64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    /// A request finishes service at a station.
    Completion { service: usize, request: usize },
    /// One provisioned instance becomes ready.
    Boot { service: usize },
    /// A scale-down takes effect for `count` instances.
    Shutdown { service: usize, count: u32 },
    /// A vertical resize takes effect.
    Resize { service: usize, speed: f64 },
    /// One VM of the nested pool becomes ready.
    VmReady,
    /// Monitoring interval boundary.
    MonitorTick,
    /// An injected fault kills `count` running instances (idle ones die
    /// instantly, busy ones drain their current request first).
    Crash { service: usize, count: u32 },
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-service runtime state.
#[derive(Debug, Clone)]
struct ServiceState {
    /// Ready (booted) instances.
    running: u32,
    /// Instances currently serving a request (≤ running).
    busy: u32,
    /// Boot events in flight.
    pending_boots: u32,
    /// Boot events that were cancelled by a later scale-down and should be
    /// ignored when they fire.
    cancelled_boots: u32,
    /// Busy instances marked for removal once their request completes.
    retiring: u32,
    /// Container boots queued for a free VM slot (nested pool only).
    waiting_boots: u32,
    /// Desired instance count from the last scaling command.
    target: u32,
    /// Vertical speed factor: service rates are multiplied by this
    /// (1.0 = the nominal instance size).
    speed: f64,
    /// FCFS queue of waiting request ids.
    queue: VecDeque<usize>,
    // Utilization integration.
    last_touch: f64,
    busy_integral: f64,
    capacity_integral: f64,
    // Interval counters.
    interval_arrivals: u64,
    interval_completions: u64,
    interval_response_sum: f64,
    interval_response_count: u64,
}

impl ServiceState {
    fn new(initial: u32) -> Self {
        ServiceState {
            running: initial,
            busy: 0,
            pending_boots: 0,
            cancelled_boots: 0,
            retiring: 0,
            waiting_boots: 0,
            target: initial,
            speed: 1.0,
            queue: VecDeque::new(),
            last_touch: 0.0,
            busy_integral: 0.0,
            capacity_integral: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_response_sum: 0.0,
            interval_response_count: 0,
        }
    }

    /// Integrates busy/capacity time up to `now` before a state change.
    fn touch(&mut self, now: f64) {
        let dt = now - self.last_touch;
        if dt > 0.0 {
            self.busy_integral += f64::from(self.busy) * dt;
            self.capacity_integral += f64::from(self.running) * dt;
            self.last_touch = now;
        }
    }

    /// All instances this service will have once pending boots finish
    /// (including boots still waiting for a VM slot).
    fn provisioned(&self) -> u32 {
        self.running + self.pending_boots - self.cancelled_boots + self.waiting_boots
    }
}

/// A request's progress through the service path.
#[derive(Debug, Clone, Copy)]
struct RequestState {
    /// Wall-clock send time.
    start: f64,
    /// Index into the topological path (which service it is at).
    stage: usize,
    /// When it entered the current service's queue.
    entered_service: f64,
}

/// The request-level discrete-event simulation of a multi-service
/// application under a load trace. See the crate docs for the modeling
/// assumptions.
///
/// A simulation is `Clone`: a clone is an independent checkpoint sharing
/// no state with the original, which is what
/// [`fork_with_fault_plan`](Simulation::fork_with_fault_plan) builds on.
#[derive(Clone)]
pub struct Simulation {
    // Static configuration.
    path: Vec<usize>,
    true_demands: Vec<f64>,
    config: SimulationConfig,
    duration: f64,
    min_instances: Vec<u32>,
    max_instances: Vec<u32>,
    // Dynamic state.
    now: f64,
    seq: u64,
    events: BinaryHeap<Scheduled>,
    next_arrival: Option<f64>,
    arrivals: PoissonArrivals,
    services: Vec<ServiceState>,
    pool: Option<VmPoolState>,
    requests: Vec<RequestState>,
    in_flight: u64,
    rng: StdRng,
    // Accounting.
    supply: Vec<Vec<SupplyChange>>,
    sent_per_second: Vec<u64>,
    conformant_per_second: Vec<u64>,
    completed: u64,
    satisfied: u64,
    tolerating: u64,
    response_time_sum: f64,
    interval_history: Vec<Vec<ServiceIntervalStats>>,
    // Fault injection.
    observed_history: Vec<Vec<Option<ObservedSample>>>,
    fault_log: Vec<FaultRecord>,
    /// Per-target scaling-command counters (one per service plus one for
    /// the VM pool) salting the fault plan's actuation rolls, so a retry
    /// of a transiently failed command rolls afresh.
    actuation_attempts: Vec<u64>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("duration", &self.duration)
            .field("services", &self.services.len())
            .field("in_flight", &self.in_flight)
            .field("completed", &self.completed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation of `model` under `trace`.
    ///
    /// Services start at their model-declared initial instance counts; the
    /// ground-truth service times are exponential with the model's nominal
    /// demands as means. The request path is the topological order of the
    /// model's invocation graph (the paper's chain).
    pub fn new(model: &ApplicationModel, trace: &LoadTrace, config: SimulationConfig) -> Self {
        let path: Vec<usize> = {
            // A validated model is acyclic; fall back to index order if a
            // cycle ever slips through so the request path stays complete.
            let order = model
                .graph()
                .topological_order()
                .unwrap_or_else(|| (0..model.service_count()).collect());
            let ratios = model.visit_ratios();
            order.into_iter().filter(|&s| ratios[s] > 0.0).collect()
        };
        let true_demands: Vec<f64> = model
            .services()
            .iter()
            .map(|s| s.nominal_demand())
            .collect();
        let services: Vec<ServiceState> = model
            .services()
            .iter()
            .map(|s| ServiceState::new(s.initial_instances()))
            .collect();
        let duration = trace.duration();
        let seconds = second_index(duration.ceil()).saturating_add(1);
        let mut arrivals = PoissonArrivals::new(trace, config.seed.wrapping_add(1));
        let next_arrival = arrivals.next();
        let supply = services
            .iter()
            .map(|s| {
                vec![SupplyChange {
                    time: 0.0,
                    running: s.running,
                }]
            })
            .collect();
        let pool = config.vm_pool.map(|cfg| {
            let mut state = VmPoolState::new(cfg);
            // The initial containers occupy slots from the start.
            state.slots_in_use = services.iter().map(|s| s.running).sum();
            state
        });
        let mut sim = Simulation {
            path,
            true_demands,
            pool,
            min_instances: model.services().iter().map(|s| s.min_instances()).collect(),
            max_instances: model.services().iter().map(|s| s.max_instances()).collect(),
            duration,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            next_arrival,
            arrivals,
            services,
            requests: Vec::new(),
            in_flight: 0,
            rng: StdRng::seed_from_u64(config.seed),
            supply,
            sent_per_second: vec![0; seconds],
            conformant_per_second: vec![0; seconds],
            completed: 0,
            satisfied: 0,
            tolerating: 0,
            response_time_sum: 0.0,
            interval_history: vec![Vec::new(); model.service_count()],
            observed_history: vec![Vec::new(); model.service_count()],
            fault_log: Vec::new(),
            actuation_attempts: vec![0; model.service_count() + 1],
            config,
        };
        sim.schedule(sim.config.monitoring_interval, EventKind::MonitorTick);
        sim.schedule_planned_crashes();
        sim
    }

    /// Pre-schedules every instance crash the fault plan dictates: one
    /// roll per (service, monitoring interval), firing mid-interval.
    fn schedule_planned_crashes(&mut self) {
        let crashes = match &self.config.fault_plan {
            Some(plan) => planned_crashes(
                plan,
                self.config.monitoring_interval,
                self.duration,
                self.services.len(),
            ),
            None => Vec::new(),
        };
        for (time, service, count) in crashes {
            self.schedule(time, EventKind::Crash { service, count });
        }
    }

    /// Forks an independent *faulted* continuation of this clean run:
    /// the returned simulation carries `plan` and is bit-identical — same
    /// event order, same random draws, same fault schedule — to a
    /// simulation constructed with `plan` from the start and run to the
    /// same point.
    ///
    /// This is the checkpoint primitive of the robustness grid: the clean
    /// prefix up to the first fault window is shared once instead of
    /// re-simulated per fault class.
    ///
    /// Soundness argument (why bit-identity holds): before the earliest
    /// fault window every fault query is time-gated to `None` and each
    /// roll seeds its own generator, so a faulted run's clean prefix
    /// performs exactly the same state transitions as a clean run. The
    /// only construction-time difference is that the `m` planned crash
    /// events occupy sequence numbers `2..=m+1` (the initial monitor tick
    /// holds 1) and every later event is displaced by `+m` — which is
    /// precisely the renumbering applied here.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CannotFork`] when this run already has a fault
    /// plan, or when the earliest window of `plan` has already opened
    /// (`now ≥ start`) — in both cases a from-scratch faulted run could
    /// have diverged from this one, so the caller must fall back to one.
    pub fn fork_with_fault_plan(&self, plan: FaultPlan) -> Result<Simulation, SimError> {
        if self.config.fault_plan.is_some() {
            return Err(SimError::CannotFork {
                reason: "a fault plan is already installed",
            });
        }
        let earliest = plan
            .windows()
            .iter()
            .map(|w| w.start)
            .fold(f64::INFINITY, f64::min);
        if !(self.now < earliest) {
            return Err(SimError::CannotFork {
                reason: "the earliest fault window has already opened",
            });
        }
        let crashes = planned_crashes(
            &plan,
            self.config.monitoring_interval,
            self.duration,
            self.services.len(),
        );
        let m = u64::try_from(crashes.len()).unwrap_or(u64::MAX);
        let mut forked = self.clone();
        forked.config.fault_plan = Some(plan);
        if m > 0 {
            if let Some(&(first_crash, _, _)) = crashes.first() {
                if first_crash <= self.now {
                    return Err(SimError::CannotFork {
                        reason: "a planned crash predates the checkpoint",
                    });
                }
            }
            let mut events = std::mem::take(&mut forked.events).into_vec();
            for ev in &mut events {
                if ev.seq >= 2 {
                    ev.seq = ev.seq.saturating_add(m);
                }
            }
            for (i, &(time, service, count)) in crashes.iter().enumerate() {
                events.push(Scheduled {
                    time,
                    seq: u64::try_from(i).unwrap_or(u64::MAX).saturating_add(2),
                    kind: EventKind::Crash { service, count },
                });
            }
            forked.events = BinaryHeap::from(events);
            forked.seq = forked.seq.saturating_add(m);
        }
        Ok(forked)
    }

    /// Consults the fault plan for a controller crash at the start of
    /// decision cycle `cycle` (wall clock `time`). Returns `true` — and
    /// logs a [`FaultRecord`] — when the scaler process dies here; the
    /// driver must then rebuild its controller according to its
    /// [`RecoveryPolicy`]. The simulated deployment itself is unaffected:
    /// instances keep serving, only the scaler's memory is lost.
    pub fn controller_crash_at(&mut self, cycle: usize, time: f64) -> bool {
        let crashed = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.controller_crash(cycle, time));
        if crashed {
            self.fault_log.push(FaultRecord {
                time,
                service: 0,
                kind: FaultKind::ControllerCrash { at_cycle: cycle },
            });
        }
        crashed
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Ready (booted) instances of a service.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn running(&self, service: usize) -> u32 {
        self.services[service].running
    }

    /// Ready plus booting instances — what a controller should treat as the
    /// already-ordered supply.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn provisioned(&self, service: usize) -> u32 {
        self.services[service].provisioned()
    }

    /// Current queue length at a service.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn queue_length(&self, service: usize) -> usize {
        self.services[service].queue.len()
    }

    /// Immediately sets a service's supply (no provisioning delay) —
    /// intended for initial placement before the experiment starts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index.
    pub fn set_supply(&mut self, service: usize, count: u32) -> Result<(), SimError> {
        let count = self.clamp_to_bounds(service, count)?;
        let now = self.now;
        let state = &mut self.services[service];
        state.touch(now);
        // Cannot drop below the number of busy servers; the excess retires
        // on completion.
        let old_running = state.running;
        let new_running = count.max(state.busy);
        state.retiring = new_running - count.min(new_running);
        state.running = new_running;
        state.target = count;
        if let Some(pool) = &mut self.pool {
            // Direct placement bypasses the boot path but still occupies
            // (or frees) slots.
            if new_running >= old_running {
                pool.slots_in_use += new_running - old_running;
            } else {
                pool.slots_in_use = pool.slots_in_use.saturating_sub(old_running - new_running);
            }
        }
        self.record_supply(service);
        self.start_queued(service);
        Ok(())
    }

    /// Consults the fault plan for the next scaling command aimed at
    /// `target_index` (a service index, or `service_count` for the VM
    /// pool). Returns the extra provisioning delay to apply, or an error
    /// for an injected transient failure. Every injected fault is logged.
    fn check_actuation_fault(&mut self, target_index: usize) -> Result<f64, SimError> {
        let attempt = self.actuation_attempts[target_index];
        self.actuation_attempts[target_index] = attempt.wrapping_add(1);
        let fault = self
            .config
            .fault_plan
            .as_ref()
            .and_then(|p| p.actuation_fault(target_index, attempt, self.now));
        match fault {
            Some(kind @ FaultKind::ActuationFail) => {
                self.fault_log.push(FaultRecord {
                    time: self.now,
                    service: target_index,
                    kind,
                });
                Err(SimError::ActuationFailed {
                    service: target_index,
                })
            }
            Some(kind @ FaultKind::ActuationDelay { extra }) => {
                self.fault_log.push(FaultRecord {
                    time: self.now,
                    service: target_index,
                    kind,
                });
                Ok(extra.max(0.0))
            }
            _ => Ok(0.0),
        }
    }

    /// Issues a scaling command: provisioning and deprovisioning delays
    /// from the deployment profile apply. The target is clamped into the
    /// model's `[min_instances, max_instances]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index and
    /// [`SimError::ActuationFailed`] when an injected fault makes the
    /// command fail transiently (retrying may succeed).
    pub fn scale_to(&mut self, service: usize, target: u32) -> Result<(), SimError> {
        let target = self.clamp_to_bounds(service, target)?;
        let extra_delay = self.check_actuation_fault(service)?;
        let provisioned = self.services[service].provisioned();
        let prov_delay = self.config.profile.provisioning_delay + extra_delay;
        let deprov_delay = self.config.profile.deprovisioning_delay + extra_delay;
        match target.cmp(&provisioned) {
            Ordering::Greater => {
                let add = target - provisioned;
                for _ in 0..add {
                    match &mut self.pool {
                        Some(pool) if pool.free_slots() == 0 => {
                            // No slot: queue the boot until a VM frees up.
                            pool.waiting.push_back(service);
                            self.services[service].waiting_boots += 1;
                        }
                        Some(pool) => {
                            pool.slots_in_use += 1;
                            self.services[service].pending_boots += 1;
                            self.schedule(self.now + prov_delay, EventKind::Boot { service });
                        }
                        None => {
                            self.services[service].pending_boots += 1;
                            self.schedule(self.now + prov_delay, EventKind::Boot { service });
                        }
                    }
                }
            }
            Ordering::Less => {
                let mut remove = provisioned - target;
                // First drop boots still waiting for a slot (cheapest).
                if self.services[service].waiting_boots > 0 {
                    let drop_waiting = remove.min(self.services[service].waiting_boots);
                    self.services[service].waiting_boots -= drop_waiting;
                    remove -= drop_waiting;
                    if let Some(pool) = &mut self.pool {
                        let mut left = drop_waiting;
                        pool.waiting.retain(|&svc| {
                            if left > 0 && svc == service {
                                left -= 1;
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
                // Then cancel boots that have not completed yet.
                let state = &mut self.services[service];
                let cancellable = state.pending_boots - state.cancelled_boots;
                let cancel = remove.min(cancellable);
                state.cancelled_boots += cancel;
                remove -= cancel;
                if cancel > 0 {
                    if let Some(pool) = &mut self.pool {
                        // Cancelled boots release their reserved slots now.
                        pool.slots_in_use = pool.slots_in_use.saturating_sub(cancel);
                    }
                    self.drain_waiting_boots();
                }
                if remove > 0 {
                    self.schedule(
                        self.now + deprov_delay,
                        EventKind::Shutdown {
                            service,
                            count: remove,
                        },
                    );
                }
            }
            Ordering::Equal => {}
        }
        self.services[service].target = target;
        Ok(())
    }

    /// Issues a vertical scaling command: from one provisioning delay from
    /// now, every instance of `service` runs at `speed` times the nominal
    /// service rate (a resize requires redeploying the instances, so the
    /// same delay as a scale-up applies). Non-finite or non-positive
    /// speeds are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index and
    /// [`SimError::InvalidConfig`] for an invalid speed.
    pub fn scale_vertical(&mut self, service: usize, speed: f64) -> Result<(), SimError> {
        if service >= self.services.len() {
            return Err(SimError::UnknownService {
                index: service,
                count: self.services.len(),
            });
        }
        if !(speed > 0.0) || !speed.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "speed",
                value: speed,
            });
        }
        let delay = self.config.profile.provisioning_delay;
        self.schedule(self.now + delay, EventKind::Resize { service, speed });
        Ok(())
    }

    /// The current vertical speed factor of a service (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn speed(&self, service: usize) -> f64 {
        self.services[service].speed
    }

    /// Issues a VM-pool scaling command (nested deployments only): new VMs
    /// become usable after the pool's boot delay; scale-downs cancel
    /// pending VM boots first and then remove only VMs whose slots are
    /// entirely free (occupied VMs are never killed under their
    /// containers).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the simulation has no VM
    /// pool and [`SimError::ActuationFailed`] when an injected fault makes
    /// the command fail transiently.
    pub fn scale_vms(&mut self, target: u32) -> Result<(), SimError> {
        let now = self.now;
        let pool_index = self.services.len();
        let extra_delay = self.check_actuation_fault(pool_index)?;
        let Some(pool) = &mut self.pool else {
            return Err(SimError::InvalidConfig {
                field: "vm_pool",
                value: 0.0,
            });
        };
        let target = target.max(1);
        let provisioned = pool.provisioned_vms();
        match target.cmp(&provisioned) {
            Ordering::Greater => {
                let add = target - provisioned;
                pool.pending += add;
                let delay = pool.config.vm_boot_delay + extra_delay;
                for _ in 0..add {
                    self.schedule(now + delay, EventKind::VmReady);
                }
            }
            Ordering::Less => {
                let mut remove = provisioned - target;
                // Cancel pending VM boots first.
                let cancellable = pool.pending - pool.cancelled;
                let cancel = remove.min(cancellable);
                pool.cancelled += cancel;
                remove -= cancel;
                // Remove only entirely free VMs.
                let free_vms = pool.free_slots() / pool.config.slots_per_vm;
                let removable = remove.min(free_vms).min(pool.running.saturating_sub(1));
                pool.running -= removable;
            }
            Ordering::Equal => {}
        }
        Ok(())
    }

    /// Ready VMs of the nested pool (`None` for flat deployments).
    pub fn vms_running(&self) -> Option<u32> {
        self.pool.as_ref().map(|p| p.running)
    }

    /// Ready plus booting VMs (`None` for flat deployments).
    pub fn vms_provisioned(&self) -> Option<u32> {
        self.pool.as_ref().map(|p| p.provisioned_vms())
    }

    /// Free container slots in the pool (`None` for flat deployments).
    pub fn free_slots(&self) -> Option<u32> {
        self.pool.as_ref().map(|p| p.free_slots())
    }

    /// Container boots currently stalled waiting for a VM slot (`None` for
    /// flat deployments).
    pub fn waiting_containers(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.waiting.len())
    }

    /// Runs the simulation until time `t` (clamped to the trace duration),
    /// processing all arrivals and events in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeReversed`] when `t` is NaN or earlier than
    /// the current simulation time — simulated time is monotonic, and
    /// silently rewinding `now` would corrupt every integral the
    /// monitoring statistics are built from.
    pub fn run_until(&mut self, t: f64) -> Result<(), SimError> {
        if t.is_nan() || t < self.now {
            return Err(SimError::TimeReversed {
                target: t,
                now: self.now,
            });
        }
        self.advance_to(t);
        Ok(())
    }

    /// Infallible core of [`run_until`](Simulation::run_until): `t` has
    /// been validated as monotonic.
    fn advance_to(&mut self, t: f64) {
        let t = t.min(self.duration);
        loop {
            let next_event_time = self.events.peek().map(|e| e.time);
            let next_arrival_time = self.next_arrival;
            let (time, is_arrival) = match (next_event_time, next_arrival_time) {
                (None, None) => break,
                (Some(e), None) => (e, false),
                (None, Some(a)) => (a, true),
                (Some(e), Some(a)) => {
                    if a <= e {
                        (a, true)
                    } else {
                        (e, false)
                    }
                }
            };
            if time > t {
                break;
            }
            self.now = time;
            if is_arrival {
                self.next_arrival = self.arrivals.next();
                self.handle_external_arrival(time);
            } else if let Some(ev) = self.events.pop() {
                self.dispatch(ev.kind);
            }
        }
        self.now = t;
    }

    /// Runs to the end of the trace and returns the collected result.
    pub fn run_to_end(mut self) -> SimulationResult {
        self.advance_to(self.duration);
        self.finish()
    }

    /// Finalizes accounting and returns the result.
    pub fn finish(mut self) -> SimulationResult {
        let now = self.now;
        for service in 0..self.services.len() {
            self.services[service].touch(now);
        }
        SimulationResult {
            duration: self.duration,
            supply: self.supply,
            sent_per_second: self.sent_per_second,
            conformant_per_second: self.conformant_per_second,
            completed: self.completed,
            satisfied: self.satisfied,
            tolerating: self.tolerating,
            in_flight_at_end: self.in_flight,
            response_time_sum: self.response_time_sum,
            interval_history: self.interval_history,
            fault_log: self.fault_log,
        }
    }

    /// Number of completed monitoring intervals so far.
    pub fn intervals_completed(&self) -> usize {
        self.interval_history.first().map(Vec::len).unwrap_or(0)
    }

    /// The monitoring stats of interval `index` (0-based) for every
    /// service, or `None` if that interval has not completed yet.
    pub fn interval(&self, index: usize) -> Option<Vec<ServiceIntervalStats>> {
        if index >= self.intervals_completed() {
            return None;
        }
        Some(self.interval_history.iter().map(|h| h[index]).collect())
    }

    /// What monitoring *reported* for interval `index` (0-based), one
    /// entry per service: `None` inside the vector is a dropped sample,
    /// and reported values may be stale or corrupt under an active fault
    /// plan (without one they faithfully mirror [`interval`]). Returns
    /// `None` if the interval has not completed yet.
    ///
    /// [`interval`]: Simulation::interval
    pub fn observe_interval(&self, index: usize) -> Option<Vec<Option<ObservedSample>>> {
        if index >= self.intervals_completed() {
            return None;
        }
        Some(self.observed_history.iter().map(|h| h[index]).collect())
    }

    /// Every fault injected so far, in time order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn clamp_to_bounds(&self, service: usize, count: u32) -> Result<u32, SimError> {
        if service >= self.services.len() {
            return Err(SimError::UnknownService {
                index: service,
                count: self.services.len(),
            });
        }
        Ok(count.clamp(self.min_instances[service], self.max_instances[service]))
    }

    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Scheduled {
            time,
            seq: self.seq,
            kind,
        });
    }

    fn record_supply(&mut self, service: usize) {
        let running = self.services[service].running;
        let timeline = &mut self.supply[service];
        if timeline.last().map(|c| c.running) != Some(running) {
            timeline.push(SupplyChange {
                time: self.now,
                running,
            });
        }
    }

    fn handle_external_arrival(&mut self, time: f64) {
        let sec = second_index(time);
        if sec < self.sent_per_second.len() {
            self.sent_per_second[sec] += 1;
        }
        let id = self.requests.len();
        self.requests.push(RequestState {
            start: time,
            stage: 0,
            entered_service: time,
        });
        self.in_flight += 1;
        let first = self.path[0];
        self.arrive_at_service(first, id);
    }

    fn arrive_at_service(&mut self, service: usize, request: usize) {
        let now = self.now;
        let state = &mut self.services[service];
        state.interval_arrivals += 1;
        self.requests[request].entered_service = now;
        if state.busy < state.running {
            self.begin_service(service, request);
        } else {
            state.queue.push_back(request);
        }
    }

    fn begin_service(&mut self, service: usize, request: usize) {
        let now = self.now;
        // Vertical scaling speeds every instance up uniformly.
        let demand = self.true_demands[service] / self.services[service].speed;
        let u: f64 = self.rng.gen();
        let service_time = -(1.0 - u).ln() * demand;
        let state = &mut self.services[service];
        state.touch(now);
        state.busy += 1;
        self.schedule(
            now + service_time,
            EventKind::Completion { service, request },
        );
    }

    fn start_queued(&mut self, service: usize) {
        while self.services[service].busy < self.services[service].running {
            let Some(request) = self.services[service].queue.pop_front() else {
                break;
            };
            self.begin_service(service, request);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Completion { service, request } => self.on_completion(service, request),
            EventKind::Boot { service } => self.on_boot(service),
            EventKind::Shutdown { service, count } => self.on_shutdown(service, count),
            EventKind::Resize { service, speed } => {
                self.services[service].speed = speed;
            }
            EventKind::VmReady => self.on_vm_ready(),
            EventKind::MonitorTick => self.on_monitor_tick(),
            EventKind::Crash { service, count } => self.on_crash(service, count),
        }
    }

    /// An injected crash: idle instances die immediately, busy ones drain
    /// their current request and then die (via the retiring path). The
    /// scaling `target` is deliberately left untouched — the controller
    /// observes the shortfall through monitoring and must re-order the
    /// lost capacity itself.
    fn on_crash(&mut self, service: usize, count: u32) {
        let now = self.now;
        {
            let state = &mut self.services[service];
            state.touch(now);
            let idle = state.running - state.busy;
            let kill_idle = count.min(idle);
            state.running -= kill_idle;
            let drain = (count - kill_idle).min(state.busy.saturating_sub(state.retiring));
            state.retiring += drain;
            if kill_idle > 0 {
                if let Some(pool) = &mut self.pool {
                    pool.slots_in_use = pool.slots_in_use.saturating_sub(kill_idle);
                }
            }
        }
        self.fault_log.push(FaultRecord {
            time: now,
            service,
            kind: FaultKind::InstanceCrash { count },
        });
        self.drain_waiting_boots();
        self.record_supply(service);
    }

    fn on_completion(&mut self, service: usize, request: usize) {
        let now = self.now;
        {
            let state = &mut self.services[service];
            state.touch(now);
            state.busy -= 1;
            state.interval_completions += 1;
            let waited = now - self.requests[request].entered_service;
            state.interval_response_sum += waited;
            state.interval_response_count += 1;
            if state.retiring > 0 {
                state.retiring -= 1;
                state.running -= 1;
                if let Some(pool) = &mut self.pool {
                    pool.slots_in_use = pool.slots_in_use.saturating_sub(1);
                }
            }
        }
        self.drain_waiting_boots();
        self.record_supply(service);
        self.start_queued(service);

        // Advance the request along the path.
        let stage = self.requests[request].stage + 1;
        if stage < self.path.len() {
            self.requests[request].stage = stage;
            let next = self.path[stage];
            self.arrive_at_service(next, request);
        } else {
            self.finish_request(request);
        }
    }

    fn finish_request(&mut self, request: usize) {
        let start = self.requests[request].start;
        let response = self.now - start;
        self.in_flight -= 1;
        self.completed += 1;
        self.response_time_sum += response;
        if self.config.slo.is_satisfied(response) {
            self.satisfied += 1;
            let sec = second_index(start);
            if sec < self.conformant_per_second.len() {
                self.conformant_per_second[sec] += 1;
            }
        } else if self.config.slo.is_tolerating(response) {
            self.tolerating += 1;
        }
    }

    fn on_boot(&mut self, service: usize) {
        let now = self.now;
        let state = &mut self.services[service];
        if state.cancelled_boots > 0 {
            state.cancelled_boots -= 1;
            state.pending_boots -= 1;
            return;
        }
        state.touch(now);
        state.pending_boots -= 1;
        state.running += 1;
        self.record_supply(service);
        self.start_queued(service);
    }

    fn on_shutdown(&mut self, service: usize, count: u32) {
        let now = self.now;
        let state = &mut self.services[service];
        state.touch(now);
        let idle = state.running - state.busy;
        let remove_idle = count.min(idle);
        state.running -= remove_idle;
        // Whatever could not be removed idle retires busy servers on their
        // next completion.
        state.retiring += count - remove_idle;
        if remove_idle > 0 {
            if let Some(pool) = &mut self.pool {
                pool.slots_in_use = pool.slots_in_use.saturating_sub(remove_idle);
            }
            self.drain_waiting_boots();
        }
        self.record_supply(service);
    }

    fn on_vm_ready(&mut self) {
        if let Some(pool) = &mut self.pool {
            if pool.cancelled > 0 {
                pool.cancelled -= 1;
                pool.pending -= 1;
                return;
            }
            pool.pending -= 1;
            pool.running += 1;
        }
        self.drain_waiting_boots();
    }

    /// Starts queued container boots while free slots exist (nested pool
    /// only).
    fn drain_waiting_boots(&mut self) {
        let prov_delay = self.config.profile.provisioning_delay;
        let now = self.now;
        loop {
            let Some(pool) = &mut self.pool else { return };
            if pool.free_slots() == 0 {
                return;
            }
            let Some(service) = pool.waiting.pop_front() else {
                return;
            };
            pool.slots_in_use += 1;
            self.services[service].waiting_boots -= 1;
            self.services[service].pending_boots += 1;
            self.schedule(now + prov_delay, EventKind::Boot { service });
        }
    }

    fn on_monitor_tick(&mut self) {
        let now = self.now;
        let interval = self.config.monitoring_interval;
        for (idx, state) in self.services.iter_mut().enumerate() {
            state.touch(now);
            let utilization = if state.capacity_integral > 0.0 {
                (state.busy_integral / state.capacity_integral).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let mean_response_time = if state.interval_response_count > 0 {
                Some(state.interval_response_sum / state.interval_response_count as f64)
            } else {
                None
            };
            self.interval_history[idx].push(ServiceIntervalStats {
                start: now - interval,
                duration: interval,
                arrivals: state.interval_arrivals,
                completions: state.interval_completions,
                utilization,
                mean_response_time,
                instances_end: state.running,
                queue_length_end: state.queue.len(),
            });
            state.busy_integral = 0.0;
            state.capacity_integral = 0.0;
            state.interval_arrivals = 0;
            state.interval_completions = 0;
            state.interval_response_sum = 0.0;
            state.interval_response_count = 0;
        }
        self.record_observations(now);
        if now + interval <= self.duration + 1e-9 {
            self.schedule(now + interval, EventKind::MonitorTick);
        }
    }

    /// Derives what monitoring *reports* for the interval that just closed:
    /// faithful copies of the truth without a fault plan, and dropped,
    /// stale or corrupted samples under one. Every injected monitoring
    /// fault is logged.
    fn record_observations(&mut self, now: f64) {
        let k = self.intervals_completed().saturating_sub(1);
        for idx in 0..self.services.len() {
            let fault = self
                .config
                .fault_plan
                .as_ref()
                .and_then(|p| p.monitor_fault(idx, k, now));
            let observed = match fault {
                Some(FaultKind::DropSample) => None,
                Some(FaultKind::DelaySample { intervals }) => k
                    .checked_sub(intervals)
                    .map(|j| ObservedSample::from_stats(&self.interval_history[idx][j])),
                Some(FaultKind::CorruptSample { mode }) => {
                    Some(ObservedSample::from_stats(&self.interval_history[idx][k]).corrupted(mode))
                }
                // `monitor_fault` only returns monitoring kinds.
                None | Some(_) => Some(ObservedSample::from_stats(&self.interval_history[idx][k])),
            };
            if let Some(kind) = fault {
                self.fault_log.push(FaultRecord {
                    time: now,
                    service: idx,
                    kind,
                });
            }
            self.observed_history[idx].push(observed);
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;
    use crate::config::{DeploymentProfile, SloPolicy};
    use chamulteon_perfmodel::ApplicationModel;
    use chamulteon_workload::LoadTrace;

    fn config(seed: u64) -> SimulationConfig {
        SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed)
    }

    fn flat_trace(rate: f64, duration: f64) -> LoadTrace {
        let steps = (duration / 60.0).ceil() as usize;
        LoadTrace::new(60.0, vec![rate; steps]).unwrap()
    }

    fn well_provisioned(rate: f64, duration: f64, seed: u64) -> Simulation {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(rate, duration), config(seed));
        // Generously size every tier for the offered rate.
        sim.set_supply(0, ((rate * 0.059 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim.set_supply(1, ((rate * 0.1 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim.set_supply(2, ((rate * 0.04 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim
    }

    #[test]
    fn conservation_of_requests() {
        let result = well_provisioned(50.0, 300.0, 1).run_to_end();
        let sent: u64 = result.sent_per_second.iter().sum();
        assert_eq!(sent, result.completed + result.in_flight_at_end);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = well_provisioned(40.0, 300.0, 7).run_to_end();
        let b = well_provisioned(40.0, 300.0, 7).run_to_end();
        assert_eq!(a, b);
        let c = well_provisioned(40.0, 300.0, 8).run_to_end();
        assert_ne!(a.completed, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn fork_matches_from_scratch_faulted_run() {
        use crate::fault::CorruptionMode;
        let model = ApplicationModel::paper_benchmark();
        let trace = flat_trace(50.0, 600.0);
        let plans = [
            FaultPlan::new(9).crash_instances(None, 300.0, 450.0, 1.0, 1),
            FaultPlan::new(9).drop_samples(None, 300.0, 450.0, 0.8),
            FaultPlan::new(9)
                .corrupt_samples(Some(1), 300.0, 450.0, 0.5, CorruptionMode::Nan)
                .crash_instances(Some(0), 300.0, 450.0, 0.7, 2)
                .fail_actuations(None, 300.0, 450.0, 0.5),
        ];
        for plan in plans {
            // Clean prefix shared up to 150 s — before the 300 s window.
            let mut clean = Simulation::new(&model, &trace, config(6));
            clean.set_supply(0, 6).unwrap();
            clean.set_supply(1, 9).unwrap();
            clean.set_supply(2, 4).unwrap();
            clean.run_until(150.0).unwrap();
            let forked = clean
                .fork_with_fault_plan(plan.clone())
                .unwrap()
                .run_to_end();

            let mut scratch =
                Simulation::new(&model, &trace, config(6).with_fault_plan(plan.clone()));
            scratch.set_supply(0, 6).unwrap();
            scratch.set_supply(1, 9).unwrap();
            scratch.set_supply(2, 4).unwrap();
            let scratch = scratch.run_to_end();
            assert_eq!(forked, scratch, "plan {plan:?}");
        }
    }

    #[test]
    fn planned_crash_schedule_is_duration_independent() {
        // A week-long window with a non-representable interval: the
        // schedule of the longer run must extend the shorter one exactly,
        // and every crash must sit exactly mid-interval — both fail when
        // interval starts are accumulated instead of derived.
        let plan = FaultPlan::new(3).crash_instances(None, 0.0, 2_000_000.0, 0.02, 1);
        let short = planned_crashes(&plan, 61.3, 200_000.0, 3);
        let long = planned_crashes(&plan, 61.3, 1_900_000.0, 3);
        assert!(!short.is_empty());
        assert_eq!(&long[..short.len()], &short[..]);
        for &(time, _, _) in &long {
            let k = (time / 61.3).floor();
            assert_eq!(time, k * 61.3 + 61.3 / 2.0);
        }
    }

    #[test]
    fn fork_rejects_unsound_checkpoints() {
        let model = ApplicationModel::paper_benchmark();
        let trace = flat_trace(30.0, 600.0);
        let plan = FaultPlan::new(2).drop_samples(None, 120.0, 300.0, 1.0);

        // Checkpoint past the window start: refused.
        let mut late = Simulation::new(&model, &trace, config(1));
        late.run_until(120.0).unwrap();
        assert!(matches!(
            late.fork_with_fault_plan(plan.clone()),
            Err(SimError::CannotFork { .. })
        ));

        // A run that already has a plan: refused.
        let seeded = Simulation::new(&model, &trace, config(1).with_fault_plan(plan.clone()));
        assert!(matches!(
            seeded.fork_with_fault_plan(plan),
            Err(SimError::CannotFork { .. })
        ));
    }

    #[test]
    fn well_provisioned_meets_slo() {
        let result = well_provisioned(60.0, 600.0, 3).run_to_end();
        assert!(result.total_requests() > 30_000);
        assert!(
            result.slo_violation_percent() < 5.0,
            "violations {}%",
            result.slo_violation_percent()
        );
        assert!(result.apdex_percent() > 95.0);
        // Mean response close to the 0.199 s summed demand at low load.
        assert!(result.mean_response_time() < 0.35);
    }

    #[test]
    fn under_provisioned_violates_slo() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(60.0, 600.0), config(4));
        // Validation tier can only serve 10 req/s of the offered 60.
        sim.set_supply(0, 10).unwrap();
        sim.set_supply(1, 1).unwrap();
        sim.set_supply(2, 5).unwrap();
        let result = sim.run_to_end();
        assert!(
            result.slo_violation_percent() > 50.0,
            "violations {}%",
            result.slo_violation_percent()
        );
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(50.0, 600.0), config(5));
        sim.set_supply(0, 10).unwrap();
        sim.set_supply(1, 10).unwrap();
        sim.set_supply(2, 10).unwrap();
        sim.run_until(600.0).unwrap();
        // Expected utilizations: λ·D/n = 50·0.059/10, 50·0.1/10, 50·0.04/10.
        let expect = [0.295, 0.5, 0.2];
        let last = sim.intervals_completed() - 1;
        let stats = sim.interval(last).unwrap();
        for (i, s) in stats.iter().enumerate() {
            assert!(
                (s.utilization - expect[i]).abs() < 0.08,
                "service {i}: {} vs {}",
                s.utilization,
                expect[i]
            );
        }
    }

    #[test]
    fn monitoring_interval_counts_arrivals() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(100.0, 300.0), config(6));
        sim.set_supply(0, 20).unwrap();
        sim.set_supply(1, 20).unwrap();
        sim.set_supply(2, 20).unwrap();
        sim.run_until(300.0).unwrap();
        assert_eq!(sim.intervals_completed(), 5);
        let stats = sim.interval(0).unwrap();
        // ~6000 arrivals per 60 s window at the entry; Poisson sd ≈ 77.
        assert!(
            (5_500..6_500).contains(&(stats[0].arrivals as i64)),
            "arrivals {}",
            stats[0].arrivals
        );
    }

    #[test]
    fn provisioning_delay_applies() {
        let model = ApplicationModel::paper_benchmark();
        let profile = DeploymentProfile::custom("slow", 100.0, 0.0);
        let cfg = SimulationConfig::new(profile, SloPolicy::default(), 8);
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 400.0), cfg);
        assert_eq!(sim.running(0), 1);
        sim.scale_to(0, 5).unwrap();
        assert_eq!(sim.provisioned(0), 5);
        sim.run_until(50.0).unwrap();
        assert_eq!(sim.running(0), 1, "instances not ready before the delay");
        sim.run_until(150.0).unwrap();
        assert_eq!(sim.running(0), 5, "instances ready after the delay");
    }

    #[test]
    fn scale_down_is_fast_and_respects_busy_servers() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 300.0), config(9));
        sim.set_supply(1, 10).unwrap();
        sim.scale_to(1, 2).unwrap();
        sim.run_until(10.0).unwrap();
        assert_eq!(sim.running(1), 2);
    }

    #[test]
    fn scale_down_cancels_pending_boots() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 600.0), config(10));
        sim.scale_to(0, 10).unwrap();
        assert_eq!(sim.provisioned(0), 10);
        sim.scale_to(0, 3).unwrap();
        assert_eq!(sim.provisioned(0), 3);
        sim.run_until(60.0).unwrap();
        assert_eq!(sim.running(0), 3);
    }

    #[test]
    fn scale_respects_model_bounds() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 60.0), config(11));
        sim.scale_to(0, 0).unwrap(); // clamped to min = 1
        assert_eq!(sim.provisioned(0), 1);
        sim.scale_to(0, 100_000).unwrap(); // clamped to max = 200
        assert_eq!(sim.provisioned(0), 200);
        assert!(sim.scale_to(99, 1).is_err());
    }

    #[test]
    fn supply_timeline_records_changes() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 300.0), config(12));
        sim.run_until(100.0).unwrap();
        sim.scale_to(0, 4).unwrap();
        sim.run_until(300.0).unwrap();
        let result = sim.finish();
        assert_eq!(result.supply_at(0, 0.0), 1);
        // Docker delay is 10 s.
        assert_eq!(result.supply_at(0, 105.0), 1);
        assert_eq!(result.supply_at(0, 111.0), 4);
    }

    #[test]
    fn requests_flow_through_all_services() {
        let mut sim = well_provisioned(30.0, 120.0, 13);
        sim.run_until(120.0).unwrap();
        let stats = sim.interval(0).unwrap();
        // Every tier sees roughly the same number of requests on a chain.
        let a0 = stats[0].arrivals as f64;
        for s in &stats[1..] {
            assert!((s.arrivals as f64 - a0).abs() < a0 * 0.05);
        }
    }

    #[test]
    fn bottleneck_shifting_dynamics_visible() {
        // Tier 0 is the bottleneck: downstream tiers see only its output.
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(100.0, 300.0), config(14));
        sim.set_supply(0, 1).unwrap(); // capacity ≈ 16.9 req/s
        sim.set_supply(1, 20).unwrap();
        sim.set_supply(2, 20).unwrap();
        sim.run_until(300.0).unwrap();
        let stats = sim.interval(3).unwrap();
        // Validation tier receives roughly the UI's saturation throughput.
        let downstream_rate = stats[1].arrivals as f64 / 60.0;
        assert!(
            (downstream_rate - 1.0 / 0.059).abs() < 4.0,
            "rate {downstream_rate}"
        );
    }

    #[test]
    fn vertical_scaling_speeds_up_service() {
        // Validation tier at 1 instance and 15 req/s is overloaded
        // (capacity 10); a 2x resize makes it comfortable (capacity 20).
        let model = ApplicationModel::paper_benchmark();
        let mut slow = Simulation::new(&model, &flat_trace(15.0, 600.0), config(21));
        slow.set_supply(0, 4).unwrap();
        slow.set_supply(1, 1).unwrap();
        slow.set_supply(2, 2).unwrap();
        let slow_result = slow.run_to_end();

        let mut fast = Simulation::new(&model, &flat_trace(15.0, 600.0), config(21));
        fast.set_supply(0, 4).unwrap();
        fast.set_supply(1, 1).unwrap();
        fast.set_supply(2, 2).unwrap();
        fast.scale_vertical(1, 2.0).unwrap();
        let fast_result = fast.run_to_end();

        assert!(
            fast_result.slo_violation_percent() < slow_result.slo_violation_percent() / 2.0,
            "fast {}% vs slow {}%",
            fast_result.slo_violation_percent(),
            slow_result.slo_violation_percent()
        );
    }

    #[test]
    fn vertical_scaling_has_provisioning_delay() {
        let model = ApplicationModel::paper_benchmark();
        let profile = DeploymentProfile::custom("slow", 100.0, 0.0);
        let cfg = SimulationConfig::new(profile, SloPolicy::default(), 22);
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 400.0), cfg);
        sim.scale_vertical(0, 4.0).unwrap();
        sim.run_until(50.0).unwrap();
        assert_eq!(sim.speed(0), 1.0, "resize not yet effective");
        sim.run_until(150.0).unwrap();
        assert_eq!(sim.speed(0), 4.0);
    }

    #[test]
    fn vertical_scaling_validates_inputs() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 60.0), config(23));
        assert!(sim.scale_vertical(99, 2.0).is_err());
        assert!(sim.scale_vertical(0, 0.0).is_err());
        assert!(sim.scale_vertical(0, -1.0).is_err());
        assert!(sim.scale_vertical(0, f64::NAN).is_err());
        assert!(sim.scale_vertical(0, 2.0).is_ok());
    }

    #[test]
    fn nested_pool_blocks_boots_without_slots() {
        use crate::nested::VmPoolConfig;
        let model = ApplicationModel::paper_benchmark();
        // 1 VM x 4 slots; 3 containers already placed (initial 1 each).
        let cfg = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 31)
            .with_vm_pool(VmPoolConfig::new(4, 300.0, 1));
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 1200.0), cfg);
        assert_eq!(sim.free_slots(), Some(1));
        // Ask for 5 more UI containers: 1 boots, 4 wait.
        sim.scale_to(0, 6).unwrap();
        assert_eq!(sim.provisioned(0), 6);
        assert_eq!(sim.waiting_containers(), Some(4));
        sim.run_until(60.0).unwrap();
        assert_eq!(sim.running(0), 2, "only one slot was free");
        // Add a VM: after its 300 s boot the waiting containers start.
        sim.scale_vms(2).unwrap();
        sim.run_until(200.0).unwrap();
        assert_eq!(sim.running(0), 2, "VM not ready yet");
        sim.run_until(400.0).unwrap();
        assert_eq!(sim.running(0), 6, "waiting boots drained after VM ready");
        assert_eq!(sim.waiting_containers(), Some(0));
    }

    #[test]
    fn nested_pool_scale_down_frees_slots_for_waiters() {
        use crate::nested::VmPoolConfig;
        let model = ApplicationModel::paper_benchmark();
        let cfg = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 32)
            .with_vm_pool(VmPoolConfig::new(4, 300.0, 1));
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 600.0), cfg);
        // Fill the pool: ui 1->2 (slot 4 taken).
        sim.scale_to(0, 2).unwrap();
        sim.run_until(30.0).unwrap();
        assert_eq!(sim.free_slots(), Some(0));
        // Validation wants one more: must wait.
        sim.scale_to(1, 2).unwrap();
        assert_eq!(sim.waiting_containers(), Some(1));
        // UI scales back down; the freed slot unblocks validation.
        sim.scale_to(0, 1).unwrap();
        sim.run_until(100.0).unwrap();
        assert_eq!(sim.running(1), 2);
        assert_eq!(sim.waiting_containers(), Some(0));
    }

    #[test]
    fn nested_pool_cancelling_waiting_boots() {
        use crate::nested::VmPoolConfig;
        let model = ApplicationModel::paper_benchmark();
        let cfg = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 33)
            .with_vm_pool(VmPoolConfig::new(3, 300.0, 1));
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 600.0), cfg);
        sim.scale_to(0, 10).unwrap(); // pool full: most boots wait
        assert!(sim.waiting_containers().unwrap() > 0);
        // Scale back: waiting boots are dropped first, cheaply.
        sim.scale_to(0, 1).unwrap();
        assert_eq!(sim.waiting_containers(), Some(0));
        sim.run_until(120.0).unwrap();
        assert_eq!(sim.running(0), 1);
    }

    #[test]
    fn nested_pool_vm_scale_down_never_kills_occupied_vms() {
        use crate::nested::VmPoolConfig;
        let model = ApplicationModel::paper_benchmark();
        let cfg = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 34)
            .with_vm_pool(VmPoolConfig::new(2, 60.0, 3));
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 600.0), cfg);
        // 3 initial containers occupy 2 VMs worth of slots (2 + 1).
        assert_eq!(sim.free_slots(), Some(3));
        sim.scale_vms(1).unwrap();
        // Only the one fully-free VM may go.
        assert_eq!(sim.vms_running(), Some(2));
    }

    #[test]
    fn flat_deployment_has_no_pool_api() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 60.0), config(35));
        assert_eq!(sim.vms_running(), None);
        assert_eq!(sim.free_slots(), None);
        assert!(sim.scale_vms(3).is_err());
    }

    #[test]
    fn zero_rate_trace_is_quiet() {
        let model = ApplicationModel::paper_benchmark();
        let sim = Simulation::new(&model, &flat_trace(0.0, 120.0), config(15));
        let result = sim.run_to_end();
        assert_eq!(result.total_requests(), 0);
        assert_eq!(result.apdex_percent(), 100.0);
    }

    #[test]
    fn run_until_rejects_time_reversal() {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 120.0), config(40));
        sim.run_until(60.0).unwrap();
        assert_eq!(
            sim.run_until(30.0),
            Err(SimError::TimeReversed {
                target: 30.0,
                now: 60.0
            })
        );
        assert!(sim.run_until(f64::NAN).is_err());
        // Equal and forward targets stay fine, as does running past the end.
        sim.run_until(60.0).unwrap();
        sim.run_until(500.0).unwrap();
        assert_eq!(sim.now(), 120.0);
    }

    #[test]
    fn observations_mirror_truth_without_faults() {
        let mut sim = well_provisioned(30.0, 180.0, 41);
        sim.run_until(180.0).unwrap();
        assert!(sim.fault_log().is_empty());
        for k in 0..sim.intervals_completed() {
            let truth = sim.interval(k).unwrap();
            let observed = sim.observe_interval(k).unwrap();
            for (t, o) in truth.iter().zip(&observed) {
                let o = o.expect("no sample dropped without a fault plan");
                assert_eq!(o.arrivals, t.arrivals as f64);
                assert_eq!(o.utilization, t.utilization);
                assert_eq!(o.instances_end, t.instances_end);
            }
        }
        assert!(sim.observe_interval(sim.intervals_completed()).is_none());
    }

    #[test]
    fn dropped_and_corrupted_samples_are_observed_and_logged() {
        use crate::fault::{CorruptionMode, FaultPlan};
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(9)
            .drop_samples(Some(0), 0.0, 1e9, 1.0)
            .corrupt_samples(Some(1), 0.0, 1e9, 1.0, CorruptionMode::Nan);
        let cfg = config(42).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(20.0, 180.0), cfg);
        sim.set_supply(0, 4).unwrap();
        sim.set_supply(1, 4).unwrap();
        sim.set_supply(2, 4).unwrap();
        sim.run_until(180.0).unwrap();
        let observed = sim.observe_interval(0).unwrap();
        assert!(observed[0].is_none(), "service 0 samples are dropped");
        let corrupt = observed[1].expect("corrupt samples still arrive");
        assert!(corrupt.arrivals.is_nan());
        let clean = observed[2].expect("service 2 untouched");
        assert!(clean.arrivals > 0.0);
        // Ground truth is unaffected by monitoring faults.
        assert!(sim.interval(0).unwrap()[0].arrivals > 0);
        // Two faults per completed interval (services 0 and 1).
        assert_eq!(sim.fault_log().len(), 2 * sim.intervals_completed());
    }

    #[test]
    fn delayed_samples_report_stale_intervals() {
        use crate::fault::FaultPlan;
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(9).delay_samples(Some(0), 0.0, 1e9, 1.0, 1);
        let cfg = config(43).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(20.0, 240.0), cfg);
        sim.set_supply(0, 4).unwrap();
        sim.run_until(240.0).unwrap();
        // Interval 0 has no predecessor: the delayed sample is missing.
        assert!(sim.observe_interval(0).unwrap()[0].is_none());
        // Later intervals report the previous window's truth.
        for k in 1..sim.intervals_completed() {
            let stale = sim.observe_interval(k).unwrap()[0].expect("stale sample present");
            let prev = sim.interval(k - 1).unwrap()[0];
            assert_eq!(stale.arrivals, prev.arrivals as f64);
            assert_eq!(stale.start, prev.start);
        }
    }

    #[test]
    fn actuation_failures_surface_and_retries_can_succeed() {
        use crate::fault::FaultPlan;
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(5).fail_actuations(None, 0.0, 1e9, 0.5);
        let cfg = config(44).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 600.0), cfg);
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..40 {
            match sim.scale_to(0, 5) {
                Ok(()) => successes += 1,
                Err(SimError::ActuationFailed { service: 0 }) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 0, "some commands fail under p=0.5");
        assert!(successes > 0, "retries eventually succeed under p=0.5");
        assert_eq!(sim.fault_log().len(), failures);
    }

    #[test]
    fn actuation_delay_slows_provisioning() {
        use crate::fault::FaultPlan;
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(6).delay_actuations(None, 0.0, 1e9, 1.0, 200.0);
        let cfg = config(45).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(1.0, 400.0), cfg);
        sim.scale_to(0, 5).unwrap();
        // Docker delay is 10 s; the injected extra is 200 s.
        sim.run_until(100.0).unwrap();
        assert_eq!(sim.running(0), 1, "boot delayed by the injected fault");
        sim.run_until(250.0).unwrap();
        assert_eq!(sim.running(0), 5);
        assert_eq!(sim.fault_log().len(), 1);
    }

    #[test]
    fn instance_crashes_drop_supply_but_not_target() {
        use crate::fault::FaultPlan;
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(8).crash_instances(Some(0), 0.0, 60.0, 1.0, 3);
        let cfg = config(46).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(0.0, 300.0), cfg);
        sim.set_supply(0, 8).unwrap();
        sim.run_until(60.0).unwrap();
        assert_eq!(sim.running(0), 5, "three instances crashed");
        assert_eq!(
            sim.fault_log(),
            &[FaultRecord {
                time: 30.0,
                service: 0,
                kind: FaultKind::InstanceCrash { count: 3 },
            }]
        );
        // The controller can re-order the lost capacity.
        sim.scale_to(0, 8).unwrap();
        sim.run_until(120.0).unwrap();
        assert_eq!(sim.running(0), 8);
    }

    #[test]
    fn crash_never_underflows_a_small_service() {
        use crate::fault::FaultPlan;
        let model = ApplicationModel::paper_benchmark();
        let plan = FaultPlan::new(8).crash_instances(None, 0.0, 1e9, 1.0, 50);
        let cfg = config(47).with_fault_plan(plan);
        let mut sim = Simulation::new(&model, &flat_trace(10.0, 300.0), cfg);
        sim.run_until(300.0).unwrap();
        // Crashing more instances than exist kills what is there, no panic.
        assert!(sim.running(0) == 0 || sim.running(0) <= 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_end_to_end() {
        use crate::fault::{CorruptionMode, FaultPlan};
        let build = || {
            let plan = FaultPlan::new(123)
                .drop_samples(None, 0.0, 1e9, 0.3)
                .corrupt_samples(None, 0.0, 1e9, 0.2, CorruptionMode::Negative)
                .crash_instances(None, 0.0, 1e9, 0.2, 1);
            let cfg = config(48).with_fault_plan(plan);
            let model = ApplicationModel::paper_benchmark();
            let mut sim = Simulation::new(&model, &flat_trace(30.0, 600.0), cfg);
            sim.set_supply(0, 6).unwrap();
            sim.set_supply(1, 8).unwrap();
            sim.set_supply(2, 6).unwrap();
            sim.run_to_end()
        };
        let a = build();
        let b = build();
        assert_eq!(a.fault_log, b.fault_log);
        assert!(!a.fault_log.is_empty(), "plan injected something");
        assert_eq!(a, b);
    }
}
