//! Error type for the simulator.

use std::error::Error;
use std::fmt;

/// Error returned by simulator configuration and control operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A service index is out of range.
    UnknownService {
        /// The index that was passed.
        index: usize,
        /// The number of services in the simulation.
        count: usize,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// An injected fault made a scaling command fail transiently; the
    /// caller may retry.
    ActuationFailed {
        /// The service whose actuation failed (`service_count` denotes
        /// the VM pool).
        service: usize,
    },
    /// `run_until` was asked to run to a target time earlier than the
    /// current simulation time (or NaN) — simulated time is monotonic.
    TimeReversed {
        /// The requested target time.
        target: f64,
        /// The current simulation time.
        now: f64,
    },
    /// A checkpoint fork was requested in a state from which the forked
    /// run would not be bit-identical to a from-scratch faulted run.
    CannotFork {
        /// Which precondition failed.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownService { index, count } => {
                write!(f, "unknown service index {index} (have {count})")
            }
            SimError::InvalidConfig { field, value } => {
                write!(f, "invalid configuration `{field}`: {value}")
            }
            SimError::ActuationFailed { service } => {
                write!(f, "transient actuation failure on service {service}")
            }
            SimError::TimeReversed { target, now } => {
                write!(
                    f,
                    "cannot run the simulation backwards: target {target} s is before now {now} s"
                )
            }
            SimError::CannotFork { reason } => {
                write!(f, "cannot fork the simulation at this point: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::UnknownService { index: 5, count: 3 }
            .to_string()
            .contains('5'));
        assert!(SimError::InvalidConfig {
            field: "slo",
            value: -1.0
        }
        .to_string()
        .contains("slo"));
    }

    #[test]
    fn actuation_failed_display_names_the_service() {
        let msg = SimError::ActuationFailed { service: 2 }.to_string();
        assert!(msg.contains("actuation failure"), "{msg}");
        assert!(msg.contains('2'), "{msg}");
    }

    #[test]
    fn time_reversed_display_names_both_times() {
        let msg = SimError::TimeReversed {
            target: 10.0,
            now: 50.0,
        }
        .to_string();
        assert!(msg.contains("backwards"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
        assert!(msg.contains("50"), "{msg}");
    }
}
