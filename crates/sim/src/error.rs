//! Error type for the simulator.

use std::error::Error;
use std::fmt;

/// Error returned by simulator configuration and control operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A service index is out of range.
    UnknownService {
        /// The index that was passed.
        index: usize,
        /// The number of services in the simulation.
        count: usize,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The value that was passed.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownService { index, count } => {
                write!(f, "unknown service index {index} (have {count})")
            }
            SimError::InvalidConfig { field, value } => {
                write!(f, "invalid configuration `{field}`: {value}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::UnknownService { index: 5, count: 3 }
            .to_string()
            .contains('5'));
        assert!(SimError::InvalidConfig {
            field: "slo",
            value: -1.0
        }
        .to_string()
        .contains("slo"));
    }
}
