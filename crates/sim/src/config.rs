//! Simulation configuration: deployment profiles, SLO policy, global knobs.

/// How resources are provisioned — the knob that distinguishes the paper's
/// Docker and VM scenarios (§IV-A, §V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentProfile {
    /// Human-readable profile name (`"docker"`, `"vm"`, …).
    pub name: String,
    /// Seconds between a scale-up command and the new instances serving.
    pub provisioning_delay: f64,
    /// Seconds between a scale-down command and idle instances leaving the
    /// supply (busy instances additionally drain their current request).
    pub deprovisioning_delay: f64,
}

impl DeploymentProfile {
    /// Container-style provisioning: instances are ready in ~10 s.
    ///
    /// "Due to the fast provisioning times of Docker containers,
    /// measurements covering one hour are sufficient" — the paper scales
    /// this setup every 60 s.
    pub fn docker() -> Self {
        DeploymentProfile {
            name: "docker".into(),
            provisioning_delay: 10.0,
            deprovisioning_delay: 1.0,
        }
    }

    /// Virtual-machine provisioning: instances take ~2 minutes to boot; the
    /// paper scales this setup every 120 s over a 6 h experiment.
    pub fn vm() -> Self {
        DeploymentProfile {
            name: "vm".into(),
            provisioning_delay: 120.0,
            deprovisioning_delay: 5.0,
        }
    }

    /// A profile with custom delays (both clamped to ≥ 0).
    pub fn custom(
        name: impl Into<String>,
        provisioning_delay: f64,
        deprovisioning_delay: f64,
    ) -> Self {
        DeploymentProfile {
            name: name.into(),
            provisioning_delay: provisioning_delay.max(0.0),
            deprovisioning_delay: deprovisioning_delay.max(0.0),
        }
    }
}

/// The service-level objective on end-to-end response time, plus the Apdex
/// toleration band.
///
/// The paper does not state its numeric SLO; we default to 0.5 s (≈2.5× the
/// 0.199 s summed service demand) with the standard Apdex toleration of 4×
/// the satisfaction threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// End-to-end response-time target in seconds; a request within this is
    /// *satisfied*.
    pub response_time_target: f64,
    /// Requests within `toleration_factor × response_time_target` count as
    /// *tolerating* for Apdex (half credit).
    pub toleration_factor: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            response_time_target: 0.5,
            toleration_factor: 4.0,
        }
    }
}

impl SloPolicy {
    /// Creates a policy; non-positive inputs fall back to the defaults.
    pub fn new(response_time_target: f64, toleration_factor: f64) -> Self {
        let d = SloPolicy::default();
        SloPolicy {
            response_time_target: if response_time_target.is_finite() && response_time_target > 0.0
            {
                response_time_target
            } else {
                d.response_time_target
            },
            toleration_factor: if toleration_factor.is_finite() && toleration_factor >= 1.0 {
                toleration_factor
            } else {
                d.toleration_factor
            },
        }
    }

    /// The absolute toleration bound in seconds.
    pub fn toleration_bound(&self) -> f64 {
        self.response_time_target * self.toleration_factor
    }

    /// Whether a response time satisfies the SLO.
    pub fn is_satisfied(&self, response_time: f64) -> bool {
        response_time <= self.response_time_target
    }

    /// Whether a response time is merely tolerating (violates the SLO but
    /// stays within the toleration bound).
    pub fn is_tolerating(&self, response_time: f64) -> bool {
        !self.is_satisfied(response_time) && response_time <= self.toleration_bound()
    }
}

/// Knobs of the hybrid fluid regime of the event-driven core
/// ([`crate::des::DesSimulation`]): when a service's *offered load* (its
/// deterministic trace-driven arrival rate × service demand, in Erlangs)
/// crosses `threshold_erlangs`, the event core stops simulating that
/// service per-request and switches to an analytic M/M/n fluid
/// approximation; it switches back only once the offered load falls below
/// `hysteresis_ratio × threshold_erlangs`, so a load hovering at the
/// threshold cannot make the regime ping-pong every evaluation.
///
/// The fixed-step engine ([`crate::Simulation`]) ignores this field
/// entirely, which is what keeps the two cores drop-in interchangeable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Offered load (Erlangs) above which a service turns fluid.
    pub threshold_erlangs: f64,
    /// Fraction of the threshold the offered load must fall below before a
    /// fluid service turns discrete again, in `(0, 1]`.
    pub hysteresis_ratio: f64,
    /// Analytic sojourn samples drawn per monitoring interval to classify
    /// fluid-mode completions against the SLO.
    pub tail_samples: u32,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            // 32 busy servers of offered load: far past the regime where
            // individual tails matter, and small enough that the paper's
            // heavy-traffic scenarios all run fluid.
            threshold_erlangs: 32.0,
            hysteresis_ratio: 0.5,
            tail_samples: 256,
        }
    }
}

impl HybridConfig {
    /// Creates a config, sanitizing degenerate inputs: a non-finite or
    /// non-positive threshold, ratio, or sample count falls back to the
    /// default; the ratio is clamped into `(0, 1]`.
    pub fn new(threshold_erlangs: f64, hysteresis_ratio: f64, tail_samples: u32) -> Self {
        let d = HybridConfig::default();
        HybridConfig {
            threshold_erlangs: if threshold_erlangs.is_finite() && threshold_erlangs > 0.0 {
                threshold_erlangs
            } else {
                d.threshold_erlangs
            },
            hysteresis_ratio: if hysteresis_ratio.is_finite() && hysteresis_ratio > 0.0 {
                hysteresis_ratio.min(1.0)
            } else {
                d.hysteresis_ratio
            },
            tail_samples: if tail_samples == 0 {
                d.tail_samples
            } else {
                tail_samples
            },
        }
    }

    /// The offered load below which a fluid service turns discrete again.
    pub fn lower_threshold(&self) -> f64 {
        self.threshold_erlangs * self.hysteresis_ratio
    }
}

/// Global simulation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Deployment profile (provisioning delays).
    pub profile: DeploymentProfile,
    /// SLO policy for request accounting.
    pub slo: SloPolicy,
    /// Monitoring aggregation interval in seconds.
    pub monitoring_interval: f64,
    /// RNG seed; the simulation is deterministic in it.
    pub seed: u64,
    /// Optional nested deployment: containers boot into a shared VM pool
    /// and stall when no slot is free (see [`crate::nested`]).
    pub vm_pool: Option<crate::nested::VmPoolConfig>,
    /// Optional deterministic fault injection (see [`crate::fault`]).
    pub fault_plan: Option<crate::fault::FaultPlan>,
    /// Optional hybrid fluid regime of the event-driven core; `None` keeps
    /// [`crate::des::DesSimulation`] pure-DES. Ignored by the fixed-step
    /// engine.
    pub hybrid: Option<HybridConfig>,
}

impl SimulationConfig {
    /// Creates a config with a 60 s monitoring interval and a flat
    /// (non-nested) deployment.
    pub fn new(profile: DeploymentProfile, slo: SloPolicy, seed: u64) -> Self {
        SimulationConfig {
            profile,
            slo,
            monitoring_interval: 60.0,
            seed,
            vm_pool: None,
            fault_plan: None,
            hybrid: None,
        }
    }

    /// Enables the nested deployment: containers boot into a shared VM
    /// pool.
    pub fn with_vm_pool(mut self, pool: crate::nested::VmPoolConfig) -> Self {
        self.vm_pool = Some(pool);
        self
    }

    /// Attaches a deterministic fault-injection plan: the engine then
    /// drops/delays/corrupts monitoring samples, fails or slows
    /// actuations, and crashes instances as the plan dictates.
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the hybrid fluid regime of the event-driven core
    /// ([`crate::des::DesSimulation`]); the fixed-step engine ignores it.
    pub fn with_hybrid(mut self, hybrid: HybridConfig) -> Self {
        self.hybrid = Some(hybrid);
        self
    }

    /// Overrides the monitoring interval (clamped to ≥ 1 s).
    pub fn with_monitoring_interval(mut self, interval: f64) -> Self {
        self.monitoring_interval = if interval.is_finite() {
            interval.max(1.0)
        } else {
            60.0
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docker_faster_than_vm() {
        assert!(
            DeploymentProfile::docker().provisioning_delay
                < DeploymentProfile::vm().provisioning_delay
        );
    }

    #[test]
    fn custom_profile_clamps_negative() {
        let p = DeploymentProfile::custom("x", -5.0, -1.0);
        assert_eq!(p.provisioning_delay, 0.0);
        assert_eq!(p.deprovisioning_delay, 0.0);
    }

    #[test]
    fn slo_classification() {
        let slo = SloPolicy::default();
        assert!(slo.is_satisfied(0.4));
        assert!(slo.is_satisfied(0.5));
        assert!(!slo.is_satisfied(0.51));
        assert!(slo.is_tolerating(0.51));
        assert!(slo.is_tolerating(2.0));
        assert!(!slo.is_tolerating(2.01));
        assert!(!slo.is_tolerating(0.3));
        assert!((slo.toleration_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slo_invalid_inputs_fall_back() {
        let slo = SloPolicy::new(-1.0, 0.5);
        assert_eq!(slo, SloPolicy::default());
        let slo = SloPolicy::new(1.0, f64::NAN);
        assert_eq!(slo.toleration_factor, 4.0);
    }

    #[test]
    fn hybrid_config_sanitizes_degenerate_inputs() {
        let d = HybridConfig::default();
        assert_eq!(HybridConfig::new(f64::NAN, -1.0, 0), d);
        assert_eq!(HybridConfig::new(-5.0, f64::INFINITY, 0), d);
        let h = HybridConfig::new(100.0, 2.0, 16);
        assert_eq!(h.threshold_erlangs, 100.0);
        assert_eq!(h.hysteresis_ratio, 1.0); // clamped into (0, 1]
        assert_eq!(h.tail_samples, 16);
        let h = HybridConfig::new(64.0, 0.25, 8);
        assert!((h.lower_threshold() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn monitoring_interval_clamped() {
        let c = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 1)
            .with_monitoring_interval(0.1);
        assert_eq!(c.monitoring_interval, 1.0);
        let c = c.with_monitoring_interval(f64::NAN);
        assert_eq!(c.monitoring_interval, 60.0);
    }
}
