//! Monitoring statistics and simulation results.

use crate::fault::{CorruptionMode, FaultRecord};

/// Second-granularity bucket index for a simulation time, saturating at
/// the bounds: NaN and non-positive times map to bucket 0, times at or
/// beyond `usize::MAX` seconds map to `usize::MAX`.
///
/// Both simulation cores (`engine` and `des`) index their per-second
/// request accounting through this one helper so the bucketing rules can
/// never drift apart.
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
pub fn second_index(time: f64) -> usize {
    if time.is_nan() || time <= 0.0 {
        0
    } else if time >= usize::MAX as f64 {
        usize::MAX
    } else {
        time as usize
    }
}

/// Per-service statistics aggregated over one monitoring interval — exactly
/// the inputs the paper feeds every auto-scaler (§IV-C): "the accumulated
/// number of requests during the last interval, … and the number of
/// currently running instances", plus the utilization and response times
/// that the demand estimator consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceIntervalStats {
    /// Interval start time in seconds.
    pub start: f64,
    /// Interval length in seconds.
    pub duration: f64,
    /// Requests that arrived at this service during the interval.
    pub arrivals: u64,
    /// Requests this service completed during the interval.
    pub completions: u64,
    /// Time-averaged utilization (busy-server time / running-server time),
    /// in `[0, 1]`.
    pub utilization: f64,
    /// Mean per-service response time (wait + service) of requests
    /// completed in the interval, seconds; `None` when none completed.
    pub mean_response_time: Option<f64>,
    /// Running (booted) instances at the end of the interval.
    pub instances_end: u32,
    /// Requests waiting in this service's queue at the end of the interval.
    pub queue_length_end: usize,
}

/// What the monitoring pipeline *reported* for one service and interval —
/// as opposed to [`ServiceIntervalStats`], which is the ground truth.
///
/// Under an active [`crate::fault::FaultPlan`] the reported values may be
/// stale or corrupt: arrivals and completions are `f64` here precisely so
/// NaN and negative counts are representable, and consumers must validate
/// them at their boundary (`MonitoringSample::from_observed` in
/// `chamulteon-demand` does this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedSample {
    /// Reported interval start time in seconds.
    pub start: f64,
    /// Reported interval length in seconds.
    pub duration: f64,
    /// Reported request arrivals (may be NaN/negative when corrupted).
    pub arrivals: f64,
    /// Reported request completions (may be NaN/negative when corrupted).
    pub completions: f64,
    /// Reported utilization (may be NaN/negative when corrupted).
    pub utilization: f64,
    /// Reported mean response time, when measured.
    pub mean_response_time: Option<f64>,
    /// Reported running instances at the end of the interval.
    pub instances_end: u32,
    /// Reported queue length at the end of the interval.
    pub queue_length_end: usize,
}

#[allow(clippy::cast_precision_loss)] // u64 counts are far below 2^52 here
impl ObservedSample {
    /// A faithful report of the ground-truth stats.
    pub fn from_stats(stats: &ServiceIntervalStats) -> Self {
        ObservedSample {
            start: stats.start,
            duration: stats.duration,
            arrivals: stats.arrivals as f64,
            completions: stats.completions as f64,
            utilization: stats.utilization,
            mean_response_time: stats.mean_response_time,
            instances_end: stats.instances_end,
            queue_length_end: stats.queue_length_end,
        }
    }

    /// This report mangled by a corruption fault.
    pub fn corrupted(mut self, mode: CorruptionMode) -> Self {
        match mode {
            CorruptionMode::Nan => {
                self.arrivals = f64::NAN;
                self.completions = f64::NAN;
                self.utilization = f64::NAN;
                self.mean_response_time = self.mean_response_time.map(|_| f64::NAN);
            }
            CorruptionMode::Negative => {
                self.arrivals = -(self.arrivals + 1.0);
                self.completions = -(self.completions + 1.0);
                self.utilization = -(self.utilization + 0.1);
            }
            CorruptionMode::Spike { factor } => {
                let factor = if factor.is_finite() {
                    factor.max(1.0)
                } else {
                    1.0
                };
                self.arrivals *= factor;
                self.completions *= factor;
                self.utilization = (self.utilization * factor).clamp(0.0, 1.0);
            }
        }
        self
    }
}

/// One step of a service's supply timeline: from `time` onward, `running`
/// instances were serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyChange {
    /// Time of the change in seconds.
    pub time: f64,
    /// Number of running instances from this time on.
    pub running: u32,
}

/// Everything a finished simulation hands to the metrics and plotting
/// layers.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// Per-service supply timelines (step functions, first entry at t = 0).
    pub supply: Vec<Vec<SupplyChange>>,
    /// Requests sent per second of simulated time (indexed by send second).
    pub sent_per_second: Vec<u64>,
    /// Of those, requests whose end-to-end response met the SLO.
    pub conformant_per_second: Vec<u64>,
    /// Total requests completed.
    pub completed: u64,
    /// Completed requests that satisfied the SLO.
    pub satisfied: u64,
    /// Completed requests in the Apdex toleration band.
    pub tolerating: u64,
    /// Requests still in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Sum of all end-to-end response times (seconds) of completed requests.
    pub response_time_sum: f64,
    /// Per-service monitoring history (all intervals, in order).
    pub interval_history: Vec<Vec<ServiceIntervalStats>>,
    /// Every fault the engine injected, in time order (empty without a
    /// fault plan).
    pub fault_log: Vec<FaultRecord>,
}

impl SimulationResult {
    /// Total requests injected (completed + still in flight).
    pub fn total_requests(&self) -> u64 {
        self.completed + self.in_flight_at_end
    }

    /// Fraction of completed requests that violated the SLO, in percent.
    /// Requests still in flight at the end count as violations — they were
    /// not served within the SLO during the experiment.
    pub fn slo_violation_percent(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        let violated = total - self.satisfied;
        100.0 * violated as f64 / total as f64
    }

    /// The Apdex score in percent: `(satisfied + tolerating/2) / total`.
    /// In-flight requests count as frustrated.
    pub fn apdex_percent(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 100.0;
        }
        100.0 * (self.satisfied as f64 + 0.5 * self.tolerating as f64) / total as f64
    }

    /// Mean end-to-end response time of completed requests, seconds.
    pub fn mean_response_time(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.response_time_sum / self.completed as f64
    }

    /// The supply (running instances) of `service` at time `t`, from the
    /// recorded step function.
    pub fn supply_at(&self, service: usize, t: f64) -> u32 {
        let timeline = &self.supply[service];
        let mut current = timeline.first().map(|c| c.running).unwrap_or(0);
        for change in timeline {
            if change.time <= t {
                current = change.running;
            } else {
                break;
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SimulationResult {
        SimulationResult {
            duration: 10.0,
            supply: vec![vec![
                SupplyChange {
                    time: 0.0,
                    running: 1,
                },
                SupplyChange {
                    time: 5.0,
                    running: 3,
                },
            ]],
            sent_per_second: vec![10; 10],
            conformant_per_second: vec![8; 10],
            completed: 90,
            satisfied: 70,
            tolerating: 10,
            in_flight_at_end: 10,
            response_time_sum: 45.0,
            interval_history: vec![vec![]],
            fault_log: Vec::new(),
        }
    }

    #[test]
    fn totals_and_percentages() {
        let r = result();
        assert_eq!(r.total_requests(), 100);
        assert!((r.slo_violation_percent() - 30.0).abs() < 1e-9);
        assert!((r.apdex_percent() - 75.0).abs() < 1e-9);
        assert!((r.mean_response_time() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_result_degenerate_values() {
        let r = SimulationResult {
            duration: 0.0,
            supply: vec![vec![]],
            sent_per_second: vec![],
            conformant_per_second: vec![],
            completed: 0,
            satisfied: 0,
            tolerating: 0,
            in_flight_at_end: 0,
            response_time_sum: 0.0,
            interval_history: vec![vec![]],
            fault_log: Vec::new(),
        };
        assert_eq!(r.slo_violation_percent(), 0.0);
        assert_eq!(r.apdex_percent(), 100.0);
        assert_eq!(r.mean_response_time(), 0.0);
    }

    #[test]
    fn observed_sample_roundtrip_and_corruption() {
        let truth = ServiceIntervalStats {
            start: 0.0,
            duration: 60.0,
            arrivals: 600,
            completions: 590,
            utilization: 0.5,
            mean_response_time: Some(0.2),
            instances_end: 4,
            queue_length_end: 2,
        };
        let clean = ObservedSample::from_stats(&truth);
        assert_eq!(clean.arrivals, 600.0);
        assert_eq!(clean.completions, 590.0);
        assert_eq!(clean.instances_end, 4);

        let nan = clean.corrupted(CorruptionMode::Nan);
        assert!(nan.arrivals.is_nan());
        assert!(nan.utilization.is_nan());
        assert!(nan.mean_response_time.unwrap().is_nan());

        let neg = clean.corrupted(CorruptionMode::Negative);
        assert!(neg.arrivals < 0.0);
        assert!(neg.utilization < 0.0);

        let spike = clean.corrupted(CorruptionMode::Spike { factor: 100.0 });
        assert_eq!(spike.arrivals, 60_000.0);
        assert_eq!(spike.utilization, 1.0);

        // Degenerate spike factors are neutralized.
        let flat = clean.corrupted(CorruptionMode::Spike { factor: f64::NAN });
        assert_eq!(flat.arrivals, 600.0);
    }

    #[test]
    fn second_index_saturates_at_the_bounds() {
        // NaN and non-positive times land in bucket 0.
        assert_eq!(second_index(f64::NAN), 0);
        assert_eq!(second_index(f64::NEG_INFINITY), 0);
        assert_eq!(second_index(-1.0), 0);
        assert_eq!(second_index(-0.0), 0);
        assert_eq!(second_index(0.0), 0);
        // Ordinary times truncate toward zero.
        assert_eq!(second_index(0.999), 0);
        assert_eq!(second_index(1.0), 1);
        assert_eq!(second_index(86_399.5), 86_399);
        // Huge and infinite times saturate instead of wrapping.
        assert_eq!(second_index(f64::INFINITY), usize::MAX);
        assert_eq!(second_index(1e300), usize::MAX);
        #[allow(clippy::cast_precision_loss)]
        let max = usize::MAX as f64;
        assert_eq!(second_index(max), usize::MAX);
        assert_eq!(second_index(max * 2.0), usize::MAX);
    }

    #[test]
    fn supply_step_function_lookup() {
        let r = result();
        assert_eq!(r.supply_at(0, 0.0), 1);
        assert_eq!(r.supply_at(0, 4.9), 1);
        assert_eq!(r.supply_at(0, 5.0), 3);
        assert_eq!(r.supply_at(0, 100.0), 3);
    }
}
