//! Deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] describes *when* and *where* the environment misbehaves:
//! monitoring samples get dropped, delayed or corrupted, actuations fail
//! transiently or complete late, and running instances crash mid-interval.
//! The plan is attached to a [`crate::SimulationConfig`] and consulted by
//! the engine; every injected fault is recorded as a [`FaultRecord`] so
//! experiments can report exactly what the scaler was subjected to.
//!
//! # Determinism
//!
//! Every fault decision is a *pure function* of the plan seed and the
//! decision coordinates (window index, service, monitoring interval or
//! actuation attempt): each roll seeds a fresh [`StdRng`] from a hash of
//! those coordinates. Two plans with the same seed and windows therefore
//! produce byte-identical fault schedules regardless of query order — the
//! property the chaos suite pins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a corrupted monitoring sample is mangled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorruptionMode {
    /// Arrival counts, utilization and response times become NaN.
    Nan,
    /// Arrival counts and utilization become negative.
    Negative,
    /// Arrival counts are multiplied by `factor` — a monitoring spike
    /// that is numerically valid but wildly implausible.
    Spike {
        /// Multiplier applied to the reported arrivals and completions.
        factor: f64,
    },
}

impl CorruptionMode {
    /// Stable snake_case code for traces and reports.
    pub fn as_code(&self) -> &'static str {
        match self {
            CorruptionMode::Nan => "nan",
            CorruptionMode::Negative => "negative",
            CorruptionMode::Spike { .. } => "spike",
        }
    }
}

impl std::fmt::Display for CorruptionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The monitoring sample for the interval never arrives.
    DropSample,
    /// The monitoring sample is stale: the stats of `intervals` windows
    /// ago are reported instead of the current window's.
    DelaySample {
        /// Age of the reported sample in whole monitoring intervals.
        intervals: usize,
    },
    /// The monitoring sample arrives mangled.
    CorruptSample {
        /// How the sample is mangled.
        mode: CorruptionMode,
    },
    /// The scaling command fails transiently (the caller may retry).
    ActuationFail,
    /// The scaling command is accepted but completes late.
    ActuationDelay {
        /// Extra seconds added to the deployment's provisioning delay.
        extra: f64,
    },
    /// Running instances of the service crash mid-interval.
    InstanceCrash {
        /// Number of instances killed (idle ones die instantly, busy ones
        /// drain their current request first).
        count: u32,
    },
    /// The controller process itself crashes at the start of decision
    /// cycle `at_cycle` and is restarted — either cold or from its latest
    /// checkpoint, depending on the driver's recovery policy. The
    /// simulated deployment keeps running; only the scaler's in-memory
    /// state is lost.
    ControllerCrash {
        /// Decision cycle at which the crash lands, in the caller's own
        /// numbering (the bench harness counts cycles from 1).
        at_cycle: usize,
    },
}

impl FaultKind {
    /// Stable snake_case code for traces, reports and chaos tests —
    /// matching on this, not on debug formatting, is the supported way
    /// to identify a fault class.
    pub fn as_code(&self) -> &'static str {
        match self {
            FaultKind::DropSample => "drop_sample",
            FaultKind::DelaySample { .. } => "delay_sample",
            FaultKind::CorruptSample { .. } => "corrupt_sample",
            FaultKind::ActuationFail => "actuation_fail",
            FaultKind::ActuationDelay { .. } => "actuation_delay",
            FaultKind::InstanceCrash { .. } => "instance_crash",
            FaultKind::ControllerCrash { .. } => "controller_crash",
        }
    }

    /// Whether this kind targets the monitoring path.
    fn is_monitor(self) -> bool {
        matches!(
            self,
            FaultKind::DropSample | FaultKind::DelaySample { .. } | FaultKind::CorruptSample { .. }
        )
    }

    /// Whether this kind targets the actuation path.
    fn is_actuation(self) -> bool {
        matches!(
            self,
            FaultKind::ActuationFail | FaultKind::ActuationDelay { .. }
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// One fault-injection window: a fault class active for `service` (or all
/// services) between `start` and `end`, firing with `probability` at each
/// decision point (monitoring interval, actuation attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Target service index; `None` hits every service (and, for
    /// actuation faults, the VM pool).
    pub service: Option<usize>,
    /// Window start in simulation seconds (inclusive).
    pub start: f64,
    /// Window end in simulation seconds (exclusive).
    pub end: f64,
    /// Probability in `[0, 1]` that the fault fires at a decision point
    /// inside the window.
    pub probability: f64,
    /// The fault class injected.
    pub kind: FaultKind,
}

/// A fault injected by the engine, for the experiment record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Simulation time at which the fault took effect.
    pub time: f64,
    /// Service hit (`service_count` denotes the VM pool; controller
    /// crashes hit every service at once and record service `0`).
    pub service: usize,
    /// What was injected.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of environment faults.
///
/// Build one with the `with_*` constructors and attach it via
/// [`crate::SimulationConfig::with_fault_plan`]:
///
/// ```
/// use chamulteon_sim::fault::{CorruptionMode, FaultPlan};
///
/// let plan = FaultPlan::new(42)
///     .drop_samples(None, 600.0, 1200.0, 0.5)
///     .corrupt_samples(Some(1), 0.0, 600.0, 0.3, CorruptionMode::Nan)
///     .fail_actuations(None, 0.0, 3600.0, 0.25);
/// assert_eq!(plan.windows().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

/// Mixes decision coordinates into a single 64-bit salt (splitmix-style
/// multipliers keep nearby coordinates decorrelated).
fn mix(window: u64, class: u64, service: u64, slot: u64) -> u64 {
    window.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ class.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ service.wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ slot.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// Saturating usize → u64 for salt material.
fn salt(value: usize) -> u64 {
    u64::try_from(value).unwrap_or(u64::MAX)
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured fault windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Adds a window; the probability is clamped into `[0, 1]` (NaN maps
    /// to 0) and an inverted or non-finite time range is discarded.
    pub fn with_window(mut self, mut window: FaultWindow) -> Self {
        window.probability = if window.probability.is_nan() {
            0.0
        } else {
            window.probability.clamp(0.0, 1.0)
        };
        if window.start.is_finite() && window.end.is_finite() && window.end > window.start {
            self.windows.push(window);
        }
        self
    }

    /// Adds a sample-drop window.
    pub fn drop_samples(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::DropSample,
        })
    }

    /// Adds a sample-delay window (stale samples, `intervals` windows old).
    pub fn delay_samples(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
        intervals: usize,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::DelaySample {
                intervals: intervals.max(1),
            },
        })
    }

    /// Adds a sample-corruption window.
    pub fn corrupt_samples(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
        mode: CorruptionMode,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::CorruptSample { mode },
        })
    }

    /// Adds a transient actuation-failure window.
    pub fn fail_actuations(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::ActuationFail,
        })
    }

    /// Adds a slow-actuation window (`extra` seconds on top of the
    /// deployment's provisioning delay).
    pub fn delay_actuations(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
        extra: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::ActuationDelay {
                extra: extra.max(0.0),
            },
        })
    }

    /// Adds a controller-crash window: the scaler process dies at the
    /// start of decision cycle `at_cycle`, provided that cycle's wall
    /// clock falls inside `[start, end)` and the seeded roll fires.
    pub fn crash_controller(self, at_cycle: usize, start: f64, end: f64, probability: f64) -> Self {
        self.with_window(FaultWindow {
            service: None,
            start,
            end,
            probability,
            kind: FaultKind::ControllerCrash { at_cycle },
        })
    }

    /// Adds an instance-crash window (`count` instances per firing).
    pub fn crash_instances(
        self,
        service: Option<usize>,
        start: f64,
        end: f64,
        probability: f64,
        count: u32,
    ) -> Self {
        self.with_window(FaultWindow {
            service,
            start,
            end,
            probability,
            kind: FaultKind::InstanceCrash {
                count: count.max(1),
            },
        })
    }

    /// One deterministic uniform roll in `[0, 1)` for a decision point.
    fn roll(&self, window: usize, class: u64, service: usize, slot: u64) -> f64 {
        let salt = mix(salt(window), class, salt(service), slot);
        StdRng::seed_from_u64(self.seed ^ salt).gen::<f64>()
    }

    fn window_hits(
        &self,
        window_idx: usize,
        window: &FaultWindow,
        class: u64,
        service: usize,
        slot: u64,
        time: f64,
    ) -> bool {
        window.service.is_none_or(|s| s == service)
            && time >= window.start
            && time < window.end
            && self.roll(window_idx, class, service, slot) < window.probability
    }

    /// The monitoring fault (drop, delay or corrupt) hitting `service`'s
    /// monitoring interval `interval_index` (closing at `time`), if any.
    /// The first matching window wins.
    pub fn monitor_fault(
        &self,
        service: usize,
        interval_index: usize,
        time: f64,
    ) -> Option<FaultKind> {
        self.windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.kind.is_monitor())
            .find(|(i, w)| self.window_hits(*i, w, 1, service, salt(interval_index), time))
            .map(|(_, w)| w.kind)
    }

    /// The actuation fault hitting `service`'s scaling command number
    /// `attempt` issued at `time`, if any. Distinct attempts roll
    /// independently, so a retry of a transient failure may succeed.
    /// `service == service_count` denotes the VM pool.
    pub fn actuation_fault(&self, service: usize, attempt: u64, time: f64) -> Option<FaultKind> {
        self.windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.kind.is_actuation())
            .find(|(i, w)| self.window_hits(*i, w, 2, service, attempt, time))
            .map(|(_, w)| w.kind)
    }

    /// The number of instances of `service` crashing during monitoring
    /// interval `interval_index` (whose midpoint is `time`), if any.
    pub fn crash_fault(&self, service: usize, interval_index: usize, time: f64) -> Option<u32> {
        self.windows
            .iter()
            .enumerate()
            .find_map(|(i, w)| match w.kind {
                FaultKind::InstanceCrash { count }
                    if self.window_hits(i, w, 3, service, salt(interval_index), time) =>
                {
                    Some(count)
                }
                _ => None,
            })
    }

    /// Whether the controller crashes at the start of decision cycle
    /// `cycle` (whose wall clock is `time`). Like every other query this
    /// is a pure roll — restarted controllers re-consulting the plan see
    /// the same schedule. Controller crashes use service slot `0`.
    pub fn controller_crash(&self, cycle: usize, time: f64) -> bool {
        self.windows.iter().enumerate().any(|(i, w)| match w.kind {
            FaultKind::ControllerCrash { at_cycle } => {
                at_cycle == cycle && self.window_hits(i, w, 4, 0, salt(cycle), time)
            }
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(7)
            .drop_samples(None, 100.0, 200.0, 0.5)
            .fail_actuations(Some(1), 0.0, 1000.0, 0.5)
            .crash_instances(Some(0), 300.0, 400.0, 1.0, 2)
    }

    #[test]
    fn identical_seeds_reproduce_identical_schedules() {
        let a = plan();
        let b = plan();
        for k in 0..50 {
            let t = 100.0 + k as f64 * 2.0;
            assert_eq!(a.monitor_fault(0, k, t), b.monitor_fault(0, k, t));
            assert_eq!(
                a.actuation_fault(1, k as u64, t),
                b.actuation_fault(1, k as u64, t)
            );
            assert_eq!(a.crash_fault(0, k, 350.0), b.crash_fault(0, k, 350.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).drop_samples(None, 0.0, 1000.0, 0.5);
        let b = FaultPlan::new(2).drop_samples(None, 0.0, 1000.0, 0.5);
        let hits_a: Vec<bool> = (0..200)
            .map(|k| a.monitor_fault(0, k, 10.0).is_some())
            .collect();
        let hits_b: Vec<bool> = (0..200)
            .map(|k| b.monitor_fault(0, k, 10.0).is_some())
            .collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn windows_gate_by_time_and_service() {
        let p = plan();
        // Outside the drop window: never fires.
        assert_eq!(p.monitor_fault(0, 3, 99.0), None);
        assert_eq!(p.monitor_fault(0, 3, 200.0), None);
        // Actuation window targets service 1 only.
        assert_eq!(p.actuation_fault(0, 0, 50.0), None);
        assert_eq!(p.actuation_fault(2, 0, 50.0), None);
        // Crash window targets service 0 only, probability 1.
        assert_eq!(p.crash_fault(0, 5, 350.0), Some(2));
        assert_eq!(p.crash_fault(1, 5, 350.0), None);
    }

    #[test]
    fn probability_extremes() {
        let never = FaultPlan::new(3).drop_samples(None, 0.0, 1000.0, 0.0);
        let always = FaultPlan::new(3).drop_samples(None, 0.0, 1000.0, 1.0);
        for k in 0..100 {
            assert_eq!(never.monitor_fault(0, k, 10.0), None);
            assert_eq!(
                always.monitor_fault(0, k, 10.0),
                Some(FaultKind::DropSample)
            );
        }
    }

    #[test]
    fn probability_roughly_respected() {
        let p = FaultPlan::new(11).drop_samples(None, 0.0, 1e9, 0.3);
        let hits = (0..1000)
            .filter(|&k| p.monitor_fault(0, k, 10.0).is_some())
            .count();
        assert!((200..400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn builder_sanitizes_inputs() {
        let p = FaultPlan::new(1)
            .drop_samples(None, 10.0, 5.0, 0.5) // inverted range: discarded
            .drop_samples(None, 0.0, f64::NAN, 0.5) // non-finite: discarded
            .corrupt_samples(None, 0.0, 10.0, 7.0, CorruptionMode::Nan) // p clamped to 1
            .delay_samples(None, 0.0, 10.0, f64::NAN, 0) // NaN p -> 0, intervals -> 1
            .crash_instances(None, 0.0, 10.0, 1.0, 0); // count -> 1
        assert_eq!(p.windows().len(), 3);
        assert_eq!(p.windows()[0].probability, 1.0);
        assert_eq!(p.windows()[1].probability, 0.0);
        assert_eq!(p.windows()[1].kind, FaultKind::DelaySample { intervals: 1 });
        assert_eq!(p.windows()[2].kind, FaultKind::InstanceCrash { count: 1 });
    }

    #[test]
    fn fault_codes_are_stable() {
        let kinds = [
            (FaultKind::DropSample, "drop_sample"),
            (FaultKind::DelaySample { intervals: 2 }, "delay_sample"),
            (
                FaultKind::CorruptSample {
                    mode: CorruptionMode::Nan,
                },
                "corrupt_sample",
            ),
            (FaultKind::ActuationFail, "actuation_fail"),
            (FaultKind::ActuationDelay { extra: 5.0 }, "actuation_delay"),
            (FaultKind::InstanceCrash { count: 1 }, "instance_crash"),
            (
                FaultKind::ControllerCrash { at_cycle: 9 },
                "controller_crash",
            ),
        ];
        for (kind, code) in kinds {
            assert_eq!(kind.as_code(), code);
            assert_eq!(kind.to_string(), code);
        }
        for (mode, code) in [
            (CorruptionMode::Nan, "nan"),
            (CorruptionMode::Negative, "negative"),
            (CorruptionMode::Spike { factor: 8.0 }, "spike"),
        ] {
            assert_eq!(mode.as_code(), code);
            assert_eq!(mode.to_string(), code);
        }
    }

    #[test]
    fn controller_crashes_gate_by_cycle_and_time() {
        let p = FaultPlan::new(9)
            .crash_controller(12, 600.0, 1200.0, 1.0)
            .crash_controller(40, 0.0, 100.0, 0.0);
        // Fires exactly at its cycle, inside its window.
        assert!(p.controller_crash(12, 720.0));
        assert!(!p.controller_crash(12, 1200.0), "window end is exclusive");
        assert!(!p.controller_crash(11, 720.0), "wrong cycle");
        assert!(!p.controller_crash(40, 50.0), "probability 0 never fires");
        // Deterministic: the same query always answers the same.
        assert!(p.controller_crash(12, 720.0));
        // A controller-crash plan never leaks into the other queries.
        assert_eq!(p.monitor_fault(0, 12, 720.0), None);
        assert_eq!(p.actuation_fault(0, 12, 720.0), None);
        assert_eq!(p.crash_fault(0, 12, 720.0), None);
    }

    #[test]
    fn retry_attempts_roll_independently() {
        let p = FaultPlan::new(5).fail_actuations(None, 0.0, 1000.0, 0.5);
        let outcomes: Vec<bool> = (0..50)
            .map(|a| p.actuation_fault(0, a, 10.0).is_some())
            .collect();
        assert!(outcomes.iter().any(|&x| x), "some attempts fail");
        assert!(outcomes.iter().any(|&x| !x), "some attempts succeed");
    }
}
