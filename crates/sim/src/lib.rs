//! Discrete-event micro-service cloud simulator for the Chamulteon
//! reproduction.
//!
//! The paper evaluates on a private CloudStack/KVM cloud and a Kubernetes
//! cluster (§IV-A). This crate is the measurement substrate that replaces
//! that testbed: a request-level discrete-event simulation of a
//! multi-service application in which
//!
//! * every service is a FCFS multi-server station with exponential service
//!   times (matching the M/M/n modeling assumption of §III-B, and — more
//!   importantly — producing the real queueing dynamics, bottleneck
//!   shifting and SLO violations the paper measures),
//! * instances boot with a deployment-dependent **provisioning delay**
//!   ([`DeploymentProfile::docker`] seconds vs. [`DeploymentProfile::vm`]
//!   minutes), the mechanism that separates the Docker and VM scenarios,
//! * scale-downs release idle instances immediately and drain busy ones,
//! * a monitoring subsystem aggregates per-interval arrivals, utilization
//!   and response times — the inputs every auto-scaler receives (§IV-C),
//! * every request's end-to-end response time is recorded against the SLO
//!   for the user-oriented metrics (SLO violations, Apdex).
//!
//! The simulation is fully deterministic in its seed. The load balancer is
//! modeled as an ideal central queue per service (the paper's Traefik in
//! front of homogeneous instances).
//!
//! The simulator executes requests along the *topological order* of the
//! application model — exactly the paper's chain topology. General DAG
//! models are propagated analytically in `chamulteon-perfmodel`; simulating
//! forks/joins is out of scope of this reproduction.
//!
//! # Example
//!
//! ```
//! use chamulteon_perfmodel::ApplicationModel;
//! use chamulteon_sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
//! use chamulteon_workload::LoadTrace;
//!
//! let model = ApplicationModel::paper_benchmark();
//! let trace = LoadTrace::new(60.0, vec![30.0, 50.0, 40.0])?;
//! let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 42);
//! let mut sim = Simulation::new(&model, &trace, config);
//! sim.set_supply(0, 4); sim.set_supply(1, 6); sim.set_supply(2, 3);
//! let result = sim.run_to_end();
//! assert!(result.total_requests() > 0);
//! # Ok::<(), chamulteon_workload::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod config;
pub mod des;
pub mod engine;
pub mod error;
pub mod fault;
pub mod nested;
pub mod stats;

pub use config::{DeploymentProfile, HybridConfig, SimulationConfig, SloPolicy};
pub use des::DesSimulation;
pub use engine::{RecoveryPolicy, Simulation};
pub use error::SimError;
pub use fault::{CorruptionMode, FaultKind, FaultPlan, FaultRecord, FaultWindow};
pub use nested::VmPoolConfig;
pub use stats::{ObservedSample, ServiceIntervalStats, SimulationResult, SupplyChange};
