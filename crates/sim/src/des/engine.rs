//! [`DesSimulation`]: the event-driven core with the hybrid fluid switch.

use super::event::{DesEventKind, EventId, EventQueue};
use super::fluid::{self, Carry, FluidStep};
use super::station::{Regime, Station};
use crate::config::{HybridConfig, SimulationConfig};
use crate::engine::planned_crashes;
use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, FaultRecord};
use crate::stats::{
    second_index, ObservedSample, ServiceIntervalStats, SimulationResult, SupplyChange,
};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_workload::{LoadTrace, PoissonArrivals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Memo key for a cached fluid sojourn law: `(λ bits, running instances,
/// speed bits)` — the triple that determines the law for a service whose
/// demand is fixed at construction.
type LawKey = (u64, u32, u64);

/// Leaving the all-fluid aggregate regime materializes every in-flight
/// request as an entity. Above this count the exit is deferred to the next
/// regime evaluation instead — materializing tens of millions of entities
/// at once would defeat the purpose of the fluid regime.
const MAX_MATERIALIZED: u64 = 5_000_000;

/// A request entity in the slab. Slots are recycled through a free list so
/// the slab size is bounded by the peak number of in-flight requests, not
/// by the total sent (the fixed-step engine keeps every request forever,
/// which is exactly what breaks at 10⁶ req/s).
#[derive(Debug, Clone, Copy)]
struct RequestSlot {
    /// Wall-clock send time.
    start: f64,
    /// Index into the topological path.
    stage: usize,
    /// When it entered the current station.
    entered_service: f64,
    /// The scheduled Completion/StageDone event, for O(log n) cancellation
    /// when the station absorbs this entity into the fluid mass.
    pending: Option<EventId>,
    /// Whether the slot holds an in-flight request.
    live: bool,
    /// Whether the entity's current stage is an analytically sampled
    /// sojourn (a pending StageDone) rather than discrete service.
    analytic: bool,
}

/// The SLO classification of fluid-mode completions, refreshed every
/// monitoring interval from `tail_samples` sampled end-to-end sojourns.
#[derive(Debug, Clone, Default)]
struct FluidClass {
    /// Fraction of sampled sojourns satisfying the SLO.
    p_satisfied: f64,
    /// Fraction merely tolerating.
    p_tolerating: f64,
    /// Mean sampled end-to-end response time.
    mean_total: f64,
    /// Mean sampled per-station sojourn, indexed by path position.
    station_mean: Vec<f64>,
}

/// The event-driven simulation core with a hybrid fluid regime.
///
/// Drop-in alternative to the fixed-surface [`crate::Simulation`]: the same
/// constructor shape, the same control surface (`run_until`, `scale_to`,
/// `observe_interval`, …) and the same [`SimulationResult`]. Without a
/// [`HybridConfig`] it is a pure discrete-event simulation — every request
/// an entity, every completion an event — and reproduces the fixed-step
/// engine bit-exactly on flat deployments. With one, a station whose
/// offered load (trace rate × service demand, in Erlangs) crosses the
/// threshold switches to an analytic M/M/n fluid approximation, and once
/// *every* path station is fluid the core drops request entities entirely
/// and integrates aggregate flows, which is what makes day-long traces at
/// 10⁶ req/s tractable. In-flight requests are conserved bit-exactly
/// across every regime transition: `sent == completed + in_flight` is an
/// integer identity at all times, enforced by construction rather than by
/// reconciliation.
///
/// Two capabilities of the fixed-step engine are deliberately out of
/// scope: nested VM pools (`vms_running` & friends return `None`,
/// [`scale_vms`](DesSimulation::scale_vms) errors) and checkpoint forking
/// ([`fork_with_fault_plan`](DesSimulation::fork_with_fault_plan) errors) —
/// the degradation ladder and robustness grid fall back to from-scratch
/// runs there.
#[derive(Clone)]
pub struct DesSimulation {
    // Static configuration.
    path: Vec<usize>,
    true_demands: Vec<f64>,
    config: SimulationConfig,
    hybrid: Option<HybridConfig>,
    trace: LoadTrace,
    duration: f64,
    min_instances: Vec<u32>,
    max_instances: Vec<u32>,
    // Dynamic state.
    now: f64,
    /// Time up to which the fluid flows have been integrated.
    last_flow: f64,
    events: EventQueue,
    next_arrival: Option<f64>,
    /// `None` while the aggregate regime owns the arrival process.
    arrivals: Option<PoissonArrivals>,
    /// How many times the arrival process has been re-materialized; salts
    /// the resumed stream's seed so successive streams are independent.
    arrival_streams: u64,
    stations: Vec<Station>,
    requests: Vec<RequestSlot>,
    free: Vec<usize>,
    /// Whether every path station is fluid and entities are suspended.
    aggregate: bool,
    fluid_class: FluidClass,
    sent_carry: Carry,
    sat_carry: Carry,
    tol_carry: Carry,
    rng: StdRng,
    /// Dedicated stream for analytic sojourn sampling, so turning a
    /// station fluid does not perturb the discrete service-time draws.
    tail_rng: StdRng,
    /// One-entry memo per service for the fluid sojourn law, keyed by
    /// [`LawKey`]. Rebuilding the law runs an O(servers) Erlang-C
    /// recurrence (~10⁵ steps at production scale), which must happen
    /// per segment/supply change, not per sample.
    law_cache: Vec<Option<(LawKey, fluid::SojournLaw)>>,
    // Accounting.
    total_sent: u64,
    completed: u64,
    satisfied: u64,
    tolerating: u64,
    response_time_sum: f64,
    supply: Vec<Vec<SupplyChange>>,
    sent_per_second: Vec<u64>,
    conformant_per_second: Vec<u64>,
    interval_history: Vec<Vec<ServiceIntervalStats>>,
    observed_history: Vec<Vec<Option<ObservedSample>>>,
    fault_log: Vec<FaultRecord>,
    actuation_attempts: Vec<u64>,
    events_processed: u64,
    regime_switches: u64,
}

impl std::fmt::Debug for DesSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesSimulation")
            .field("now", &self.now)
            .field("duration", &self.duration)
            .field("services", &self.stations.len())
            .field("aggregate", &self.aggregate)
            .field("total_sent", &self.total_sent)
            .field("completed", &self.completed)
            .finish()
    }
}

impl DesSimulation {
    /// Creates an event-driven simulation of `model` under `trace`.
    ///
    /// Mirrors [`crate::Simulation::new`]: services start at their
    /// model-declared initial instance counts, ground-truth service times
    /// are exponential with the nominal demands as means, and the request
    /// path is the topological order of the invocation graph. When
    /// `config.hybrid` is set, the regimes are evaluated immediately, so a
    /// trace that is already past the threshold at `t = 0` starts fluid.
    pub fn new(model: &ApplicationModel, trace: &LoadTrace, config: SimulationConfig) -> Self {
        let path: Vec<usize> = {
            let order = model
                .graph()
                .topological_order()
                .unwrap_or_else(|| (0..model.service_count()).collect());
            let ratios = model.visit_ratios();
            order.into_iter().filter(|&s| ratios[s] > 0.0).collect()
        };
        let true_demands: Vec<f64> = model
            .services()
            .iter()
            .map(|s| s.nominal_demand())
            .collect();
        let stations: Vec<Station> = model
            .services()
            .iter()
            .map(|s| Station::new(s.initial_instances()))
            .collect();
        let duration = trace.duration();
        let seconds = second_index(duration.ceil()).saturating_add(1);
        let mut arrivals = PoissonArrivals::new(trace, config.seed.wrapping_add(1));
        let next_arrival = arrivals.next();
        let supply = stations
            .iter()
            .map(|s| {
                vec![SupplyChange {
                    time: 0.0,
                    running: s.running,
                }]
            })
            .collect();
        let hybrid = config.hybrid;
        let mut sim = DesSimulation {
            path,
            true_demands,
            hybrid,
            trace: trace.clone(),
            min_instances: model.services().iter().map(|s| s.min_instances()).collect(),
            max_instances: model.services().iter().map(|s| s.max_instances()).collect(),
            duration,
            now: 0.0,
            last_flow: 0.0,
            events: EventQueue::new(),
            next_arrival,
            arrivals: Some(arrivals),
            arrival_streams: 0,
            stations,
            requests: Vec::new(),
            free: Vec::new(),
            aggregate: false,
            fluid_class: FluidClass::default(),
            sent_carry: Carry::default(),
            sat_carry: Carry::default(),
            tol_carry: Carry::default(),
            rng: StdRng::seed_from_u64(config.seed),
            tail_rng: StdRng::seed_from_u64(config.seed.wrapping_add(2)),
            law_cache: vec![None; model.service_count()],
            total_sent: 0,
            completed: 0,
            satisfied: 0,
            tolerating: 0,
            response_time_sum: 0.0,
            supply,
            sent_per_second: vec![0; seconds],
            conformant_per_second: vec![0; seconds],
            interval_history: vec![Vec::new(); model.service_count()],
            observed_history: vec![Vec::new(); model.service_count()],
            fault_log: Vec::new(),
            actuation_attempts: vec![0; model.service_count() + 1],
            events_processed: 0,
            regime_switches: 0,
            config,
        };
        sim.events
            .schedule(sim.config.monitoring_interval, DesEventKind::MonitorTick);
        sim.schedule_planned_crashes();
        sim.evaluate_regimes(0.0);
        sim
    }

    /// Pre-schedules every instance crash the fault plan dictates, sharing
    /// the schedule derivation with the fixed-step engine.
    fn schedule_planned_crashes(&mut self) {
        let crashes = match &self.config.fault_plan {
            Some(plan) => planned_crashes(
                plan,
                self.config.monitoring_interval,
                self.duration,
                self.stations.len(),
            ),
            None => Vec::new(),
        };
        for (time, service, count) in crashes {
            self.events
                .schedule(time, DesEventKind::Crash { service, count });
        }
    }

    // ------------------------------------------------------------------
    // Public surface (mirrors `crate::Simulation`).
    // ------------------------------------------------------------------

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.stations.len()
    }

    /// Ready (booted) instances of a service.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn running(&self, service: usize) -> u32 {
        self.stations[service].running
    }

    /// Ready plus booting instances.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn provisioned(&self, service: usize) -> u32 {
        self.stations[service].provisioned()
    }

    /// Current queue length at a service. For a fluid station this is the
    /// analytic backlog `max(mass − running, 0)` rounded to the nearest
    /// request.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn queue_length(&self, service: usize) -> usize {
        let st = &self.stations[service];
        if st.regime == Regime::Fluid {
            (st.mass - f64::from(st.running)).max(0.0).round() as usize
        } else {
            st.queue.len()
        }
    }

    /// The current vertical speed factor of a service (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn speed(&self, service: usize) -> f64 {
        self.stations[service].speed
    }

    /// Whether a service currently runs in the fluid regime.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn is_fluid(&self, service: usize) -> bool {
        self.stations[service].regime == Regime::Fluid
    }

    /// Whether every path station is fluid and the core is integrating
    /// aggregate flows (no request entities at all).
    pub fn is_aggregate(&self) -> bool {
        self.aggregate
    }

    /// Discrete items processed so far: external arrivals plus fired
    /// events. The events/sec throughput metric of the `des-scale` bench
    /// divides this by wall-clock time.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Regime transitions performed so far (per-station switches plus
    /// aggregate entries/exits).
    pub fn regime_switches(&self) -> u64 {
        self.regime_switches
    }

    /// Ready VMs of a nested pool — always `None`: the event-driven core
    /// simulates flat deployments only.
    pub fn vms_running(&self) -> Option<u32> {
        None
    }

    /// Ready plus booting VMs — always `None` (no nested pool).
    pub fn vms_provisioned(&self) -> Option<u32> {
        None
    }

    /// Free container slots — always `None` (no nested pool).
    pub fn free_slots(&self) -> Option<u32> {
        None
    }

    /// Stalled container boots — always `None` (no nested pool).
    pub fn waiting_containers(&self) -> Option<usize> {
        None
    }

    /// VM-pool scaling is not supported by the event-driven core.
    ///
    /// # Errors
    ///
    /// Always returns [`SimError::InvalidConfig`] for the `vm_pool` field.
    pub fn scale_vms(&mut self, _target: u32) -> Result<(), SimError> {
        Err(SimError::InvalidConfig {
            field: "vm_pool",
            value: 0.0,
        })
    }

    /// Checkpoint forking is not supported by the event-driven core: the
    /// fluid regime erases the per-request state the fork soundness
    /// argument is built on. Callers fall back to a from-scratch run.
    ///
    /// # Errors
    ///
    /// Always returns [`SimError::CannotFork`].
    pub fn fork_with_fault_plan(&self, _plan: FaultPlan) -> Result<DesSimulation, SimError> {
        Err(SimError::CannotFork {
            reason: "the event-driven core does not fork",
        })
    }

    /// Consults the fault plan for a controller crash at the start of
    /// decision cycle `cycle` (wall clock `time`); logs and reports it
    /// exactly like [`crate::Simulation::controller_crash_at`].
    pub fn controller_crash_at(&mut self, cycle: usize, time: f64) -> bool {
        let crashed = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.controller_crash(cycle, time));
        if crashed {
            self.fault_log.push(FaultRecord {
                time,
                service: 0,
                kind: FaultKind::ControllerCrash { at_cycle: cycle },
            });
        }
        crashed
    }

    /// Immediately sets a service's supply (no provisioning delay) —
    /// intended for initial placement before the experiment starts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index.
    pub fn set_supply(&mut self, service: usize, count: u32) -> Result<(), SimError> {
        let count = self.clamp_to_bounds(service, count)?;
        let now = self.now;
        let st = &mut self.stations[service];
        st.touch(now);
        let new_running = count.max(st.busy);
        st.retiring = new_running - count.min(new_running);
        st.running = new_running;
        st.target = count;
        self.record_supply(service);
        self.start_queued(service);
        Ok(())
    }

    /// Issues a horizontal scaling command with the deployment profile's
    /// provisioning delays, clamped into the model's instance bounds.
    /// Works identically in both regimes — a fluid station's capacity
    /// changes take effect through the drift ODE instead of through
    /// per-request scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index and
    /// [`SimError::ActuationFailed`] when an injected fault makes the
    /// command fail transiently.
    pub fn scale_to(&mut self, service: usize, target: u32) -> Result<(), SimError> {
        let target = self.clamp_to_bounds(service, target)?;
        let extra_delay = self.check_actuation_fault(service)?;
        let provisioned = self.stations[service].provisioned();
        let prov_delay = self.config.profile.provisioning_delay + extra_delay;
        let deprov_delay = self.config.profile.deprovisioning_delay + extra_delay;
        match target.cmp(&provisioned) {
            Ordering::Greater => {
                let add = target - provisioned;
                for _ in 0..add {
                    self.stations[service].pending_boots += 1;
                    self.events
                        .schedule(self.now + prov_delay, DesEventKind::Boot { service });
                }
            }
            Ordering::Less => {
                let mut remove = provisioned - target;
                let st = &mut self.stations[service];
                let cancellable = st.pending_boots - st.cancelled_boots;
                let cancel = remove.min(cancellable);
                st.cancelled_boots += cancel;
                remove -= cancel;
                if remove > 0 {
                    self.events.schedule(
                        self.now + deprov_delay,
                        DesEventKind::Shutdown {
                            service,
                            count: remove,
                        },
                    );
                }
            }
            Ordering::Equal => {}
        }
        self.stations[service].target = target;
        Ok(())
    }

    /// Issues a vertical scaling command, exactly like
    /// [`crate::Simulation::scale_vertical`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for an out-of-range index and
    /// [`SimError::InvalidConfig`] for a non-finite or non-positive speed.
    pub fn scale_vertical(&mut self, service: usize, speed: f64) -> Result<(), SimError> {
        if service >= self.stations.len() {
            return Err(SimError::UnknownService {
                index: service,
                count: self.stations.len(),
            });
        }
        if !(speed > 0.0) || !speed.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "speed",
                value: speed,
            });
        }
        let delay = self.config.profile.provisioning_delay;
        self.events
            .schedule(self.now + delay, DesEventKind::Resize { service, speed });
        Ok(())
    }

    /// Runs the simulation until time `t` (clamped to the trace duration).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeReversed`] when `t` is NaN or earlier than
    /// the current simulation time.
    pub fn run_until(&mut self, t: f64) -> Result<(), SimError> {
        if t.is_nan() || t < self.now {
            return Err(SimError::TimeReversed {
                target: t,
                now: self.now,
            });
        }
        self.advance_to(t);
        Ok(())
    }

    /// Runs to the end of the trace and returns the collected result.
    pub fn run_to_end(mut self) -> SimulationResult {
        self.advance_to(self.duration);
        self.finish()
    }

    /// Finalizes accounting and returns the result. The conservation
    /// identity holds by construction: `in_flight_at_end` is exactly
    /// `sent − completed`, whatever mix of regimes the run went through.
    pub fn finish(mut self) -> SimulationResult {
        let now = self.now;
        self.integrate_flows(now);
        for service in 0..self.stations.len() {
            self.stations[service].touch(now);
        }
        SimulationResult {
            duration: self.duration,
            supply: self.supply,
            sent_per_second: self.sent_per_second,
            conformant_per_second: self.conformant_per_second,
            completed: self.completed,
            satisfied: self.satisfied,
            tolerating: self.tolerating,
            in_flight_at_end: self.total_sent - self.completed,
            response_time_sum: self.response_time_sum,
            interval_history: self.interval_history,
            fault_log: self.fault_log,
        }
    }

    /// Number of completed monitoring intervals so far.
    pub fn intervals_completed(&self) -> usize {
        self.interval_history.first().map(Vec::len).unwrap_or(0)
    }

    /// The ground-truth monitoring stats of interval `index` (0-based) for
    /// every service, or `None` if that interval has not completed yet.
    pub fn interval(&self, index: usize) -> Option<Vec<ServiceIntervalStats>> {
        if index >= self.intervals_completed() {
            return None;
        }
        Some(self.interval_history.iter().map(|h| h[index]).collect())
    }

    /// What monitoring *reported* for interval `index` (0-based), with the
    /// same fault semantics as [`crate::Simulation::observe_interval`].
    pub fn observe_interval(&self, index: usize) -> Option<Vec<Option<ObservedSample>>> {
        if index >= self.intervals_completed() {
            return None;
        }
        Some(self.observed_history.iter().map(|h| h[index]).collect())
    }

    /// Every fault injected so far, in time order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    // ------------------------------------------------------------------
    // The event loop.
    // ------------------------------------------------------------------

    fn advance_to(&mut self, t: f64) {
        let t = t.min(self.duration);
        loop {
            let next_event_time = self.events.peek_time();
            let next_arrival_time = self.next_arrival;
            let (time, is_arrival) = match (next_event_time, next_arrival_time) {
                (None, None) => break,
                (Some(e), None) => (e, false),
                (None, Some(a)) => (a, true),
                (Some(e), Some(a)) => {
                    if a <= e {
                        (a, true)
                    } else {
                        (e, false)
                    }
                }
            };
            if time > t {
                break;
            }
            self.integrate_flows(time);
            self.now = time;
            self.events_processed += 1;
            if is_arrival {
                self.next_arrival = self.arrivals.as_mut().and_then(Iterator::next);
                self.handle_external_arrival(time);
            } else if let Some((_, kind)) = self.events.pop() {
                self.dispatch(kind);
            }
        }
        self.integrate_flows(t);
        self.now = t;
    }

    fn dispatch(&mut self, kind: DesEventKind) {
        match kind {
            DesEventKind::Completion { service, request } => self.on_completion(service, request),
            DesEventKind::StageDone { service, request } => self.on_stage_done(service, request),
            DesEventKind::Boot { service } => self.on_boot(service),
            DesEventKind::Shutdown { service, count } => self.on_shutdown(service, count),
            DesEventKind::Resize { service, speed } => {
                self.stations[service].speed = speed;
            }
            DesEventKind::MonitorTick => self.on_monitor_tick(),
            DesEventKind::Crash { service, count } => self.on_crash(service, count),
        }
    }

    fn handle_external_arrival(&mut self, time: f64) {
        let sec = second_index(time);
        if sec < self.sent_per_second.len() {
            self.sent_per_second[sec] += 1;
        }
        self.total_sent += 1;
        let Some(&first) = self.path.first() else {
            // Degenerate empty path: the request completes instantly.
            let id = self.alloc_request(time, 0);
            self.finish_request(id);
            return;
        };
        let id = self.alloc_request(time, 0);
        self.arrive_at_station(first, id);
    }

    fn alloc_request(&mut self, start: f64, stage: usize) -> usize {
        let slot = RequestSlot {
            start,
            stage,
            entered_service: start,
            pending: None,
            live: true,
            analytic: false,
        };
        if let Some(id) = self.free.pop() {
            self.requests[id] = slot;
            id
        } else {
            self.requests.push(slot);
            self.requests.len() - 1
        }
    }

    fn arrive_at_station(&mut self, service: usize, request: usize) {
        let now = self.now;
        self.requests[request].entered_service = now;
        if self.stations[service].regime == Regime::Fluid {
            self.stations[service].interval_arrivals += 1;
            let sojourn = self.sample_station_sojourn(service);
            self.requests[request].analytic = true;
            let ev = self
                .events
                .schedule(now + sojourn, DesEventKind::StageDone { service, request });
            self.requests[request].pending = Some(ev);
        } else {
            self.requests[request].analytic = false;
            let st = &mut self.stations[service];
            st.interval_arrivals += 1;
            if st.busy < st.running {
                self.begin_service(service, request);
            } else {
                st.queue.push_back(request);
            }
        }
    }

    fn begin_service(&mut self, service: usize, request: usize) {
        let now = self.now;
        // Vertical scaling speeds every instance up uniformly.
        let demand = self.true_demands[service] / self.stations[service].speed;
        let u: f64 = self.rng.gen();
        let service_time = -(1.0 - u).ln() * demand;
        let st = &mut self.stations[service];
        st.touch(now);
        st.busy += 1;
        let ev = self.events.schedule(
            now + service_time,
            DesEventKind::Completion { service, request },
        );
        self.requests[request].pending = Some(ev);
        self.requests[request].analytic = false;
    }

    fn start_queued(&mut self, service: usize) {
        while self.stations[service].busy < self.stations[service].running {
            let Some(request) = self.stations[service].queue.pop_front() else {
                break;
            };
            self.begin_service(service, request);
        }
    }

    fn on_completion(&mut self, service: usize, request: usize) {
        if !self.requests.get(request).is_some_and(|r| r.live) {
            return;
        }
        let now = self.now;
        self.requests[request].pending = None;
        {
            let st = &mut self.stations[service];
            st.touch(now);
            st.busy = st.busy.saturating_sub(1);
            st.interval_completions += 1;
            let waited = now - self.requests[request].entered_service;
            st.interval_response_sum += waited;
            st.interval_response_count += 1;
            if st.retiring > 0 {
                st.retiring -= 1;
                st.running -= 1;
            }
        }
        self.record_supply(service);
        self.start_queued(service);
        self.advance_request(request);
    }

    fn on_stage_done(&mut self, service: usize, request: usize) {
        if !self.requests.get(request).is_some_and(|r| r.live) {
            return;
        }
        let now = self.now;
        self.requests[request].pending = None;
        self.requests[request].analytic = false;
        {
            let st = &mut self.stations[service];
            st.interval_completions += 1;
            let waited = now - self.requests[request].entered_service;
            st.interval_response_sum += waited;
            st.interval_response_count += 1;
        }
        self.advance_request(request);
    }

    fn advance_request(&mut self, request: usize) {
        let stage = self.requests[request].stage + 1;
        if stage < self.path.len() {
            self.requests[request].stage = stage;
            let next = self.path[stage];
            self.arrive_at_station(next, request);
        } else {
            self.finish_request(request);
        }
    }

    fn finish_request(&mut self, request: usize) {
        let start = self.requests[request].start;
        let response = self.now - start;
        self.requests[request].live = false;
        self.requests[request].pending = None;
        self.free.push(request);
        self.completed += 1;
        self.response_time_sum += response;
        if self.config.slo.is_satisfied(response) {
            self.satisfied += 1;
            let sec = second_index(start);
            if sec < self.conformant_per_second.len() {
                self.conformant_per_second[sec] += 1;
            }
        } else if self.config.slo.is_tolerating(response) {
            self.tolerating += 1;
        }
    }

    fn on_boot(&mut self, service: usize) {
        let now = self.now;
        let st = &mut self.stations[service];
        if st.cancelled_boots > 0 {
            st.cancelled_boots -= 1;
            st.pending_boots -= 1;
            return;
        }
        st.touch(now);
        st.pending_boots -= 1;
        st.running += 1;
        self.record_supply(service);
        self.start_queued(service);
    }

    fn on_shutdown(&mut self, service: usize, count: u32) {
        let now = self.now;
        let st = &mut self.stations[service];
        st.touch(now);
        let idle = st.running - st.busy;
        let remove_idle = count.min(idle);
        st.running -= remove_idle;
        st.retiring += count - remove_idle;
        self.record_supply(service);
    }

    /// An injected crash: idle instances die immediately, busy ones drain
    /// their current request first. A fluid station has no busy entities,
    /// so the whole kill is immediate — the drift ODE sees the capacity
    /// drop at once, which is the fluid limit of the same behavior.
    fn on_crash(&mut self, service: usize, count: u32) {
        let now = self.now;
        {
            let st = &mut self.stations[service];
            st.touch(now);
            let idle = st.running - st.busy;
            let kill_idle = count.min(idle);
            st.running -= kill_idle;
            let drain = (count - kill_idle).min(st.busy.saturating_sub(st.retiring));
            st.retiring += drain;
        }
        self.fault_log.push(FaultRecord {
            time: now,
            service,
            kind: FaultKind::InstanceCrash { count },
        });
        self.record_supply(service);
    }

    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    fn on_monitor_tick(&mut self) {
        let now = self.now;
        let interval = self.config.monitoring_interval;
        for (idx, st) in self.stations.iter_mut().enumerate() {
            st.touch(now);
            let utilization = if st.capacity_integral > 0.0 {
                (st.busy_integral / st.capacity_integral).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let mean_response_time = if st.interval_response_count > 0 {
                Some(st.interval_response_sum / st.interval_response_count as f64)
            } else {
                None
            };
            let queue_length_end = if st.regime == Regime::Fluid {
                (st.mass - f64::from(st.running)).max(0.0).round() as usize
            } else {
                st.queue.len()
            };
            self.interval_history[idx].push(ServiceIntervalStats {
                start: now - interval,
                duration: interval,
                arrivals: st.interval_arrivals,
                completions: st.interval_completions,
                utilization,
                mean_response_time,
                instances_end: st.running,
                queue_length_end,
            });
            st.busy_integral = 0.0;
            st.capacity_integral = 0.0;
            st.interval_arrivals = 0;
            st.interval_completions = 0;
            st.interval_response_sum = 0.0;
            st.interval_response_count = 0;
        }
        self.record_observations(now);
        if now + interval <= self.duration + 1e-9 {
            self.events
                .schedule(now + interval, DesEventKind::MonitorTick);
        }
        self.evaluate_regimes(now);
    }

    fn record_observations(&mut self, now: f64) {
        let k = self.intervals_completed().saturating_sub(1);
        for idx in 0..self.stations.len() {
            let fault = self
                .config
                .fault_plan
                .as_ref()
                .and_then(|p| p.monitor_fault(idx, k, now));
            let observed = match fault {
                Some(FaultKind::DropSample) => None,
                Some(FaultKind::DelaySample { intervals }) => k
                    .checked_sub(intervals)
                    .map(|j| ObservedSample::from_stats(&self.interval_history[idx][j])),
                Some(FaultKind::CorruptSample { mode }) => {
                    Some(ObservedSample::from_stats(&self.interval_history[idx][k]).corrupted(mode))
                }
                None | Some(_) => Some(ObservedSample::from_stats(&self.interval_history[idx][k])),
            };
            if let Some(kind) = fault {
                self.fault_log.push(FaultRecord {
                    time: now,
                    service: idx,
                    kind,
                });
            }
            self.observed_history[idx].push(observed);
        }
    }

    // ------------------------------------------------------------------
    // Shared internals.
    // ------------------------------------------------------------------

    fn clamp_to_bounds(&self, service: usize, count: u32) -> Result<u32, SimError> {
        if service >= self.stations.len() {
            return Err(SimError::UnknownService {
                index: service,
                count: self.stations.len(),
            });
        }
        Ok(count.clamp(self.min_instances[service], self.max_instances[service]))
    }

    fn check_actuation_fault(&mut self, target_index: usize) -> Result<f64, SimError> {
        let attempt = self.actuation_attempts[target_index];
        self.actuation_attempts[target_index] = attempt.wrapping_add(1);
        let fault = self
            .config
            .fault_plan
            .as_ref()
            .and_then(|p| p.actuation_fault(target_index, attempt, self.now));
        match fault {
            Some(kind @ FaultKind::ActuationFail) => {
                self.fault_log.push(FaultRecord {
                    time: self.now,
                    service: target_index,
                    kind,
                });
                Err(SimError::ActuationFailed {
                    service: target_index,
                })
            }
            Some(kind @ FaultKind::ActuationDelay { extra }) => {
                self.fault_log.push(FaultRecord {
                    time: self.now,
                    service: target_index,
                    kind,
                });
                Ok(extra.max(0.0))
            }
            _ => Ok(0.0),
        }
    }

    fn record_supply(&mut self, service: usize) {
        let running = self.stations[service].running;
        let timeline = &mut self.supply[service];
        if timeline.last().map(|c| c.running) != Some(running) {
            timeline.push(SupplyChange {
                time: self.now,
                running,
            });
        }
    }
}

// ----------------------------------------------------------------------
// The hybrid fluid regime.
// ----------------------------------------------------------------------

impl DesSimulation {
    fn any_fluid(&self) -> bool {
        self.path
            .iter()
            .any(|&s| self.stations[s].regime == Regime::Fluid)
    }

    /// The deterministic offered load of a service, in Erlangs: the trace's
    /// external arrival rate times the effective service demand. This — not
    /// the stochastic instantaneous queue — is the switch criterion, so
    /// both switch directions are deterministic in the trace alone.
    fn offered_erlangs(&self, service: usize, t: f64) -> f64 {
        let st = &self.stations[service];
        let speed = if st.speed > 0.0 { st.speed } else { 1.0 };
        self.trace.rate_at(t).max(0.0) * self.true_demands[service] / speed
    }

    /// The fluid sojourn law of `service` at arrival rate `lam` with `n`
    /// running instances at `speed`, memoized per service — the Erlang-C
    /// recurrence behind it is O(n) and must not run per sample. Callers
    /// guarantee `true_demands[service] > 0`.
    fn station_law(&mut self, service: usize, lam: f64, n: u32, speed: f64) -> fluid::SojournLaw {
        let key = (lam.to_bits(), n, speed.to_bits());
        if let Some((cached, law)) = self.law_cache[service] {
            if cached == key {
                return law;
            }
        }
        let law = fluid::SojournLaw::new(lam, n, speed / self.true_demands[service]);
        self.law_cache[service] = Some((key, law));
        law
    }

    /// One analytic sojourn draw at a fluid station, from the dedicated
    /// tail-synthesis stream.
    fn sample_station_sojourn(&mut self, service: usize) -> f64 {
        let demand = self.true_demands[service];
        if !(demand > 0.0) {
            return 0.0;
        }
        let (n, speed, x) = {
            let st = &self.stations[service];
            (st.running, st.speed, st.mass)
        };
        let lam = self.trace.rate_at(self.now).max(0.0);
        let law = self.station_law(service, lam, n, speed);
        law.sample(x, &mut self.tail_rng)
    }

    /// Advances the fluid flows from `last_flow` to `to`, substepping at
    /// whole-second and trace-segment boundaries so per-second accounting
    /// and piecewise-constant rates are both respected. A no-op while no
    /// station is fluid.
    fn integrate_flows(&mut self, to: f64) {
        let to = to.min(self.duration);
        if !(to > self.last_flow) {
            return;
        }
        if self.hybrid.is_none() || (!self.aggregate && !self.any_fluid()) {
            self.last_flow = to;
            return;
        }
        let step = self.trace.step();
        let mut t0 = self.last_flow;
        while t0 < to {
            let next_second = t0.floor() + 1.0;
            let next_segment = ((t0 / step).floor() + 1.0) * step;
            let mut t1 = to.min(next_second.min(next_segment));
            if !(t1 > t0) {
                t1 = to;
            }
            let dt = t1 - t0;
            if self.aggregate {
                self.aggregate_step(t0, t1, dt);
            } else {
                self.shadow_step(t0, t1, dt);
            }
            t0 = t1;
        }
        self.last_flow = to;
    }

    /// One aggregate substep: deterministic integer arrivals via carry
    /// rounding, per-stage mass chained through the path by the drift ODE,
    /// and SLO accounting streamed from the current tail classification.
    /// Conservation is enforced at the exit: completions are capped at
    /// `sent − completed`, so the integer identity can never go negative.
    #[allow(clippy::cast_precision_loss)]
    fn aggregate_step(&mut self, t0: f64, t1: f64, dt: f64) {
        let mid = 0.5 * (t0 + t1);
        let lam0 = self.trace.rate_at(mid).max(0.0);
        let sent = self.sent_carry.take(lam0 * dt);
        let sec = second_index(t0);
        if sec < self.sent_per_second.len() {
            self.sent_per_second[sec] += sent;
        }
        self.total_sent += sent;
        let positions = self.path.len();
        let mut inflow = lam0;
        for pos in 0..positions {
            let s = self.path[pos];
            let demand = self.true_demands[s];
            let is_last = pos + 1 == positions;
            let avail = self.total_sent - self.completed;
            let p_sat = self.fluid_class.p_satisfied;
            let p_tol = self.fluid_class.p_tolerating;
            let mean_total = self.fluid_class.mean_total;
            let station_mean = self
                .fluid_class
                .station_mean
                .get(pos)
                .copied()
                .unwrap_or(demand);
            let c;
            let completed_mass;
            {
                let st = &mut self.stations[s];
                let fstep = if demand > 0.0 {
                    fluid::advance(st.mass, inflow, st.running, st.speed / demand, dt)
                } else {
                    FluidStep {
                        x_end: st.mass,
                        completed: inflow * dt,
                        busy_integral: 0.0,
                    }
                };
                st.mass = fstep.x_end;
                st.busy_integral += fstep.busy_integral;
                st.capacity_integral += f64::from(st.running) * dt;
                st.last_touch = t1;
                if pos == 0 {
                    st.interval_arrivals += sent;
                } else {
                    st.interval_arrivals += st.arrival_carry.take(inflow * dt);
                }
                let mut units = st.completion_carry.take(fstep.completed);
                if is_last {
                    units = units.min(avail);
                }
                st.interval_completions += units;
                st.interval_response_sum += units as f64 * station_mean;
                st.interval_response_count += units;
                c = units;
                completed_mass = fstep.completed;
            }
            if is_last && c > 0 {
                self.completed += c;
                let sat = self.sat_carry.take(c as f64 * p_sat).min(c);
                let tol = self.tol_carry.take(c as f64 * p_tol).min(c - sat);
                self.satisfied += sat;
                self.tolerating += tol;
                self.response_time_sum += c as f64 * mean_total;
                // Attribute conformant completions to the second their
                // requests were (on average) sent in.
                let start_sec = second_index(t0 - mean_total);
                if start_sec < self.conformant_per_second.len() {
                    self.conformant_per_second[start_sec] += sat;
                }
            }
            inflow = completed_mass / dt;
        }
    }

    /// One shadow substep (individual-fluid mode): only the fluid path
    /// stations integrate their analytic mass and utilization; requests
    /// are still entities doing their own accounting.
    fn shadow_step(&mut self, t0: f64, t1: f64, dt: f64) {
        let mid = 0.5 * (t0 + t1);
        let lam = self.trace.rate_at(mid).max(0.0);
        for pos in 0..self.path.len() {
            let s = self.path[pos];
            if self.stations[s].regime != Regime::Fluid {
                continue;
            }
            let demand = self.true_demands[s];
            let st = &mut self.stations[s];
            if demand > 0.0 {
                let fstep = fluid::advance(st.mass, lam, st.running, st.speed / demand, dt);
                st.mass = fstep.x_end;
                st.busy_integral += fstep.busy_integral;
            }
            st.capacity_integral += f64::from(st.running) * dt;
            st.last_touch = t1;
        }
    }

    /// Re-evaluates every path station's regime against the hysteretic
    /// thresholds at time `t`: up at `threshold_erlangs`, down at
    /// `hysteresis_ratio × threshold_erlangs`. Runs at construction and
    /// after every monitoring tick (once that tick's statistics are
    /// recorded, so a switch never splits an interval's accounting).
    fn evaluate_regimes(&mut self, t: f64) {
        let Some(h) = self.hybrid else { return };
        let path = self.path.clone();
        let mut want_fluid = vec![false; path.len()];
        let mut all_fluid = !path.is_empty();
        for (pos, &s) in path.iter().enumerate() {
            let offered = self.offered_erlangs(s, t);
            let currently_fluid = self.stations[s].regime == Regime::Fluid;
            let fluid_wanted = if currently_fluid {
                offered > h.lower_threshold()
            } else {
                offered >= h.threshold_erlangs
            };
            want_fluid[pos] = fluid_wanted;
            all_fluid &= fluid_wanted;
        }
        if self.aggregate {
            if all_fluid {
                self.refresh_fluid_class(t);
                return;
            }
            if self.total_sent - self.completed > MAX_MATERIALIZED {
                // Materializing this many entities would stall the run;
                // stay aggregate and re-evaluate next tick.
                return;
            }
            self.exit_aggregate(t, &want_fluid);
            return;
        }
        for (pos, &s) in path.iter().enumerate() {
            let is_fluid = self.stations[s].regime == Regime::Fluid;
            if want_fluid[pos] && !is_fluid {
                self.station_to_fluid(s);
            } else if !want_fluid[pos] && is_fluid {
                self.station_to_discrete(s);
            }
        }
        if all_fluid {
            self.enter_aggregate(t);
            self.refresh_fluid_class(t);
        }
    }

    /// Switches a station to the fluid regime, absorbing every entity
    /// currently queued or in service there: their pending completion
    /// events are cancelled and each gets one analytically sampled sojourn
    /// (a `StageDone` event) instead. The absorbed count seeds the fluid
    /// mass, so not a single in-flight request is created or destroyed.
    #[allow(clippy::cast_precision_loss)]
    fn station_to_fluid(&mut self, service: usize) {
        let now = self.now;
        let mut ids: Vec<usize> = Vec::new();
        for (id, slot) in self.requests.iter().enumerate() {
            if slot.live && !slot.analytic && self.path.get(slot.stage) == Some(&service) {
                ids.push(id);
            }
        }
        {
            let st = &mut self.stations[service];
            st.touch(now);
            // Retiring instances were draining their requests; those
            // requests are absorbed below, so retire them now.
            let dropped = st.retiring.min(st.running);
            st.running -= dropped;
            st.retiring = 0;
            st.queue.clear();
            st.busy = 0;
            st.regime = Regime::Fluid;
            st.mass = ids.len() as f64;
            st.last_touch = now;
            st.arrival_carry = Carry::default();
            st.completion_carry = Carry::default();
        }
        self.record_supply(service);
        self.regime_switches += 1;
        for id in ids {
            if let Some(ev) = self.requests[id].pending.take() {
                self.events.cancel(ev);
            }
            let sojourn = self.sample_station_sojourn(service);
            self.requests[id].entered_service = now;
            self.requests[id].analytic = true;
            let ev = self.events.schedule(
                now + sojourn,
                DesEventKind::StageDone {
                    service,
                    request: id,
                },
            );
            self.requests[id].pending = Some(ev);
        }
    }

    /// Switches a station back to the discrete regime. Entities with an
    /// outstanding analytic sojourn simply drain through their already
    /// scheduled `StageDone`; new arrivals queue discretely from here on.
    fn station_to_discrete(&mut self, service: usize) {
        let now = self.now;
        let st = &mut self.stations[service];
        st.regime = Regime::Discrete;
        st.busy = 0;
        st.retiring = 0;
        st.queue.clear();
        st.mass = 0.0;
        st.last_touch = now;
        self.regime_switches += 1;
    }

    /// Enters the aggregate regime: every live entity is dissolved into
    /// its station's fluid mass (one unit each — the sum of the masses is
    /// exactly `sent − completed`), the slab is emptied and the arrival
    /// process is suspended. From here on the only events are monitoring
    /// ticks, actuations and planned crashes.
    #[allow(clippy::cast_precision_loss)]
    fn enter_aggregate(&mut self, now: f64) {
        let mut masses = vec![0u64; self.path.len()];
        for slot in &mut self.requests {
            if slot.live {
                if let Some(ev) = slot.pending.take() {
                    self.events.cancel(ev);
                }
                slot.live = false;
                if let Some(m) = masses.get_mut(slot.stage) {
                    *m += 1;
                }
            }
        }
        self.requests.clear();
        self.free.clear();
        for (pos, &s) in self.path.iter().enumerate() {
            let st = &mut self.stations[s];
            st.busy = 0;
            st.queue.clear();
            st.mass = masses[pos] as f64;
            st.last_touch = now;
        }
        self.arrivals = None;
        self.next_arrival = None;
        self.aggregate = true;
        self.regime_switches += 1;
    }

    /// Leaves the aggregate regime: exactly `sent − completed` entities
    /// are materialized, distributed over the path by largest-remainder
    /// rounding of the stage masses (ties broken toward the earlier
    /// stage), and the arrival process resumes from `now` under a salted
    /// seed — exact by memorylessness of the exponential.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    fn exit_aggregate(&mut self, now: f64, want_fluid: &[bool]) {
        let in_flight = self.total_sent - self.completed;
        let path = self.path.clone();
        let weights: Vec<f64> = path
            .iter()
            .map(|&s| self.stations[s].mass.max(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut counts = vec![0u64; path.len()];
        if in_flight > 0 && !path.is_empty() {
            if total > 0.0 && total.is_finite() {
                let mut assigned = 0u64;
                let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
                for (pos, &w) in weights.iter().enumerate() {
                    let exact = in_flight as f64 * w / total;
                    let floor = exact.floor().max(0.0) as u64;
                    counts[pos] = floor.min(in_flight);
                    assigned += counts[pos];
                    remainders.push((exact - counts[pos] as f64, pos));
                }
                let mut left = in_flight.saturating_sub(assigned);
                remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                for (_, pos) in remainders {
                    if left == 0 {
                        break;
                    }
                    counts[pos] += 1;
                    left -= 1;
                }
                counts[0] += left;
            } else {
                counts[0] = in_flight;
            }
        }
        self.aggregate = false;
        self.regime_switches += 1;
        for (pos, &s) in path.iter().enumerate() {
            if !want_fluid.get(pos).copied().unwrap_or(false) {
                let st = &mut self.stations[s];
                st.regime = Regime::Discrete;
                st.busy = 0;
                st.retiring = 0;
                st.queue.clear();
                st.mass = 0.0;
                st.last_touch = now;
                self.regime_switches += 1;
            }
        }
        for (pos, &s) in path.iter().enumerate() {
            let count = counts[pos];
            if self.stations[s].regime == Regime::Fluid {
                self.stations[s].mass = count as f64;
                for _ in 0..count {
                    let id = self.alloc_request(now, pos);
                    let sojourn = self.sample_station_sojourn(s);
                    self.requests[id].analytic = true;
                    let ev = self.events.schedule(
                        now + sojourn,
                        DesEventKind::StageDone {
                            service: s,
                            request: id,
                        },
                    );
                    self.requests[id].pending = Some(ev);
                }
            } else {
                for _ in 0..count {
                    let id = self.alloc_request(now, pos);
                    if self.stations[s].busy < self.stations[s].running {
                        self.begin_service(s, id);
                    } else {
                        self.stations[s].queue.push_back(id);
                    }
                }
            }
        }
        self.arrival_streams += 1;
        let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.arrival_streams);
        let mut arr =
            PoissonArrivals::starting_at(&self.trace, self.config.seed.wrapping_add(1) ^ salt, now);
        self.next_arrival = arr.next();
        self.arrivals = Some(arr);
    }

    /// Refreshes the SLO classification of aggregate-mode completions by
    /// sampling `tail_samples` end-to-end sojourns through the current
    /// path state.
    fn refresh_fluid_class(&mut self, t: f64) {
        let Some(h) = self.hybrid else { return };
        let samples = h.tail_samples.max(1);
        let lam = self.trace.rate_at(t).max(0.0);
        let path = self.path.clone();
        // One law per path station, hoisted out of the sampling loop —
        // the station state is constant while sampling.
        let laws: Vec<Option<(fluid::SojournLaw, f64)>> = path
            .iter()
            .map(|&s| {
                if !(self.true_demands[s] > 0.0) {
                    return None;
                }
                let (n, speed, x) = {
                    let st = &self.stations[s];
                    (st.running, st.speed, st.mass)
                };
                Some((self.station_law(s, lam, n, speed), x))
            })
            .collect();
        let mut station_sum = vec![0.0f64; path.len()];
        let mut sat = 0u32;
        let mut tol = 0u32;
        let mut total_sum = 0.0;
        for _ in 0..samples {
            let mut total = 0.0;
            for (pos, law) in laws.iter().enumerate() {
                let sojourn = match *law {
                    Some((law, x)) => law.sample(x, &mut self.tail_rng),
                    None => 0.0,
                };
                station_sum[pos] += sojourn;
                total += sojourn;
            }
            total_sum += total;
            if self.config.slo.is_satisfied(total) {
                sat += 1;
            } else if self.config.slo.is_tolerating(total) {
                tol += 1;
            }
        }
        let inv = 1.0 / f64::from(samples);
        self.fluid_class = FluidClass {
            p_satisfied: f64::from(sat) * inv,
            p_tolerating: f64::from(tol) * inv,
            mean_total: total_sum * inv,
            station_mean: station_sum.iter().map(|s| s * inv).collect(),
        };
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;
    use crate::config::{DeploymentProfile, SloPolicy};
    use crate::Simulation;

    fn config(seed: u64) -> SimulationConfig {
        SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed)
    }

    fn flat_trace(rate: f64, duration: f64) -> LoadTrace {
        let steps = (duration / 60.0).ceil() as usize;
        LoadTrace::new(60.0, vec![rate; steps]).unwrap()
    }

    fn well_provisioned(rate: f64, duration: f64, cfg: SimulationConfig) -> DesSimulation {
        let model = ApplicationModel::paper_benchmark();
        let mut sim = DesSimulation::new(&model, &flat_trace(rate, duration), cfg);
        sim.set_supply(0, ((rate * 0.059 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim.set_supply(1, ((rate * 0.1 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim.set_supply(2, ((rate * 0.04 / 0.6).ceil() as u32).max(2))
            .unwrap();
        sim
    }

    fn conservation(result: &SimulationResult) {
        let sent: u64 = result.sent_per_second.iter().sum();
        assert_eq!(
            sent,
            result.completed + result.in_flight_at_end,
            "sent {} != completed {} + in_flight {}",
            sent,
            result.completed,
            result.in_flight_at_end
        );
    }

    #[test]
    fn pure_des_conserves_requests() {
        let result = well_provisioned(50.0, 300.0, config(1)).run_to_end();
        conservation(&result);
        assert!(result.completed > 10_000);
    }

    #[test]
    fn pure_des_matches_the_fixed_step_engine_bit_exactly() {
        // Without a hybrid config the event core performs the identical
        // sequence of state transitions and random draws as the fixed-step
        // engine on flat deployments — results must be equal, not close.
        let model = ApplicationModel::paper_benchmark();
        let trace = flat_trace(60.0, 600.0);
        let mut des = DesSimulation::new(&model, &trace, config(6));
        let mut fixed = Simulation::new(&model, &trace, config(6));
        for (service, count) in [(0usize, 8u32), (1, 12), (2, 6)] {
            des.set_supply(service, count).unwrap();
            fixed.set_supply(service, count).unwrap();
        }
        des.run_until(200.0).unwrap();
        fixed.run_until(200.0).unwrap();
        des.scale_to(1, 16).unwrap();
        fixed.scale_to(1, 16).unwrap();
        des.scale_to(0, 4).unwrap();
        fixed.scale_to(0, 4).unwrap();
        assert_eq!(des.run_to_end(), fixed.run_to_end());
    }

    #[test]
    fn pure_des_is_deterministic_in_the_seed() {
        let a = well_provisioned(40.0, 300.0, config(7)).run_to_end();
        let b = well_provisioned(40.0, 300.0, config(7)).run_to_end();
        assert_eq!(a, b);
        let c = well_provisioned(40.0, 300.0, config(8)).run_to_end();
        assert_ne!(a.completed, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn hybrid_goes_aggregate_under_heavy_load() {
        // 300 req/s × 0.1 s demand = 30 Erlangs at the bottleneck — far
        // past a 1-Erlang threshold, so every station turns fluid at t = 0
        // and the core goes aggregate immediately.
        let cfg = config(3).with_hybrid(HybridConfig::new(1.0, 0.5, 64));
        let sim = well_provisioned(300.0, 600.0, cfg);
        assert!(sim.is_aggregate());
        assert!(sim.is_fluid(0) && sim.is_fluid(1) && sim.is_fluid(2));
        let events_bound = sim.events_processed();
        let result = sim.run_to_end();
        conservation(&result);
        // 300 req/s × 600 s, generated deterministically by carry rounding.
        let sent: u64 = result.sent_per_second.iter().sum();
        assert_eq!(sent, 180_000);
        assert!(result.completed > 170_000, "completed {}", result.completed);
        assert!(result.satisfied > 0);
        // Aggregate mode processes only ticks and actuations — nowhere
        // near one event per request.
        assert!(events_bound < 1_000);
    }

    #[test]
    fn hybrid_switches_back_when_the_load_falls() {
        // 100 req/s (10 Erlangs at the bottleneck) for 5 min, then nearly
        // silent: the core must enter the aggregate regime and leave it
        // again, conserving every request across both transitions.
        let mut rates = vec![100.0; 5];
        rates.extend_from_slice(&[1.0; 5]);
        let trace = LoadTrace::new(60.0, rates).unwrap();
        let model = ApplicationModel::paper_benchmark();
        let cfg = config(4).with_hybrid(HybridConfig::new(2.0, 0.5, 64));
        let mut sim = DesSimulation::new(&model, &trace, cfg);
        sim.set_supply(0, 12).unwrap();
        sim.set_supply(1, 20).unwrap();
        sim.set_supply(2, 8).unwrap();
        assert!(sim.is_aggregate());
        sim.run_until(trace.duration()).unwrap();
        assert!(!sim.is_aggregate(), "low tail must leave the fluid regime");
        assert!(!sim.is_fluid(0) && !sim.is_fluid(1) && !sim.is_fluid(2));
        assert!(sim.regime_switches() >= 8, "{}", sim.regime_switches());
        let result = sim.finish();
        conservation(&result);
        assert!(result.completed > 25_000, "completed {}", result.completed);
    }

    #[test]
    fn scaling_applies_while_fluid() {
        let cfg = config(5).with_hybrid(HybridConfig::new(1.0, 0.5, 32));
        let mut sim = well_provisioned(200.0, 600.0, cfg);
        assert!(sim.is_aggregate());
        sim.scale_to(0, 40).unwrap();
        assert_eq!(sim.provisioned(0), 40);
        sim.run_until(60.0).unwrap();
        assert_eq!(sim.running(0), 40, "boot applies after the delay");
        sim.scale_to(0, 10).unwrap();
        sim.run_until(120.0).unwrap();
        assert_eq!(sim.running(0), 10, "shutdown applies in the fluid regime");
        sim.scale_vertical(1, 2.0).unwrap();
        sim.run_until(180.0).unwrap();
        assert_eq!(sim.speed(1), 2.0);
        let result = sim.finish();
        conservation(&result);
    }

    #[test]
    fn monitoring_reports_in_every_regime() {
        let cfg = config(9).with_hybrid(HybridConfig::new(1.0, 0.5, 64));
        let mut sim = well_provisioned(150.0, 300.0, cfg);
        sim.run_until(300.0).unwrap();
        assert_eq!(sim.intervals_completed(), 5);
        let stats = sim.interval(0).unwrap();
        // ~9000 arrivals per 60 s window at the entry, deterministic.
        assert_eq!(stats[0].arrivals, 9_000);
        assert!(stats[0].completions > 0);
        assert!(stats[0].utilization > 0.0 && stats[0].utilization <= 1.0);
        assert!(stats[0].mean_response_time.is_some());
        let observed = sim.observe_interval(0).unwrap();
        assert!(observed.iter().all(Option::is_some));
    }

    #[test]
    fn des_core_has_no_pool_and_does_not_fork() {
        let sim = well_provisioned(10.0, 120.0, config(2));
        assert_eq!(sim.vms_running(), None);
        assert_eq!(sim.vms_provisioned(), None);
        assert_eq!(sim.free_slots(), None);
        assert_eq!(sim.waiting_containers(), None);
        assert!(matches!(
            sim.fork_with_fault_plan(FaultPlan::new(1)),
            Err(SimError::CannotFork { .. })
        ));
        let mut sim = sim;
        assert!(matches!(
            sim.scale_vms(4),
            Err(SimError::InvalidConfig {
                field: "vm_pool",
                ..
            })
        ));
        assert!(matches!(
            sim.run_until(f64::NAN),
            Err(SimError::TimeReversed { .. })
        ));
    }

    #[test]
    fn fault_plan_applies_in_both_regimes() {
        let plan = FaultPlan::new(11)
            .crash_instances(Some(1), 60.0, 240.0, 1.0, 2)
            .drop_samples(Some(0), 60.0, 240.0, 1.0);
        let cfg = config(11)
            .with_fault_plan(plan)
            .with_hybrid(HybridConfig::new(1.0, 0.5, 32));
        let mut sim = well_provisioned(200.0, 300.0, cfg);
        sim.run_until(300.0).unwrap();
        let crashes = sim
            .fault_log()
            .iter()
            .filter(|r| matches!(r.kind, FaultKind::InstanceCrash { .. }))
            .count();
        assert!(crashes > 0, "planned crashes must fire while aggregate");
        let observed = sim.observe_interval(2).unwrap();
        assert!(observed[0].is_none(), "dropped sample must be observed");
        let result = sim.finish();
        conservation(&result);
    }
}
