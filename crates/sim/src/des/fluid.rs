//! The analytic M/M/n fluid approximation behind the hybrid regime.
//!
//! A fluid station replaces per-request events with a single mass value
//! `x` — the mean number of requests in the system — advanced by the
//! M/M/n mean-drift ODE:
//!
//! * saturated (`x ≥ n`):   `dx/dt = λ − n·μ` (linear),
//! * unsaturated (`x < n`): `dx/dt = λ − μ·x`, whose solution is
//!   `x(t) = λ/μ + (x₀ − λ/μ)·e^(−μt)`.
//!
//! [`advance`] integrates this *piecewise exactly*: it finds the branch
//! crossing analytically and chains the closed forms, so the step size
//! never affects accuracy — a 60 s monitoring interval is one step, not
//! sixty Euler steps. Completed mass falls out of conservation
//! (`out = λ·dt − Δx`) and the busy-server integral `∫min(x, n)dt` comes
//! from the same closed forms, which is what the utilization statistics
//! are built from.
//!
//! [`SojournLaw`] synthesizes per-request response times from the
//! analytic stationary law: with probability Erlang-C(n, a) the request
//! waits an `Exp(nμ − λ)` time, otherwise zero, plus an `Exp(μ)` service
//! time. Above saturation, where no stationary law exists, the wait is
//! the deterministic backlog drain time `(x − n)/(n·μ)`.

use chamulteon_queueing::erlang::erlang_c;
use rand::rngs::StdRng;
use rand::Rng;

/// Waiting time reported when a station has zero capacity (no servers at
/// all): effectively "never", but finite so downstream accounting stays
/// NaN-free.
const STARVED_WAIT: f64 = 1.0e6;

/// One integrated fluid step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FluidStep {
    /// Mass in the system at the end of the step.
    pub x_end: f64,
    /// Mass that completed service during the step (`λ·dt − Δx`, ≥ 0).
    pub completed: f64,
    /// `∫ min(x, n) dt` over the step — busy-server seconds.
    pub busy_integral: f64,
}

/// Advances the M/M/n mean-drift ODE by `dt` seconds under constant
/// arrival rate `lambda`, `servers` servers and per-server rate `mu`,
/// chaining the closed forms of the two branches across the `x = n`
/// crossing. Degenerate inputs (non-finite or non-positive `dt`/`mu`)
/// return a zero step.
pub(crate) fn advance(x0: f64, lambda: f64, servers: u32, mu: f64, dt: f64) -> FluidStep {
    let mut x = x0.max(0.0);
    if !(dt > 0.0) || !dt.is_finite() || !(mu > 0.0) || !mu.is_finite() {
        return FluidStep {
            x_end: x,
            completed: 0.0,
            busy_integral: 0.0,
        };
    }
    let lambda = lambda.max(0.0);
    let n = f64::from(servers);
    let mut remaining = dt;
    let mut busy_integral = 0.0;
    // At most one branch crossing per direction; 4 bounds float jitter.
    for _ in 0..4 {
        if !(remaining > 0.0) {
            break;
        }
        if servers == 0 {
            // No capacity: pure accumulation.
            x += lambda * remaining;
            break;
        }
        if x >= n {
            // Saturated: linear drift, all n servers busy.
            let slope = lambda - n * mu;
            if slope >= 0.0 {
                busy_integral += n * remaining;
                x += slope * remaining;
                remaining = 0.0;
            } else {
                let t_cross = (x - n) / -slope;
                if t_cross >= remaining {
                    busy_integral += n * remaining;
                    x += slope * remaining;
                    remaining = 0.0;
                } else {
                    busy_integral += n * t_cross;
                    remaining -= t_cross;
                    // Nudge below n so the next iteration takes the
                    // unsaturated branch.
                    x = n - f64::EPSILON * n.max(1.0);
                }
            }
        } else {
            // Unsaturated: exponential relaxation toward λ/μ.
            let x_inf = lambda / mu;
            if x_inf <= n {
                let decay = (-mu * remaining).exp();
                let x1 = x_inf + (x - x_inf) * decay;
                busy_integral += x_inf * remaining + (x - x_inf) * (1.0 - decay) / mu;
                x = x1;
                remaining = 0.0;
            } else {
                // Rising past n: find the crossing time analytically.
                let ratio = (n - x_inf) / (x - x_inf);
                let t_cross = if ratio > 0.0 && ratio < 1.0 {
                    -ratio.ln() / mu
                } else {
                    0.0
                };
                if t_cross >= remaining {
                    let decay = (-mu * remaining).exp();
                    busy_integral += x_inf * remaining + (x - x_inf) * (1.0 - decay) / mu;
                    x = x_inf + (x - x_inf) * decay;
                    remaining = 0.0;
                } else {
                    let decay = (-mu * t_cross).exp();
                    busy_integral += x_inf * t_cross + (x - x_inf) * (1.0 - decay) / mu;
                    x = n;
                    remaining -= t_cross;
                }
            }
        }
    }
    let completed = (lambda * dt - (x - x0.max(0.0))).max(0.0);
    FluidStep {
        x_end: x,
        completed,
        busy_integral,
    }
}

/// The precomputed stationary law of a fluid M/M/n station: everything
/// about the sojourn distribution that does not depend on the RNG or the
/// instantaneous mass. Building one costs an Erlang-C evaluation — an
/// O(servers) recurrence, ~10⁵ steps at production scale — so callers
/// that synthesize many sojourns under the same `(λ, n, μ)` build the
/// law once and [`sample`](SojournLaw::sample) from it; sampling is O(1).
///
/// Each variant burns exactly the draws the corresponding branch of the
/// original inline sampler burned, so the synthesis RNG stream stays
/// bit-identical regardless of which branch a sample takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SojournLaw {
    /// Per-server rate was non-finite or non-positive: no draws, the
    /// starved sentinel wait.
    Starved,
    /// Zero servers: one burnt draw, the starved sentinel wait.
    NoServers,
    /// Stable stationary law: wait `Exp(n·μ − λ)` with probability
    /// Erlang-C `c`, else zero, plus an `Exp(μ)` service time.
    Stationary {
        /// Per-server service rate μ.
        mu: f64,
        /// Erlang-C waiting probability.
        c: f64,
        /// Conditional-wait drain rate `n·μ − λ`.
        drain: f64,
    },
    /// Saturated (or Erlang-C rejected the inputs): the wait is the
    /// deterministic backlog drain time `(x − n)/(n·μ)`.
    Saturated {
        /// Per-server service rate μ.
        mu: f64,
        /// Server count n.
        n: f64,
    },
}

impl SojournLaw {
    /// Builds the law for arrival rate `lambda`, `servers` servers and
    /// per-server rate `mu`. This is the expensive step (Erlang-C).
    pub(crate) fn new(lambda: f64, servers: u32, mu: f64) -> Self {
        if !(mu > 0.0) || !mu.is_finite() {
            return SojournLaw::Starved;
        }
        if servers == 0 {
            return SojournLaw::NoServers;
        }
        let n = f64::from(servers);
        let lambda = lambda.max(0.0);
        let a = lambda / mu;
        // Stable region with a small guard band: use the stationary law.
        if a < n * 0.999 {
            if let Ok(c) = erlang_c(servers, a) {
                return SojournLaw::Stationary {
                    mu,
                    c,
                    drain: n * mu - lambda,
                };
            }
        }
        SojournLaw::Saturated { mu, n }
    }

    /// Draws one analytic sojourn (wait + service); `x` is the current
    /// mass, used for the backlog drain time above saturation.
    /// Deterministic in the RNG state.
    pub(crate) fn sample(&self, x: f64, rng: &mut StdRng) -> f64 {
        match *self {
            SojournLaw::Starved => STARVED_WAIT,
            SojournLaw::NoServers => {
                // Burn one draw so the stream stays aligned across
                // branches.
                let _: f64 = rng.gen();
                STARVED_WAIT
            }
            SojournLaw::Stationary { mu, c, drain } => {
                let service = exp_draw(rng, 1.0 / mu);
                let u: f64 = rng.gen();
                let wait = if u < c {
                    exp_draw(rng, 1.0 / drain)
                } else {
                    // Burn the draw the waiting branch would have used.
                    let _: f64 = rng.gen();
                    0.0
                };
                wait + service
            }
            SojournLaw::Saturated { mu, n } => {
                let service = exp_draw(rng, 1.0 / mu);
                let backlog = (x - n).max(0.0);
                let _: f64 = rng.gen();
                let _: f64 = rng.gen();
                backlog / (n * mu) + service
            }
        }
    }
}

/// Draws one analytic sojourn (wait + service) at a fluid M/M/n station
/// with arrival rate `lambda`, `servers` servers, per-server rate `mu`
/// and current mass `x` (used for the backlog drain time above
/// saturation). Deterministic in the RNG state. One-shot convenience
/// over [`SojournLaw`] — pays the Erlang-C cost on every call, so hot
/// paths cache the law instead.
#[cfg(test)]
pub(crate) fn sample_sojourn(lambda: f64, servers: u32, mu: f64, x: f64, rng: &mut StdRng) -> f64 {
    SojournLaw::new(lambda, servers, mu).sample(x, rng)
}

/// One exponential draw with the given mean, via inverse transform
/// (`1 − U ∈ (0, 1]` avoids `ln(0)`).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

/// Carry-rounding accumulator turning a stream of fractional amounts into
/// a stream of integer counts whose running sum never drifts from the
/// running sum of the inputs by more than one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Carry(f64);

impl Carry {
    /// Adds `amount` (clamped to ≥ 0, NaN treated as 0) and returns the
    /// whole units accumulated so far, keeping the fractional remainder.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub(crate) fn take(&mut self, amount: f64) -> u64 {
        let amount = if amount.is_finite() {
            amount.max(0.0)
        } else {
            0.0
        };
        self.0 += amount;
        let whole = self.0.floor();
        self.0 -= whole;
        if whole >= 1.8446744073709552e19 {
            u64::MAX
        } else {
            whole as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conservation_of_mass() {
        // out = λ·dt − Δx exactly, whatever the branch structure.
        for &(x0, lambda, n, mu, dt) in &[
            (0.0, 50.0, 10u32, 10.0, 60.0),
            (25.0, 50.0, 10, 10.0, 60.0),
            (5.0, 500.0, 10, 10.0, 2.0),
            (100.0, 1.0, 10, 10.0, 30.0),
            (0.0, 0.0, 3, 5.0, 10.0),
        ] {
            let step = advance(x0, lambda, n, mu, dt);
            let balance = lambda * dt - (step.x_end - x0);
            assert!(
                (step.completed - balance).abs() < 1e-6,
                "x0={x0} λ={lambda} n={n}: completed {} vs balance {balance}",
                step.completed
            );
            assert!(step.busy_integral >= -1e-9);
            assert!(step.busy_integral <= f64::from(n) * dt + 1e-6);
        }
    }

    #[test]
    fn relaxes_to_the_stationary_mean() {
        // Stable M/M/n drift settles at x = λ/μ.
        let step = advance(0.0, 40.0, 10, 8.0, 1000.0);
        assert!((step.x_end - 5.0).abs() < 1e-9, "x_end {}", step.x_end);
    }

    #[test]
    fn saturated_queue_grows_linearly() {
        // λ = 100, capacity n·μ = 50: backlog grows at 50/s.
        let step = advance(10.0, 100.0, 10, 5.0, 10.0);
        assert!((step.x_end - 510.0).abs() < 1e-9, "x_end {}", step.x_end);
        assert!((step.busy_integral - 100.0).abs() < 1e-9);
        assert!((step.completed - 500.0).abs() < 1e-6);
    }

    #[test]
    fn drains_across_the_branch_crossing() {
        // Start saturated with λ = 0: drains at n·μ until x = n, then
        // exponentially. Mass must keep falling and stay non-negative.
        let step = advance(50.0, 0.0, 10, 2.0, 100.0);
        assert!(
            step.x_end >= 0.0 && step.x_end < 1e-3,
            "x_end {}",
            step.x_end
        );
        assert!((step.completed - (50.0 - step.x_end)).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_are_inert() {
        let step = advance(3.0, 10.0, 2, 0.0, 60.0);
        assert_eq!(step.x_end, 3.0);
        assert_eq!(step.completed, 0.0);
        let step = advance(3.0, 10.0, 2, 5.0, f64::NAN);
        assert_eq!(step.x_end, 3.0);
        let step = advance(-7.0, 0.0, 2, 5.0, 1.0);
        assert!(step.x_end >= 0.0, "negative mass clamped");
    }

    #[test]
    fn zero_servers_accumulate() {
        let step = advance(0.0, 10.0, 0, 5.0, 3.0);
        assert!((step.x_end - 30.0).abs() < 1e-9);
        assert_eq!(step.busy_integral, 0.0);
    }

    #[test]
    fn sojourn_sampling_matches_the_analytic_mean() {
        use chamulteon_queueing::MmnQueue;
        let (lambda, demand, servers) = (50.0, 0.1, 7u32);
        let mu = 1.0 / demand;
        let analytic = MmnQueue::new(lambda, demand, servers)
            .unwrap()
            .mean_response_time()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 200_000;
        let mean: f64 = (0..samples)
            .map(|_| sample_sojourn(lambda, servers, mu, 5.0, &mut rng))
            .sum::<f64>()
            / f64::from(samples);
        assert!(
            (mean - analytic).abs() < 0.01 * analytic.max(0.01),
            "sampled {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn saturated_sojourn_uses_the_backlog() {
        // n·μ = 10, backlog = 90 above n: drain time 9 s dominates.
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_sojourn(100.0, 5, 2.0, 95.0, &mut rng);
        assert!(s >= 9.0, "sojourn {s}");
        // Zero capacity reports the starved sentinel.
        let s = sample_sojourn(10.0, 0, 2.0, 5.0, &mut rng);
        assert!(s >= STARVED_WAIT);
    }

    #[test]
    fn carry_rounding_never_drifts() {
        let mut carry = Carry::default();
        let mut total_int = 0u64;
        let mut total_f = 0.0;
        for i in 0..10_000 {
            let amount = 0.37 + f64::from(i % 7) * 0.11;
            total_f += amount;
            total_int += carry.take(amount);
        }
        assert!((total_f - total_int as f64).abs() <= 1.0 + 1e-6);
        // NaN and negative amounts are inert.
        let before = carry;
        assert_eq!(carry.take(f64::NAN), 0);
        assert_eq!(carry.take(-5.0), 0);
        assert_eq!(carry, before);
    }
}
