//! The event-driven simulation core with a hybrid fluid regime.
//!
//! This module is the second simulation core of the crate, next to the
//! fixed-surface [`crate::Simulation`]. It exposes the *same* observable
//! surface — [`crate::ObservedSample`], [`crate::SimulationResult`],
//! [`crate::FaultPlan`] — so the bench drivers, the degradation ladder and
//! the robustness grid run unmodified on either core, but it is built for
//! offered loads three orders of magnitude past what per-request
//! simulation can sustain:
//!
//! * [`event`] — a binary heap of timestamped, *cancellable* events with a
//!   monotonically increasing sequence number breaking equal-time ties, so
//!   the event order (and therefore every random draw) is stable in the
//!   seed alone.
//! * [`station`] — per-service FIFO/M/M/n stations that run in one of two
//!   regimes: *discrete* (every request is an entity generating
//!   arrival/completion events) or *fluid* (the queue is an analytic
//!   M/M/n approximation: mean-drift mass updates plus Erlang-C tail
//!   synthesis from `chamulteon-queueing`).
//! * [`fluid`] — the piecewise-exact mean-drift integrator and the
//!   analytic sojourn sampler behind the fluid regime.
//! * [`engine`] — [`DesSimulation`], the core itself, including the
//!   hysteretic hybrid switch ([`crate::HybridConfig`]) that moves a
//!   station between the regimes as its offered load crosses the
//!   threshold, conserving in-flight requests bit-exactly across every
//!   transition (`sent == completed + in_flight` is an integer identity
//!   at all times).
//!
//! See DESIGN.md §15 for the event taxonomy, the cancellation mechanism,
//! the switch criterion and the conservation argument.

pub(crate) mod event;
pub(crate) mod fluid;
pub(crate) mod station;

mod engine;

pub use engine::DesSimulation;
