//! The cancellable future-event list of the event-driven core.
//!
//! A binary heap of timestamped events, ordered earliest-first with a
//! monotonically increasing sequence number breaking equal-time ties —
//! two events at the same instant always fire in scheduling order, so a
//! run is deterministic in its seed alone. Every `schedule` returns an
//! [`EventId`] that can later be cancelled in O(log n): cancellation
//! tombstones the sequence number and the heap discards the entry when it
//! surfaces. This is the primitive the hybrid switch builds on — turning
//! a station fluid cancels the completion events of every request it
//! absorbs.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// What happens when an event fires. The taxonomy mirrors the fixed-step
/// engine's, minus the nested VM pool (the event core simulates flat
/// deployments) and plus [`StageDone`](DesEventKind::StageDone), the
/// fluid-regime counterpart of a completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DesEventKind {
    /// A request finishes service at a *discrete* station.
    Completion {
        /// Service index.
        service: usize,
        /// Request slab slot.
        request: usize,
    },
    /// A request's analytically sampled sojourn at a *fluid* station ends.
    StageDone {
        /// Service index.
        service: usize,
        /// Request slab slot.
        request: usize,
    },
    /// One provisioned instance becomes ready.
    Boot {
        /// Service index.
        service: usize,
    },
    /// A scale-down takes effect for `count` instances.
    Shutdown {
        /// Service index.
        service: usize,
        /// Instances to remove.
        count: u32,
    },
    /// A vertical resize takes effect.
    Resize {
        /// Service index.
        service: usize,
        /// New speed factor.
        speed: f64,
    },
    /// Monitoring interval boundary.
    MonitorTick,
    /// An injected fault kills `count` running instances.
    Crash {
        /// Service index.
        service: usize,
        /// Instances to kill.
        count: u32,
    },
}

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventId(u64);

/// One heap entry. Ordering is by time, then sequence number, both
/// reversed because `BinaryHeap` is a max-heap and we pop earliest-first.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    time: f64,
    seq: u64,
    kind: DesEventKind,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future-event list: a binary heap with tombstone cancellation.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    /// Sequence numbers of cancelled events still in the heap; entries are
    /// discarded (and their tombstones reclaimed) as they surface.
    cancelled: BTreeSet<u64>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `time` and returns its cancellation handle.
    /// Equal-time events fire in the order they were scheduled.
    pub(crate) fn schedule(&mut self, time: f64, kind: DesEventKind) -> EventId {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.heap.push(Entry { time, seq, kind });
        EventId(seq)
    }

    /// Cancels a scheduled event. Returns `false` when the event already
    /// fired or was already cancelled; cancelling it a second time has no
    /// effect.
    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        if id.0 == 0 || id.0 > self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// The firing time of the earliest live (non-cancelled) event, purging
    /// cancelled entries that surface on the way.
    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        self.purge();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest live event.
    pub(crate) fn pop(&mut self) -> Option<(f64, DesEventKind)> {
        self.purge();
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Number of live events still scheduled. Saturating: a tombstone for
    /// an event that had already fired never meets its heap entry.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn purge(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, DesEventKind::MonitorTick);
        q.schedule(1.0, DesEventKind::Boot { service: 0 });
        q.schedule(2.0, DesEventKind::Boot { service: 1 });
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for service in 0..100 {
            q.schedule(5.0, DesEventKind::Boot { service });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                DesEventKind::Boot { service } => service,
                _ => usize::MAX,
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_tombstones_and_reclaims() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, DesEventKind::Boot { service: 0 });
        let b = q.schedule(2.0, DesEventKind::Boot { service: 1 });
        let c = q.schedule(3.0, DesEventKind::Boot { service: 2 });
        assert_eq!(q.live(), 3);
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.live(), 2);
        // Peeking past a cancelled head purges it.
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.pop(), Some((3.0, DesEventKind::Boot { service: 2 })));
        assert_eq!(q.pop(), None);
        // A fired event can no longer be cancelled.
        assert!(!q.cancel(c) || q.live() == 0);
        // Out-of-range handles are rejected.
        assert!(!q.cancel(EventId(999)));
        assert!(!q.cancel(EventId(0)));
    }

    #[test]
    fn nan_times_do_not_poison_the_order() {
        // total_cmp gives NaN a fixed position instead of breaking the
        // heap invariant; the queue stays usable.
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, DesEventKind::MonitorTick);
        q.schedule(1.0, DesEventKind::Boot { service: 0 });
        q.schedule(2.0, DesEventKind::Boot { service: 1 });
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 3);
    }
}
