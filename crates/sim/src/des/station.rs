//! Per-service station state of the event-driven core.

use std::collections::VecDeque;

use super::fluid::Carry;

/// Which regime a station currently runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Regime {
    /// Every request is an entity: arrivals queue FCFS, completions are
    /// per-request events — exact M/M/n sample paths.
    Discrete,
    /// The queue is an analytic M/M/n approximation: mass drifts by the
    /// fluid ODE and response times are synthesized from the stationary
    /// law (see [`super::fluid`]).
    Fluid,
}

/// Runtime state of one service station. The capacity/actuation fields
/// mirror the fixed-step engine's `ServiceState` exactly; the fluid
/// fields only carry meaning while `regime == Fluid`.
#[derive(Debug, Clone)]
pub(crate) struct Station {
    /// Ready (booted) instances.
    pub running: u32,
    /// Instances currently serving a request (≤ running; 0 while fluid).
    pub busy: u32,
    /// Boot events in flight.
    pub pending_boots: u32,
    /// Boot events cancelled by a later scale-down.
    pub cancelled_boots: u32,
    /// Busy instances draining their request before removal.
    pub retiring: u32,
    /// Desired instance count from the last scaling command.
    pub target: u32,
    /// Vertical speed factor (1.0 = nominal).
    pub speed: f64,
    /// FCFS queue of waiting request slots (empty while fluid).
    pub queue: VecDeque<usize>,
    /// Current regime.
    pub regime: Regime,
    /// Fluid mass: requests in the system, in fluid units. While
    /// discrete this is stale and unused.
    pub mass: f64,
    /// Carry accumulator for fluid-mode arrival counts.
    pub arrival_carry: Carry,
    /// Carry accumulator for fluid-mode completion counts.
    pub completion_carry: Carry,
    // Utilization integration.
    pub last_touch: f64,
    pub busy_integral: f64,
    pub capacity_integral: f64,
    // Interval counters.
    pub interval_arrivals: u64,
    pub interval_completions: u64,
    pub interval_response_sum: f64,
    pub interval_response_count: u64,
}

impl Station {
    /// A fresh discrete station with `initial` running instances.
    pub(crate) fn new(initial: u32) -> Self {
        Station {
            running: initial,
            busy: 0,
            pending_boots: 0,
            cancelled_boots: 0,
            retiring: 0,
            target: initial,
            speed: 1.0,
            queue: VecDeque::new(),
            regime: Regime::Discrete,
            mass: 0.0,
            arrival_carry: Carry::default(),
            completion_carry: Carry::default(),
            last_touch: 0.0,
            busy_integral: 0.0,
            capacity_integral: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_response_sum: 0.0,
            interval_response_count: 0,
        }
    }

    /// Integrates busy/capacity time up to `now` before a state change.
    /// While fluid, the flow integrator owns both integrals, so this only
    /// advances the clock.
    pub(crate) fn touch(&mut self, now: f64) {
        let dt = now - self.last_touch;
        if dt > 0.0 {
            if self.regime == Regime::Discrete {
                self.busy_integral += f64::from(self.busy) * dt;
                self.capacity_integral += f64::from(self.running) * dt;
            }
            self.last_touch = now;
        }
    }

    /// All instances this station will have once pending boots finish.
    pub(crate) fn provisioned(&self) -> u32 {
        self.running + self.pending_boots - self.cancelled_boots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_integrates_only_while_discrete() {
        let mut st = Station::new(4);
        st.busy = 2;
        st.touch(10.0);
        assert_eq!(st.busy_integral, 20.0);
        assert_eq!(st.capacity_integral, 40.0);
        st.regime = Regime::Fluid;
        st.touch(20.0);
        assert_eq!(st.busy_integral, 20.0, "fluid touch only moves the clock");
        assert_eq!(st.last_touch, 20.0);
    }

    #[test]
    fn provisioned_counts_pending_boots() {
        let mut st = Station::new(3);
        st.pending_boots = 4;
        st.cancelled_boots = 1;
        assert_eq!(st.provisioned(), 6);
    }
}
