//! Nested resource layers: containers inside a shared VM pool.
//!
//! The paper's future work (§VI) names "auto-scaling on nested resource
//! layers, for instance, the possibility of adding a new VM or adding a
//! new container in an existing VM" as "a new challenge on its own". The
//! challenge is exactly the interaction this module models: a container
//! boots in seconds **only if a VM has a free slot**; otherwise it must
//! wait for a VM boot measured in minutes. A controller that plans the VM
//! pool ahead keeps container provisioning fast; one that scales VMs
//! reactively sees its container scale-ups stall at the worst moments.

/// Configuration of the shared VM pool underneath the containers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmPoolConfig {
    /// Containers that fit in one VM.
    pub slots_per_vm: u32,
    /// Seconds from a VM scale-up command until its slots are usable.
    pub vm_boot_delay: f64,
    /// VMs running at simulation start.
    pub initial_vms: u32,
}

impl VmPoolConfig {
    /// Creates a validated pool config; degenerate values are clamped
    /// (at least 1 slot per VM, non-negative delay, at least 1 initial VM).
    pub fn new(slots_per_vm: u32, vm_boot_delay: f64, initial_vms: u32) -> Self {
        VmPoolConfig {
            slots_per_vm: slots_per_vm.max(1),
            vm_boot_delay: if vm_boot_delay.is_finite() {
                vm_boot_delay.max(0.0)
            } else {
                120.0
            },
            initial_vms: initial_vms.max(1),
        }
    }
}

/// Runtime state of the VM pool (internal to the engine, exposed read-only
/// through `Simulation` accessors).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VmPoolState {
    pub(crate) config: VmPoolConfig,
    /// VMs whose slots are usable now.
    pub(crate) running: u32,
    /// VM boots in flight.
    pub(crate) pending: u32,
    /// Pending VM boots cancelled by a later scale-down.
    pub(crate) cancelled: u32,
    /// Container slots currently held (running + booting containers).
    pub(crate) slots_in_use: u32,
    /// Containers waiting for a free slot, FIFO, by service index.
    pub(crate) waiting: std::collections::VecDeque<usize>,
}

impl VmPoolState {
    pub(crate) fn new(config: VmPoolConfig) -> Self {
        VmPoolState {
            config,
            running: config.initial_vms,
            pending: 0,
            cancelled: 0,
            slots_in_use: 0,
            waiting: std::collections::VecDeque::new(),
        }
    }

    /// Usable slots right now.
    pub(crate) fn free_slots(&self) -> u32 {
        (self.running * self.config.slots_per_vm).saturating_sub(self.slots_in_use)
    }

    /// VMs the pool will have once pending boots finish.
    pub(crate) fn provisioned_vms(&self) -> u32 {
        self.running + self.pending - self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_degenerate_values() {
        let c = VmPoolConfig::new(0, -5.0, 0);
        assert_eq!(c.slots_per_vm, 1);
        assert_eq!(c.vm_boot_delay, 0.0);
        assert_eq!(c.initial_vms, 1);
        let c = VmPoolConfig::new(8, f64::NAN, 2);
        assert_eq!(c.vm_boot_delay, 120.0);
    }

    #[test]
    fn free_slots_accounting() {
        let mut s = VmPoolState::new(VmPoolConfig::new(4, 60.0, 2));
        assert_eq!(s.free_slots(), 8);
        s.slots_in_use = 5;
        assert_eq!(s.free_slots(), 3);
        s.slots_in_use = 10; // over-committed never underflows
        assert_eq!(s.free_slots(), 0);
    }

    #[test]
    fn provisioned_counts_pending_minus_cancelled() {
        let mut s = VmPoolState::new(VmPoolConfig::new(4, 60.0, 2));
        s.pending = 3;
        s.cancelled = 1;
        assert_eq!(s.provisioned_vms(), 4);
    }
}
