//! Property-based tests for the discrete-event simulator.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_workload::LoadTrace;
use proptest::prelude::*;

fn simulation(rates: &[f64], seed: u64) -> Simulation {
    let model = ApplicationModel::paper_benchmark();
    let trace = LoadTrace::new(30.0, rates.to_vec()).unwrap();
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed)
        .with_monitoring_interval(30.0);
    Simulation::new(&model, &trace, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: injected = completed + in flight, under arbitrary
    /// load profiles and arbitrary interleaved scaling actions.
    #[test]
    fn conservation_under_random_scaling(
        rates in prop::collection::vec(0.0f64..150.0, 2..8),
        actions in prop::collection::vec((0usize..3, 1u32..40), 0..12),
        seed in 0u64..1000,
    ) {
        let mut sim = simulation(&rates, seed);
        let duration = sim.duration();
        // Spread the scaling actions over the run.
        let slots = actions.len().max(1) as f64;
        for (i, (service, target)) in actions.iter().enumerate() {
            sim.run_until(duration * (i as f64 + 1.0) / (slots + 1.0)).unwrap();
            sim.scale_to(*service, *target).unwrap();
        }
        let result = sim.run_to_end();
        let sent: u64 = result.sent_per_second.iter().sum();
        prop_assert_eq!(sent, result.completed + result.in_flight_at_end);
        prop_assert_eq!(result.completed, result.satisfied + result.tolerating
            + (result.completed - result.satisfied - result.tolerating));
        prop_assert!(result.satisfied + result.tolerating <= result.completed);
    }

    /// Supply timelines never violate the model bounds and never change
    /// retroactively (times strictly increase... weakly, with distinct
    /// values).
    #[test]
    fn supply_timeline_well_formed(
        rates in prop::collection::vec(0.0f64..100.0, 2..6),
        actions in prop::collection::vec((0usize..3, 0u32..250), 1..10),
        seed in 0u64..500,
    ) {
        let mut sim = simulation(&rates, seed);
        let duration = sim.duration();
        for (i, (service, target)) in actions.iter().enumerate() {
            sim.run_until(duration * (i as f64 + 1.0) / (actions.len() as f64 + 1.0)).unwrap();
            sim.scale_to(*service, *target).unwrap();
        }
        let result = sim.run_to_end();
        for timeline in &result.supply {
            for w in timeline.windows(2) {
                prop_assert!(w[0].time <= w[1].time);
                prop_assert!(w[0].running != w[1].running || w[0].time < w[1].time);
            }
            for c in timeline {
                prop_assert!(c.running >= 1);
                prop_assert!(c.running <= 200);
            }
        }
    }

    /// Monitoring statistics are internally consistent: utilization in
    /// [0, 1], per-interval completions consistent with totals.
    #[test]
    fn interval_stats_consistent(
        rates in prop::collection::vec(0.0f64..120.0, 2..6),
        supply in 1u32..30,
        seed in 0u64..500,
    ) {
        let mut sim = simulation(&rates, seed);
        for s in 0..3 {
            sim.set_supply(s, supply).unwrap();
        }
        sim.run_until(sim.duration()).unwrap();
        let intervals = sim.intervals_completed();
        let mut total_completions = 0u64;
        for k in 0..intervals {
            let stats = sim.interval(k).unwrap();
            for s in &stats {
                prop_assert!((0.0..=1.0).contains(&s.utilization));
                if let Some(rt) = s.mean_response_time {
                    prop_assert!(rt > 0.0);
                }
            }
            total_completions += stats[2].completions; // last tier
        }
        let result = sim.finish();
        // The last tier's completions are exactly the finished requests
        // (within the monitored horizon).
        prop_assert!(total_completions <= result.completed + result.in_flight_at_end);
    }

    /// Determinism: identical seeds and action sequences give identical
    /// results.
    #[test]
    fn determinism_under_actions(
        rates in prop::collection::vec(0.0f64..100.0, 2..5),
        actions in prop::collection::vec((0usize..3, 1u32..40), 0..6),
        seed in 0u64..200,
    ) {
        let run = |seed| {
            let mut sim = simulation(&rates, seed);
            let duration = sim.duration();
            for (i, (service, target)) in actions.iter().enumerate() {
                sim.run_until(duration * (i as f64 + 1.0) / (actions.len() as f64 + 1.0)).unwrap();
                sim.scale_to(*service, *target).unwrap();
            }
            sim.run_to_end()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
