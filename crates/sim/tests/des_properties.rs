//! Property-based tests for the event-driven simulation core.
//!
//! Three families, matching the hybrid core's contract:
//!
//! 1. **Engine equivalence** — in pure-DES mode the event core is not
//!    approximately right, it is *bit-exact* with the fixed-step engine
//!    under arbitrary traces, seeds and interleaved scaling actions.
//! 2. **Hybrid accuracy** — with the switch threshold in play (including
//!    loads that ping-pong across it), the hybrid run's aggregate
//!    statistics stay inside generous statistical bands of the pure-DES
//!    run, and conservation holds exactly in both.
//! 3. **Determinism** — the same seed and the same `FaultPlan` produce a
//!    byte-identical `SimulationResult`, run after run, in every regime.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_perfmodel::{ApplicationModel, ApplicationModelBuilder};
use chamulteon_queueing::MmnQueue;
use chamulteon_sim::{
    DeploymentProfile, DesSimulation, FaultPlan, HybridConfig, Simulation, SimulationConfig,
    SimulationResult, SloPolicy,
};
use chamulteon_workload::LoadTrace;
use proptest::prelude::*;

fn config(seed: u64) -> SimulationConfig {
    SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed)
        .with_monitoring_interval(30.0)
}

/// Paper benchmark, generous static supply so every load in the test
/// ranges is stable.
fn provisioned_des(rates: &[f64], seed: u64, hybrid: Option<HybridConfig>) -> DesSimulation {
    let model = ApplicationModel::paper_benchmark();
    let trace = LoadTrace::new(30.0, rates.to_vec()).unwrap();
    let mut cfg = config(seed);
    if let Some(h) = hybrid {
        cfg = cfg.with_hybrid(h);
    }
    let mut sim = DesSimulation::new(&model, &trace, cfg);
    let peak = rates.iter().cloned().fold(1.0_f64, f64::max);
    for (s, demand) in [0.059, 0.1, 0.04].iter().enumerate() {
        let supply = (peak * demand * 1.6).ceil() as u32 + 2;
        sim.set_supply(s, supply).unwrap();
    }
    sim
}

fn conservation(result: &SimulationResult) -> (u64, u64) {
    let sent: u64 = result.sent_per_second.iter().sum();
    (sent, result.completed + result.in_flight_at_end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pure-DES mode reproduces the fixed-step engine bit-exactly:
    /// identical traces, seeds and interleaved scaling commands yield an
    /// identical `SimulationResult`, field for field.
    #[test]
    fn pure_des_is_bit_exact_with_the_fixed_step_engine(
        rates in prop::collection::vec(0.0f64..120.0, 2..7),
        actions in prop::collection::vec((0usize..3, 1u32..40), 0..8),
        seed in 0u64..1000,
    ) {
        let model = ApplicationModel::paper_benchmark();
        let trace = LoadTrace::new(30.0, rates.clone()).unwrap();
        let mut fixed = Simulation::new(&model, &trace, config(seed));
        let mut des = DesSimulation::new(&model, &trace, config(seed));
        for s in 0..3 {
            fixed.set_supply(s, 12).unwrap();
            des.set_supply(s, 12).unwrap();
        }
        let duration = des.duration();
        let slots = actions.len().max(1) as f64;
        for (i, (service, target)) in actions.iter().enumerate() {
            let t = duration * (i as f64 + 1.0) / (slots + 1.0);
            fixed.run_until(t).unwrap();
            des.run_until(t).unwrap();
            fixed.scale_to(*service, *target).unwrap();
            des.scale_to(*service, *target).unwrap();
        }
        let a = fixed.run_to_end();
        let b = des.run_to_end();
        prop_assert_eq!(a, b);
    }

    /// At paper-scale load the DES station statistics track the analytic
    /// M/M/n law (the independent referee the conformance suite also
    /// uses): the measured mean sojourn of a single-service application
    /// stays inside a generous confidence band of the Erlang-C mean
    /// response time.
    #[test]
    fn des_sojourns_track_the_analytic_station_law(
        rate in 40.0f64..120.0,
        seed in 0u64..1000,
    ) {
        let demand = 0.059;
        let servers = ((rate * demand / 0.7).ceil() as u32).max(2);
        let model = ApplicationModelBuilder::new()
            .service("station", demand, 1, 64, servers)
            .entry("station")
            .build()
            .unwrap();
        let trace = LoadTrace::new(400.0, vec![rate]).unwrap();
        let sim = DesSimulation::new(&model, &trace, config(seed));
        let result = sim.run_to_end();
        let (sent, accounted) = conservation(&result);
        prop_assert_eq!(sent, accounted);
        prop_assert!(result.completed > 0);
        let analytic = MmnQueue::new(rate, demand, servers)
            .unwrap()
            .mean_response_time()
            .unwrap();
        let measured = result.mean_response_time();
        let tolerance = 0.004 + 0.2 * analytic;
        prop_assert!(
            (measured - analytic).abs() <= tolerance,
            "λ={} n={}: measured {} vs analytic {} ± {}",
            rate, servers, measured, analytic, tolerance
        );
    }

    /// Hybrid runs agree with pure-DES runs within statistical bands when
    /// the load ping-pongs across the switch threshold, and the
    /// hysteresis actually produces regime switches without melting the
    /// run into one regime forever.
    #[test]
    fn hybrid_matches_pure_des_across_the_threshold(
        low in 20.0f64..60.0,
        ratio in 2.5f64..5.0,
        seed in 0u64..1000,
    ) {
        let high = low * ratio;
        // Two full low/high oscillations, 4 segments each.
        let mut rates = Vec::new();
        for _ in 0..2 {
            rates.extend_from_slice(&[low; 4]);
            rates.extend_from_slice(&[high; 4]);
        }
        // Threshold between the low and high offered loads of the
        // bottleneck service (demand 0.1, visit ratio 1), so the load
        // crosses it in both directions; the down-switch threshold is
        // placed just above the low phase's offered load (otherwise a
        // single up-switch would stick, by design of the hysteresis).
        let threshold = (low * 0.1 + high * 0.1) / 2.0;
        let hysteresis = (0.11 * low / threshold).min(0.95);
        let hybrid = HybridConfig::new(threshold, hysteresis, 128);

        let pure = provisioned_des(&rates, seed, None).run_to_end();
        let mut sim = provisioned_des(&rates, seed, Some(hybrid));
        let duration = sim.duration();
        sim.run_until(duration).unwrap();
        let switches = sim.regime_switches();
        let result = sim.finish();

        let (ps, pa) = conservation(&pure);
        prop_assert_eq!(ps, pa);
        let (hs, ha) = conservation(&result);
        prop_assert_eq!(hs, ha);

        // The load crosses the threshold 4 times; at least one service
        // must have switched regimes, and the hysteresis bounds the
        // ping-pong (≤ one flip per service per monitoring tick is the
        // hard ceiling; in practice far fewer).
        prop_assert!(switches >= 2, "no regime switches at threshold {}", threshold);
        let ticks = (duration / 30.0).ceil() as u64 + 2;
        prop_assert!(switches <= 4 * ticks, "{} switches in {} ticks", switches, ticks);

        // Aggregate statistics agree within generous stochastic bands.
        let total = ps.max(1) as f64;
        let diff = (ps as f64 - hs as f64).abs();
        prop_assert!(diff / total < 0.05, "sent: pure {} vs hybrid {}", ps, hs);
        let completed_diff = (pure.completed as f64 - result.completed as f64).abs();
        prop_assert!(
            completed_diff / (pure.completed.max(1) as f64) < 0.08,
            "completed: pure {} vs hybrid {}",
            pure.completed, result.completed
        );
        let rt_pure = pure.mean_response_time();
        let rt_hybrid = result.mean_response_time();
        prop_assert!(
            (rt_pure - rt_hybrid).abs() <= 0.01 + 0.35 * rt_pure.max(rt_hybrid),
            "response: pure {} vs hybrid {}",
            rt_pure, rt_hybrid
        );
    }

    /// The event heap is deterministic: the same seed and the same
    /// `FaultPlan` give a byte-identical result three runs in a row —
    /// with the hybrid switch active, so the fluid regime's extra RNG
    /// streams are covered too.
    #[test]
    fn same_seed_and_fault_plan_replay_identically(
        rates in prop::collection::vec(5.0f64..200.0, 2..6),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        crash_start in 0.0f64..60.0,
    ) {
        let plan = FaultPlan::new(fault_seed)
            .crash_instances(None, crash_start, crash_start + 60.0, 0.5, 2)
            .drop_samples(Some(1), 0.0, 120.0, 0.3);
        let hybrid = HybridConfig::new(4.0, 0.5, 64);
        let run = || {
            let model = ApplicationModel::paper_benchmark();
            let trace = LoadTrace::new(30.0, rates.clone()).unwrap();
            let cfg = config(seed)
                .with_hybrid(hybrid)
                .with_fault_plan(plan.clone());
            let mut sim = DesSimulation::new(&model, &trace, cfg);
            for s in 0..3 {
                sim.set_supply(s, 8).unwrap();
            }
            sim.run_to_end()
        };
        let first = run();
        let second = run();
        let third = run();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&second, &third);
        let (sent, accounted) = conservation(&first);
        prop_assert_eq!(sent, accounted);
    }
}
