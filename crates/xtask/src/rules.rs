//! The line rules: R1 panic-freedom, R2 NaN-safety, R3 lossy casts,
//! R5 doc coverage. Each check runs on one stripped line (see
//! [`crate::strip`]) and returns a diagnostic message on violation.

use crate::strip::StrippedSource;

/// Panicking constructs rejected by R1. `.expect(` deliberately excludes
/// `.expect_err(`, and `.unwrap()` excludes the `unwrap_or*` family.
const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// R1 — panic-freedom: no `unwrap()`, `expect(`, or panicking macros in
/// decision-path library code.
pub fn check_panic_freedom(line: &str) -> Option<String> {
    if line.contains(".unwrap()") {
        return Some(
            "`unwrap()` in decision-path code: propagate through the crate error type".to_owned(),
        );
    }
    if find_method_call(line, ".expect(") {
        return Some(
            "`expect()` in decision-path code: propagate through the crate error type".to_owned(),
        );
    }
    for mac in PANIC_MACROS {
        if find_macro(line, mac) {
            return Some(format!(
                "`{mac}` in decision-path code: return an error instead of panicking"
            ));
        }
    }
    None
}

/// R2 — NaN-safety: `partial_cmp` combined with `unwrap`/`unwrap_or` in a
/// comparator silently misorders (or panics on) NaN. Require
/// `f64::total_cmp` or an explicit finite-input guard.
pub fn check_nan_safety(line: &str) -> Option<String> {
    if !line.contains("partial_cmp") {
        return None;
    }
    if line.contains(".unwrap()")
        || line.contains(".unwrap_or(")
        || line.contains(".unwrap_or_else(")
    {
        return Some(
            "NaN-unsafe comparison: use `f64::total_cmp` (or guard inputs as finite) instead of \
             `partial_cmp(..).unwrap*`"
                .to_owned(),
        );
    }
    None
}

/// Cast targets R3 rejects. Casting *to* these from wider or float types
/// truncates, saturates or loses precision silently.
const CAST_TARGETS: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "f64", "f32",
];

/// R3 — lossy casts: no bare `as <numeric>` in capacity math. Use
/// `u64::try_from(..)`, `f64::from(..)` or a checked helper so the
/// narrowing is explicit and fallible.
pub fn check_lossy_cast(line: &str) -> Option<String> {
    let mut rest = line;
    while let Some(pos) = rest.find(" as ") {
        let after = &rest[pos + 4..];
        let target = after.trim_start();
        for t in CAST_TARGETS {
            if let Some(after_target) = target.strip_prefix(t) {
                let boundary = after_target
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    return Some(format!(
                        "bare `as {t}` cast in capacity math: use `try_from`/`from` or a checked \
                         helper"
                    ));
                }
            }
        }
        rest = after;
    }
    None
}

/// R5 — doc coverage: every `pub fn` / `pub struct` (and `pub enum` /
/// `pub trait`, which the same reasoning covers) carries a doc comment.
/// Attributes between the docs and the item are skipped.
pub fn check_doc_coverage(stripped: &StrippedSource, idx: usize) -> Option<String> {
    let line = stripped.lines.get(idx)?;
    let trimmed = line.trim_start();
    let item = ["pub fn ", "pub struct ", "pub enum ", "pub trait "]
        .iter()
        .find(|prefix| trimmed.starts_with(**prefix))?;

    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = stripped.lines[j].trim_start();
        if above.starts_with("#[") {
            continue; // attribute between docs and item
        }
        if stripped.doc_comment[j] {
            return None;
        }
        break;
    }
    let name = trimmed[item.len()..]
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .next()
        .unwrap_or("?");
    Some(format!(
        "undocumented `{item}{name}`: public API requires a doc comment"
    ))
}

/// Whether `line` contains `needle` (starting with `.`) as a method call —
/// i.e. not followed by more identifier characters, which `.expect(`
/// guarantees by construction, and not part of a longer method name like
/// `.expect_err(`.
fn find_method_call(line: &str, needle: &str) -> bool {
    line.contains(needle)
}

/// Whether `line` invokes the macro `mac` (name including `!`), with a
/// non-identifier character before it so `my_todo!` does not match `todo!`.
fn find_macro(line: &str, mac: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(mac) {
        let abs = start + pos;
        let before_ok = abs == 0
            || line[..abs]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok {
            return true;
        }
        start = abs + mac.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip_source;

    #[test]
    fn r1_flags_each_construct() {
        for bad in [
            "let x = v.last().unwrap();",
            "let y = m.get(&k).expect(\"present\");",
            "panic!(\"boom\");",
            "_ => unreachable!(),",
            "todo!()",
            "unimplemented!()",
        ] {
            assert!(check_panic_freedom(bad).is_some(), "missed: {bad}");
        }
    }

    #[test]
    fn r1_ignores_safe_relatives() {
        for ok in [
            "let x = v.last().copied().unwrap_or(0.0);",
            "let y = opt.unwrap_or_else(Vec::new);",
            "let z = opt.unwrap_or_default();",
            "let e = res.expect_err(\"must fail\");",
            "my_todo!()",
            "let p = should_panic_flag;",
        ] {
            assert!(check_panic_freedom(ok).is_none(), "false positive: {ok}");
        }
    }

    #[test]
    fn r2_flags_nan_unsafe_comparators() {
        for bad in [
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));",
            "xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| Ordering::Less));",
        ] {
            assert!(check_nan_safety(bad).is_some(), "missed: {bad}");
        }
    }

    #[test]
    fn r2_accepts_total_cmp_and_guarded_partial_cmp() {
        for ok in [
            "v.sort_by(f64::total_cmp);",
            "v.sort_by(|a, b| a.total_cmp(b));",
            "let ord = a.partial_cmp(&b)?;",
            "match a.partial_cmp(&b) { Some(o) => o, None => return Err(..) }",
        ] {
            assert!(check_nan_safety(ok).is_none(), "false positive: {ok}");
        }
    }

    #[test]
    fn r3_flags_bare_numeric_casts_only() {
        assert!(check_lossy_cast("let n = x as usize;").is_some());
        assert!(check_lossy_cast("let n = (rho * cap) as u64;").is_some());
        assert!(check_lossy_cast("let f = count as f64;").is_some());
        assert!(check_lossy_cast("let f = f64::from(count);").is_none());
        assert!(check_lossy_cast("let n = u64::try_from(x)?;").is_none());
        assert!(check_lossy_cast("use queueing::mmn as mmn_solver;").is_none());
        assert!(check_lossy_cast("let t = x as usize_like;").is_none());
    }

    #[test]
    fn r5_requires_doc_comments() {
        let s = strip_source(
            "/// Documented.\npub fn a() {}\n\npub fn b() {}\n#[derive(Debug)]\npub struct S;\n/// Doc.\n#[derive(Debug)]\npub struct T;\n",
        );
        assert!(check_doc_coverage(&s, 1).is_none()); // a: documented
        let b = check_doc_coverage(&s, 3);
        assert!(b.is_some_and(|m| m.contains("pub fn b")));
        let sd = check_doc_coverage(&s, 5);
        assert!(sd.is_some_and(|m| m.contains("pub struct S")));
        assert!(check_doc_coverage(&s, 8).is_none()); // T: doc above attr
    }
}
