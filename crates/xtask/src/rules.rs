//! The line rules: R1 panic-freedom, R2 NaN-safety, R5 doc coverage.
//! Each check runs on one stripped line (see [`crate::strip`]) and returns
//! a diagnostic message on violation. (R3 lossy-cast moved to
//! [`crate::semantic`], where the token stream lets it see casts split
//! across lines.)

use crate::strip::StrippedSource;

/// Panicking constructs rejected by R1. `.expect(` deliberately excludes
/// `.expect_err(`, and `.unwrap()` excludes the `unwrap_or*` family.
const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// R1 — panic-freedom: no `unwrap()`, `expect(`, or panicking macros in
/// decision-path library code.
pub fn check_panic_freedom(line: &str) -> Option<String> {
    if line.contains(".unwrap()") {
        return Some(
            "`unwrap()` in decision-path code: propagate through the crate error type".to_owned(),
        );
    }
    if find_method_call(line, ".expect") {
        return Some(
            "`expect()` in decision-path code: propagate through the crate error type".to_owned(),
        );
    }
    for mac in PANIC_MACROS {
        if find_macro(line, mac) {
            return Some(format!(
                "`{mac}` in decision-path code: return an error instead of panicking"
            ));
        }
    }
    None
}

/// R2 — NaN-safety: `partial_cmp` combined with `unwrap`/`unwrap_or` in a
/// comparator silently misorders (or panics on) NaN. Require
/// `f64::total_cmp` or an explicit finite-input guard.
pub fn check_nan_safety(line: &str) -> Option<String> {
    if !line.contains("partial_cmp") {
        return None;
    }
    if line.contains(".unwrap()")
        || line.contains(".unwrap_or(")
        || line.contains(".unwrap_or_else(")
    {
        return Some(
            "NaN-unsafe comparison: use `f64::total_cmp` (or guard inputs as finite) instead of \
             `partial_cmp(..).unwrap*`"
                .to_owned(),
        );
    }
    None
}

/// R5 — doc coverage: every public item head (`pub fn`, `pub struct`,
/// `pub enum`, `pub trait`, `pub const`, `pub type`, `pub mod`) carries a
/// doc comment. Attributes between the docs and the item are skipped.
pub fn check_doc_coverage(stripped: &StrippedSource, idx: usize) -> Option<String> {
    let line = stripped.lines.get(idx)?;
    let trimmed = line.trim_start();
    let item = [
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub type ",
        "pub mod ",
    ]
    .iter()
    .find(|prefix| trimmed.starts_with(**prefix))?;

    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = stripped.lines[j].trim_start();
        if above.starts_with("#[") {
            continue; // attribute between docs and item
        }
        if stripped.doc_comment[j] {
            return None;
        }
        break;
    }
    let name = trimmed[item.len()..]
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .next()
        .unwrap_or("?");
    Some(format!(
        "undocumented `{item}{name}`: public API requires a doc comment"
    ))
}

/// Whether `line` calls the method named by `needle` (a `.`-prefixed
/// method name *without* the parenthesis): the match must end at an
/// identifier boundary — so `.expect` does not match `.expect_err` — and
/// the next non-whitespace character must open the call's argument list,
/// so field accesses and path fragments don't count (`.expect (x)` does,
/// whitespace before the parens is legal Rust).
fn find_method_call(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let after = &line[abs + needle.len()..];
        let boundary = after
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary && after.trim_start().starts_with('(') {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Whether `line` invokes the macro `mac` (name including `!`), with a
/// non-identifier character before it so `my_todo!` does not match `todo!`.
fn find_macro(line: &str, mac: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(mac) {
        let abs = start + pos;
        let before_ok = abs == 0
            || line[..abs]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok {
            return true;
        }
        start = abs + mac.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip_source;

    #[test]
    fn r1_flags_each_construct() {
        for bad in [
            "let x = v.last().unwrap();",
            "let y = m.get(&k).expect(\"present\");",
            "let z = m.get(&k).expect (\"spaced call\");",
            "panic!(\"boom\");",
            "_ => unreachable!(),",
            "todo!()",
            "unimplemented!()",
        ] {
            assert!(check_panic_freedom(bad).is_some(), "missed: {bad}");
        }
    }

    #[test]
    fn r1_ignores_safe_relatives() {
        for ok in [
            "let x = v.last().copied().unwrap_or(0.0);",
            "let y = opt.unwrap_or_else(Vec::new);",
            "let z = opt.unwrap_or_default();",
            "let e = res.expect_err(\"must fail\");",
            "let f = res.expected(\"longer name\");",
            "let g = probe.expectation;",
            "my_todo!()",
            "let p = should_panic_flag;",
        ] {
            assert!(check_panic_freedom(ok).is_none(), "false positive: {ok}");
        }
    }

    #[test]
    fn method_call_matching_is_boundary_aware() {
        // The regression this pins: `find_method_call` once degenerated to
        // a bare `contains`, so any longer method sharing the prefix —
        // `.expect_err(` — would have been flagged the moment the
        // hard-coded needle lost its trailing parenthesis.
        assert!(find_method_call("r.expect(\"x\")", ".expect"));
        assert!(find_method_call("r.expect  (\"x\")", ".expect"));
        assert!(!find_method_call("r.expect_err(\"x\")", ".expect"));
        assert!(!find_method_call("r.expected(\"x\")", ".expect"));
        assert!(!find_method_call("r.expect", ".expect"));
        // Second occurrence still found after a non-call first one.
        assert!(find_method_call(
            "a.expect_err(e); b.expect(\"y\")",
            ".expect"
        ));
    }

    #[test]
    fn r2_flags_nan_unsafe_comparators() {
        for bad in [
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));",
            "xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| Ordering::Less));",
        ] {
            assert!(check_nan_safety(bad).is_some(), "missed: {bad}");
        }
    }

    #[test]
    fn r2_accepts_total_cmp_and_guarded_partial_cmp() {
        for ok in [
            "v.sort_by(f64::total_cmp);",
            "v.sort_by(|a, b| a.total_cmp(b));",
            "let ord = a.partial_cmp(&b)?;",
            "match a.partial_cmp(&b) { Some(o) => o, None => return Err(..) }",
        ] {
            assert!(check_nan_safety(ok).is_none(), "false positive: {ok}");
        }
    }

    #[test]
    fn r5_requires_doc_comments() {
        let s = strip_source(
            "/// Documented.\npub fn a() {}\n\npub fn b() {}\n#[derive(Debug)]\npub struct S;\n/// Doc.\n#[derive(Debug)]\npub struct T;\n",
        );
        assert!(check_doc_coverage(&s, 1).is_none()); // a: documented
        let b = check_doc_coverage(&s, 3);
        assert!(b.is_some_and(|m| m.contains("pub fn b")));
        let sd = check_doc_coverage(&s, 5);
        assert!(sd.is_some_and(|m| m.contains("pub struct S")));
        assert!(check_doc_coverage(&s, 8).is_none()); // T: doc above attr
    }

    #[test]
    fn r5_covers_consts_type_aliases_and_modules() {
        let s = strip_source(
            "pub const LIMIT: usize = 8;\n\
             /// Documented.\n\
             pub const OK: usize = 1;\n\
             pub type Alias = u32;\n\
             pub mod helpers;\n",
        );
        assert!(check_doc_coverage(&s, 0).is_some_and(|m| m.contains("pub const LIMIT")));
        assert!(check_doc_coverage(&s, 2).is_none());
        assert!(check_doc_coverage(&s, 3).is_some_and(|m| m.contains("pub type Alias")));
        assert!(check_doc_coverage(&s, 4).is_some_and(|m| m.contains("pub mod helpers")));
    }
}
