//! `cargo run -p xtask -- audit`: workspace-wide static analysis.
//!
//! Chamulteon is a *controller*: one panic on a degenerate queueing input
//! (ρ ≥ 1, NaN forecast, zero service rate) kills scaling for every service
//! in the chain — exactly the failure class the paper's reactive fallback
//! exists to avoid. This crate enforces repo-specific robustness rules that
//! `clippy` alone cannot express, with `file:line` diagnostics and a
//! nonzero exit code on violations:
//!
//! | Rule | Name          | Scope                     | What it rejects |
//! |------|---------------|---------------------------|-----------------|
//! | R1   | panic-freedom | decision-path crate `src/` + listed modules | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | R2   | nan-safety    | all crate `src/`          | `partial_cmp(..).unwrap()` / `unwrap_or(Ordering::…)` in comparisons |
//! | R3   | lossy-cast    | `core`, `queueing` `src/` | bare `as` numeric casts in capacity math |
//! | R4   | layering      | `crates/*/Cargo.toml`     | forbidden dependency edges |
//! | R5   | doc-coverage  | `core`, `queueing` `src/` | undocumented `pub fn` / `pub struct` |
//!
//! Code inside `#[cfg(test)]` modules is exempt from R1–R3 and R5. A
//! finding can be suppressed — one line at a time, with a justification —
//! by `// audit:allow(<rule-name>): why` on the offending line or on a
//! comment line directly above it.
//!
//! The line rules run on a *stripped* view of each file (comments and
//! string-literal contents blanked, line structure preserved), so a
//! `panic!` inside a doc comment or an error message never false-positives.

pub mod manifest;
pub mod rules;
pub mod strip;

use std::fmt;
use std::path::{Path, PathBuf};

/// The decision-path crates R1 (panic-freedom) applies to, by directory
/// name under `crates/`. `workload` and `bench` are experiment harness
/// code; `xtask` is this tool.
pub const DECISION_PATH_CRATES: &[&str] = &[
    "core",
    "obs",
    "queueing",
    "demand",
    "perfmodel",
    "scalers",
    "sim",
    "timeseries",
    "metrics",
    "conformance",
];

/// Individual decision-path modules inside otherwise-exempt crates,
/// matched by path suffix: the bench harness is mostly layer-4 plumbing,
/// but its measurement loop executes scaling decisions — under injected
/// faults — so the fault-path files carry the same panic-freedom bar R1
/// applies to the decision-path crates.
pub const DECISION_PATH_MODULES: &[&str] = &[
    "bench/src/drivers.rs",
    "bench/src/experiment.rs",
    "bench/src/pool.rs",
    "bench/src/robustness.rs",
];

/// Crates whose capacity math must use checked conversions (R3).
pub const CHECKED_CAST_CRATES: &[&str] = &["core", "queueing"];

/// Crates whose public API must be fully documented (R5).
pub const DOC_COVERAGE_CRATES: &[&str] = &["core", "queueing"];

/// Identifier of an audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// R1: no panicking constructs in decision-path library code.
    PanicFreedom,
    /// R2: no NaN-unsafe float comparisons.
    NanSafety,
    /// R3: no bare numeric `as` casts in capacity math.
    LossyCast,
    /// R4: no forbidden inter-crate dependency edges.
    Layering,
    /// R5: public API carries doc comments.
    DocCoverage,
}

impl RuleId {
    /// All rules, in numbering order.
    pub const ALL: [RuleId; 5] = [
        RuleId::PanicFreedom,
        RuleId::NanSafety,
        RuleId::LossyCast,
        RuleId::Layering,
        RuleId::DocCoverage,
    ];

    /// The short id (`"R1"`…`"R5"`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::PanicFreedom => "R1",
            RuleId::NanSafety => "R2",
            RuleId::LossyCast => "R3",
            RuleId::Layering => "R4",
            RuleId::DocCoverage => "R5",
        }
    }

    /// The rule's name, as used in `audit:allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::NanSafety => "nan-safety",
            RuleId::LossyCast => "lossy-cast",
            RuleId::Layering => "layering",
            RuleId::DocCoverage => "doc-coverage",
        }
    }

    /// Resolves an `audit:allow` argument — either the short id or the
    /// name — to a rule.
    pub fn parse(text: &str) -> Option<RuleId> {
        let text = text.trim();
        RuleId::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(text) || r.name() == text)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// One rule violation, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// File path, relative to the audited workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A problem that prevented the audit itself from running (I/O, malformed
/// workspace) — distinct from findings, and also a nonzero exit.
#[derive(Debug)]
pub struct AuditError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit error: {}", self.message)
    }
}

impl std::error::Error for AuditError {}

impl AuditError {
    fn new(message: impl Into<String>) -> Self {
        AuditError {
            message: message.into(),
        }
    }
}

/// Runs every rule over the workspace rooted at `root` (the directory
/// containing `crates/`). Returns all findings, sorted by file and line.
///
/// # Errors
///
/// Returns [`AuditError`] when the workspace cannot be read — a missing
/// `crates/` directory, unreadable files, or I/O failures mid-walk.
pub fn run_audit(root: &Path) -> Result<Vec<Finding>, AuditError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(AuditError::new(format!(
            "`{}` is not a workspace root: no crates/ directory",
            root.display()
        )));
    }

    let mut findings = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| AuditError::new(format!("reading {}: {e}", crates_dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = match crate_dir.file_name().and_then(|n| n.to_str()) {
            Some(name) => name.to_owned(),
            None => continue,
        };

        // R4 runs on the manifest.
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = read(&manifest)?;
            findings.extend(manifest::check_layering(
                &crate_name,
                &relative(root, &manifest),
                &text,
            ));
        }

        // Line rules run on src/ only: tests/, benches/ and examples/ are
        // exempt by construction.
        let src = crate_dir.join("src");
        if src.is_dir() {
            for file in rust_files(&src)? {
                let text = read(&file)?;
                let rel = relative(root, &file);
                findings.extend(audit_source(&crate_name, &rel, &text));
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Runs the line rules (R1, R2, R3, R5) over one source file belonging to
/// `crate_name`, honoring test-region exemptions and `audit:allow`.
pub fn audit_source(crate_name: &str, rel_path: &Path, text: &str) -> Vec<Finding> {
    let stripped = strip::strip_source(text);
    let source_lines: Vec<&str> = text.lines().collect();

    let mut findings = Vec::new();
    let decision_path = DECISION_PATH_CRATES.contains(&crate_name)
        || DECISION_PATH_MODULES.iter().any(|m| rel_path.ends_with(m));
    let checked_casts = CHECKED_CAST_CRATES.contains(&crate_name);
    let doc_coverage = DOC_COVERAGE_CRATES.contains(&crate_name);

    for (idx, line) in stripped.lines.iter().enumerate() {
        if stripped.in_test_region[idx] {
            continue;
        }
        let lineno = idx + 1;

        let mut line_findings = Vec::new();
        if let Some(f) = rules::check_nan_safety(line) {
            line_findings.push((RuleId::NanSafety, f));
        } else if decision_path {
            // R2 subsumes R1 on `partial_cmp(..).unwrap()` lines: report
            // the sharper diagnostic only.
            if let Some(f) = rules::check_panic_freedom(line) {
                line_findings.push((RuleId::PanicFreedom, f));
            }
        }
        if checked_casts {
            if let Some(f) = rules::check_lossy_cast(line) {
                line_findings.push((RuleId::LossyCast, f));
            }
        }
        if doc_coverage {
            if let Some(f) = rules::check_doc_coverage(&stripped, idx) {
                line_findings.push((RuleId::DocCoverage, f));
            }
        }

        for (rule, message) in line_findings {
            if allowed(&source_lines, idx, rule) {
                continue;
            }
            findings.push(Finding {
                rule,
                file: rel_path.to_path_buf(),
                line: lineno,
                message,
            });
        }
    }
    findings
}

/// Whether a finding of `rule` on 0-based line `idx` is suppressed by an
/// `audit:allow(<rule>)` marker on that line or on the line directly above.
pub fn allowed(source_lines: &[&str], idx: usize, rule: RuleId) -> bool {
    let mut candidates = Vec::with_capacity(2);
    if let Some(line) = source_lines.get(idx) {
        candidates.push(*line);
    }
    if idx > 0 {
        if let Some(prev) = source_lines.get(idx - 1) {
            // Only a pure comment line above can carry the marker: an
            // allow trailing some other statement must not leak downward.
            if prev.trim_start().starts_with("//") {
                candidates.push(*prev);
            }
        }
    }
    candidates.iter().any(|line| line_allows(line, rule))
}

fn line_allows(line: &str, rule: RuleId) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("audit:allow(") {
        rest = &rest[pos + "audit:allow(".len()..];
        if let Some(close) = rest.find(')') {
            if RuleId::parse(&rest[..close]) == Some(rule) {
                return true;
            }
        }
    }
    false
}

fn read(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path)
        .map_err(|e| AuditError::new(format!("reading {}: {e}", path.display())))
}

fn relative(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| AuditError::new(format!("reading {}: {e}", current.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| AuditError::new(format!("walking {}: {e}", current.display())))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.id()), Some(rule));
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
            assert_eq!(RuleId::parse(&rule.id().to_lowercase()), Some(rule));
        }
        assert_eq!(RuleId::parse("R9"), None);
        assert_eq!(RuleId::parse("unwrap"), None);
    }

    #[test]
    fn allow_marker_scopes() {
        let lines = [
            "let a = x.unwrap(); // audit:allow(panic-freedom): startup only",
            "// audit:allow(R1): fallback is worse",
            "let b = y.unwrap();",
            "let c = z.unwrap();",
        ];
        assert!(allowed(&lines, 0, RuleId::PanicFreedom));
        assert!(allowed(&lines, 2, RuleId::PanicFreedom));
        // Line 3 has no marker of its own; line 2 is not a comment line.
        assert!(!allowed(&lines, 3, RuleId::PanicFreedom));
        // The marker names R1, not R2.
        assert!(!allowed(&lines, 2, RuleId::NanSafety));
    }

    #[test]
    fn r2_subsumes_r1_on_same_line() {
        let text = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let findings = audit_source("queueing", Path::new("x.rs"), text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::NanSafety);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn test_regions_are_exempt() {
        let text = "pub fn f() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    \x20   fn g() { None::<u32>.unwrap(); }\n\
                    }\n";
        let findings = audit_source("sim", Path::new("x.rs"), text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_decision_path_crates_skip_r1() {
        let text = "fn f() { None::<u32>.unwrap(); }\n";
        assert!(audit_source("bench", Path::new("x.rs"), text).is_empty());
        assert_eq!(audit_source("core", Path::new("x.rs"), text).len(), 1);
    }

    #[test]
    fn decision_path_modules_get_r1_by_suffix() {
        let text = "fn f() { None::<u32>.unwrap(); }\n";
        for module in DECISION_PATH_MODULES {
            let rel = Path::new("crates").join(module);
            let findings = audit_source("bench", &rel, text);
            assert_eq!(findings.len(), 1, "{module} should be decision-path");
            assert_eq!(findings[0].rule, RuleId::PanicFreedom);
        }
        // Sibling bench files stay exempt.
        assert!(audit_source("bench", Path::new("crates/bench/src/paper.rs"), text).is_empty());
    }
}
