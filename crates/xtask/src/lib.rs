//! `cargo run -p xtask -- audit`: workspace-wide static analysis.
//!
//! Chamulteon is a *controller*: one panic on a degenerate queueing input
//! (ρ ≥ 1, NaN forecast, zero service rate) kills scaling for every service
//! in the chain — exactly the failure class the paper's reactive fallback
//! exists to avoid. And since the incremental-solver work, every speedup is
//! justified by bit-identity with the reference path, so *nondeterminism*
//! is a correctness bug too: a hash-ordered float sum or a wall-clock read
//! in a decision path silently breaks reproducibility. This crate enforces
//! repo-specific rules that `clippy` alone cannot express, with
//! `file:line` diagnostics and a nonzero exit code on violations:
//!
//! | Rule | Name          | Scope                     | What it rejects |
//! |------|---------------|---------------------------|-----------------|
//! | R1   | panic-freedom | decision-path crate `src/` + listed modules | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | R2   | nan-safety    | all crate `src/`          | `partial_cmp(..).unwrap()` / `unwrap_or(Ordering::…)` in comparisons |
//! | R3   | lossy-cast    | `core`, `queueing` `src/` | bare `as` numeric casts in capacity math (token-based: sees through line breaks) |
//! | R4   | layering      | `crates/*/Cargo.toml`     | forbidden dependency edges |
//! | R5   | doc-coverage  | `core`, `queueing` `src/` | undocumented `pub fn`/`struct`/`enum`/`trait`/`const`/`type`/`mod` |
//! | R6   | determinism   | decision path (+ all files for wall clocks) | hash-ordered iteration without normalization, `Instant`/`SystemTime` reads outside the timing whitelist, `std::env`/thread-identity dependence |
//! | R7   | float-order   | decision path             | f64 reductions over hash iteration; captured float accumulators in `parallel_map` closures |
//! | R8   | concurrency   | everywhere except `bench::pool` | `std::sync` primitives (minus `Arc`/`Weak`), thread spawning, locks in per-item closures |
//! | R9   | suppression   | everywhere                | `audit:allow` markers naming no known rule or carrying no justification |
//!
//! Code inside `#[cfg(test)]` modules is exempt from R1–R3 and R5–R8. A
//! finding can be suppressed — one line at a time, with a justification —
//! by `audit:allow(<rule>): why` or `audit: allow(<rule>, "why")` in a
//! comment on the offending line or on a comment line directly above it.
//! Every well-formed marker lands in the reported suppression ledger; R9
//! flags malformed ones and is itself unsuppressible.
//!
//! The line rules run on a *stripped* view of each file (comments and
//! string-literal contents blanked, line structure preserved), so a
//! `panic!` inside a doc comment or an error message never false-positives.
//! The semantic rules (R3, R6–R8) run on the lossless token stream via
//! [`scopes::FileContext`], which resolves imports, tracks hash/float
//! bindings and delimits worker-closure regions.

pub mod jsonio;
pub mod ledger;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scopes;
pub mod semantic;
pub mod strip;

use std::fmt;
use std::path::{Path, PathBuf};

/// The decision-path crates R1 (panic-freedom), R6 (determinism) and R7
/// (float-order) apply to, by directory name under `crates/`. `workload`
/// and `bench` are experiment harness code; `xtask` is this tool.
pub const DECISION_PATH_CRATES: &[&str] = &[
    "core",
    "obs",
    "queueing",
    "demand",
    "perfmodel",
    "scalers",
    "sim",
    "timeseries",
    "metrics",
    "conformance",
];

/// Individual decision-path modules matched by path suffix. The bench
/// harness is mostly layer-4 plumbing, but its measurement loop executes
/// scaling decisions — under injected faults — so the fault-path files
/// carry the same panic-freedom bar R1 applies to the decision-path
/// crates. The snapshot codec and the recovery oracle are listed even
/// though their crates are already covered by [`DECISION_PATH_CRATES`]:
/// crash recovery runs exactly when the system is least healthy, so
/// these pins survive any future re-layering of the crate list. The
/// event-driven core (`sim/src/des/`) and its scale runner are pinned
/// for the same reason: the hybrid regime switch executes inside the
/// measurement loop, and its conservation accounting must hold at loads
/// where a panic would discard hours of simulated time. The cluster
/// arbiter, its conformance oracle and the multi-tenant loop join the
/// list because they hold the shared budget and the cross-tenant billing
/// ledger: a panic there takes down every tenant at once.
pub const DECISION_PATH_MODULES: &[&str] = &[
    "bench/src/des_scale.rs",
    "bench/src/drivers.rs",
    "bench/src/experiment.rs",
    "bench/src/graph_scale.rs",
    "bench/src/multi_tenant.rs",
    "bench/src/pool.rs",
    "bench/src/robustness.rs",
    "conformance/src/cluster.rs",
    "conformance/src/recovery.rs",
    "core/src/cluster.rs",
    "core/src/snapshot.rs",
    "perfmodel/src/arena.rs",
    "perfmodel/src/topology.rs",
    "sim/src/des/engine.rs",
    "sim/src/des/event.rs",
    "sim/src/des/fluid.rs",
    "sim/src/des/station.rs",
];

/// Crates whose capacity math must use checked conversions (R3).
pub const CHECKED_CAST_CRATES: &[&str] = &["core", "queueing"];

/// Crates whose public API must be fully documented (R5).
pub const DOC_COVERAGE_CRATES: &[&str] = &["core", "queueing"];

/// Modules allowed to read the wall clock (R6), matched by path suffix:
/// the metrics recorder timestamps observations and the experiment binary
/// times its own phases — both outside the decision paths whose outputs
/// must be reproducible.
pub const TIMING_WHITELIST_MODULES: &[&str] =
    &["obs/src/metrics.rs", "bench/src/bin/chamulteon-exp.rs"];

/// Modules allowed to use `std::sync` primitives and spawn threads (R8),
/// matched by path suffix: the deterministic worker pool is the one
/// audited home for shared-state concurrency — everything else merges
/// through its input-order result vector.
pub const CONCURRENCY_WHITELIST_MODULES: &[&str] = &["bench/src/pool.rs"];

/// Identifier of an audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no panicking constructs in decision-path library code.
    PanicFreedom,
    /// R2: no NaN-unsafe float comparisons.
    NanSafety,
    /// R3: no bare numeric `as` casts in capacity math.
    LossyCast,
    /// R4: no forbidden inter-crate dependency edges.
    Layering,
    /// R5: public API carries doc comments.
    DocCoverage,
    /// R6: no hash-order, wall-clock, environment or thread-identity
    /// dependence in decision paths.
    Determinism,
    /// R7: no order-sensitive float reductions in decision paths.
    FloatOrder,
    /// R8: std::sync primitives confined to the worker pool.
    Concurrency,
    /// R9: every `audit:allow` marker names a real rule and carries a
    /// justification.
    SuppressionLedger,
}

impl RuleId {
    /// All rules, in numbering order.
    pub const ALL: [RuleId; 9] = [
        RuleId::PanicFreedom,
        RuleId::NanSafety,
        RuleId::LossyCast,
        RuleId::Layering,
        RuleId::DocCoverage,
        RuleId::Determinism,
        RuleId::FloatOrder,
        RuleId::Concurrency,
        RuleId::SuppressionLedger,
    ];

    /// The short id (`"R1"`…`"R9"`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::PanicFreedom => "R1",
            RuleId::NanSafety => "R2",
            RuleId::LossyCast => "R3",
            RuleId::Layering => "R4",
            RuleId::DocCoverage => "R5",
            RuleId::Determinism => "R6",
            RuleId::FloatOrder => "R7",
            RuleId::Concurrency => "R8",
            RuleId::SuppressionLedger => "R9",
        }
    }

    /// The rule's name, as used in `audit:allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::NanSafety => "nan-safety",
            RuleId::LossyCast => "lossy-cast",
            RuleId::Layering => "layering",
            RuleId::DocCoverage => "doc-coverage",
            RuleId::Determinism => "determinism",
            RuleId::FloatOrder => "float-order",
            RuleId::Concurrency => "concurrency",
            RuleId::SuppressionLedger => "suppression",
        }
    }

    /// Resolves an `audit:allow` argument — either the short id or the
    /// name — to a rule.
    pub fn parse(text: &str) -> Option<RuleId> {
        let text = text.trim();
        RuleId::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(text) || r.name() == text)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// One rule violation, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// File path, relative to the audited workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The audit of one source file: findings plus its slice of the
/// suppression ledger.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Violations, sorted by line then rule.
    pub findings: Vec<Finding>,
    /// Well-formed `audit:allow` markers, in line order.
    pub ledger: Vec<ledger::Suppression>,
}

/// The full workspace audit: every finding and every ledger entry, in
/// deterministic order.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Violations, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// The suppression ledger, sorted by (file, line, rule).
    pub ledger: Vec<ledger::Suppression>,
}

/// A problem that prevented the audit itself from running (I/O, malformed
/// workspace) — distinct from findings, and also a nonzero exit.
#[derive(Debug)]
pub struct AuditError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit error: {}", self.message)
    }
}

impl std::error::Error for AuditError {}

impl AuditError {
    fn new(message: impl Into<String>) -> Self {
        AuditError {
            message: message.into(),
        }
    }
}

/// Runs every rule over the workspace rooted at `root`, returning only the
/// findings. Thin wrapper over [`run_audit_report`] for callers that do
/// not need the ledger.
///
/// # Errors
///
/// Returns [`AuditError`] when the workspace cannot be read.
pub fn run_audit(root: &Path) -> Result<Vec<Finding>, AuditError> {
    run_audit_report(root).map(|report| report.findings)
}

/// Runs every rule over the workspace rooted at `root` (the directory
/// containing `crates/`), returning findings and the suppression ledger.
///
/// # Errors
///
/// Returns [`AuditError`] when the workspace cannot be read — a missing
/// `crates/` directory, unreadable files, or I/O failures mid-walk.
pub fn run_audit_report(root: &Path) -> Result<AuditReport, AuditError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(AuditError::new(format!(
            "`{}` is not a workspace root: no crates/ directory",
            root.display()
        )));
    }

    let mut report = AuditReport::default();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| AuditError::new(format!("reading {}: {e}", crates_dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = match crate_dir.file_name().and_then(|n| n.to_str()) {
            Some(name) => name.to_owned(),
            None => continue,
        };

        // R4 and the TOML side of R9 run on the manifest.
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = read(&manifest)?;
            let rel = relative(root, &manifest);
            report
                .findings
                .extend(manifest::check_layering(&crate_name, &rel, &text));
            let lines: Vec<&str> = text.lines().collect();
            let (r9, sups) = ledger::scan_file(&rel, &lines, ledger::CommentStyle::Toml);
            report.findings.extend(r9);
            report.ledger.extend(sups);
        }

        // Source rules run on src/ only: tests/, benches/ and examples/
        // are exempt by construction.
        let src = crate_dir.join("src");
        if src.is_dir() {
            for file in rust_files(&src)? {
                let text = read(&file)?;
                let rel = relative(root, &file);
                let audit = audit_source_full(&crate_name, &rel, &text);
                report.findings.extend(audit.findings);
                report.ledger.extend(audit.ledger);
            }
        }
    }

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    report
        .ledger
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Runs the source rules over one file, returning only the findings. Thin
/// wrapper over [`audit_source_full`].
pub fn audit_source(crate_name: &str, rel_path: &Path, text: &str) -> Vec<Finding> {
    audit_source_full(crate_name, rel_path, text).findings
}

/// Runs the line rules (R1, R2, R5), the semantic rules (R3, R6–R8) and
/// the ledger scan (R9) over one source file belonging to `crate_name`,
/// honoring test-region exemptions and `audit:allow` markers.
pub fn audit_source_full(crate_name: &str, rel_path: &Path, text: &str) -> FileAudit {
    let stripped = strip::strip_source(text);
    let source_lines: Vec<&str> = text.lines().collect();

    let decision_path = DECISION_PATH_CRATES.contains(&crate_name)
        || DECISION_PATH_MODULES.iter().any(|m| rel_path.ends_with(m));
    let doc_coverage = DOC_COVERAGE_CRATES.contains(&crate_name);
    let app = semantic::Applicability {
        decision_path,
        checked_casts: CHECKED_CAST_CRATES.contains(&crate_name),
        wall_clock_banned: !TIMING_WHITELIST_MODULES
            .iter()
            .any(|m| rel_path.ends_with(m)),
        concurrency_banned: !CONCURRENCY_WHITELIST_MODULES
            .iter()
            .any(|m| rel_path.ends_with(m)),
    };

    let mut findings = Vec::new();
    for (idx, line) in stripped.lines.iter().enumerate() {
        if stripped.in_test_region[idx] {
            continue;
        }
        let lineno = idx + 1;

        let mut line_findings = Vec::new();
        if let Some(f) = rules::check_nan_safety(line) {
            line_findings.push((RuleId::NanSafety, f));
        } else if decision_path {
            // R2 subsumes R1 on `partial_cmp(..).unwrap()` lines: report
            // the sharper diagnostic only.
            if let Some(f) = rules::check_panic_freedom(line) {
                line_findings.push((RuleId::PanicFreedom, f));
            }
        }
        if doc_coverage {
            if let Some(f) = rules::check_doc_coverage(&stripped, idx) {
                line_findings.push((RuleId::DocCoverage, f));
            }
        }

        for (rule, message) in line_findings {
            if allowed(&source_lines, idx, rule) {
                continue;
            }
            findings.push(Finding {
                rule,
                file: rel_path.to_path_buf(),
                line: lineno,
                message,
            });
        }
    }

    // Semantic rules over the token stream; line-level exemptions apply
    // the same way as for the line rules.
    let ctx = scopes::FileContext::analyze(text);
    for (line, rule, message) in semantic::check_file(&ctx, app) {
        let idx = line.saturating_sub(1);
        if stripped.in_test_region.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if allowed(&source_lines, idx, rule) {
            continue;
        }
        findings.push(Finding {
            rule,
            file: rel_path.to_path_buf(),
            line,
            message,
        });
    }

    // R9 + ledger collection, on the comment-only view so a marker quoted
    // inside a string literal is not mistaken for a real one. Markers in
    // doc comments are prose (the audit's own documentation quotes the
    // syntax), and test regions keep their blanket exemption; R9 findings
    // are never suppressible.
    let comment_text = lexer::comment_view(&ctx.tokens);
    let comment_lines: Vec<&str> = comment_text.lines().collect();
    let (mut r9, mut sups) =
        ledger::scan_file(rel_path, &comment_lines, ledger::CommentStyle::Rust);
    let exempt = |lineno: usize| {
        let idx = lineno.saturating_sub(1);
        stripped.doc_comment.get(idx).copied().unwrap_or(false)
            || stripped.in_test_region.get(idx).copied().unwrap_or(false)
    };
    r9.retain(|f| !exempt(f.line));
    sups.retain(|s| !exempt(s.line));
    findings.extend(r9);

    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    FileAudit {
        findings,
        ledger: sups,
    }
}

/// Whether a finding of `rule` on 0-based line `idx` is suppressed by an
/// `audit:allow(<rule>)` marker on that line or on the line directly above.
pub fn allowed(source_lines: &[&str], idx: usize, rule: RuleId) -> bool {
    let style = ledger::CommentStyle::Rust;
    if let Some(line) = source_lines.get(idx) {
        if ledger::line_allows(line, style, rule) {
            return true;
        }
    }
    if idx > 0 {
        if let Some(prev) = source_lines.get(idx - 1) {
            // Only a pure comment line above can carry the marker: an
            // allow trailing some other statement must not leak downward.
            if prev.trim_start().starts_with("//") && ledger::line_allows(prev, style, rule) {
                return true;
            }
        }
    }
    false
}

fn read(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path)
        .map_err(|e| AuditError::new(format!("reading {}: {e}", path.display())))
}

fn relative(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| AuditError::new(format!("reading {}: {e}", current.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| AuditError::new(format!("walking {}: {e}", current.display())))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.id()), Some(rule));
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
            assert_eq!(RuleId::parse(&rule.id().to_lowercase()), Some(rule));
        }
        assert_eq!(RuleId::parse("R10"), None);
        assert_eq!(RuleId::parse("unwrap"), None);
    }

    #[test]
    fn allow_marker_scopes() {
        let lines = [
            "let a = x.unwrap(); // audit:allow(panic-freedom): startup only",
            "// audit:allow(R1): fallback is worse",
            "let b = y.unwrap();",
            "let c = z.unwrap();",
        ];
        assert!(allowed(&lines, 0, RuleId::PanicFreedom));
        assert!(allowed(&lines, 2, RuleId::PanicFreedom));
        // Line 3 has no marker of its own; line 2 is not a comment line.
        assert!(!allowed(&lines, 3, RuleId::PanicFreedom));
        // The marker names R1, not R2.
        assert!(!allowed(&lines, 2, RuleId::NanSafety));
    }

    #[test]
    fn inline_marker_syntax_suppresses_too() {
        let lines = ["let a = x.unwrap(); // audit: allow(R1, \"startup only\")"];
        assert!(allowed(&lines, 0, RuleId::PanicFreedom));
        assert!(!allowed(&lines, 0, RuleId::NanSafety));
    }

    #[test]
    fn r2_subsumes_r1_on_same_line() {
        let text = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let findings = audit_source("queueing", Path::new("x.rs"), text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::NanSafety);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn test_regions_are_exempt() {
        let text = "pub fn f() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    \x20   fn g() { None::<u32>.unwrap(); }\n\
                    }\n";
        let findings = audit_source("sim", Path::new("x.rs"), text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_decision_path_crates_skip_r1() {
        let text = "fn f() { None::<u32>.unwrap(); }\n";
        assert!(audit_source("bench", Path::new("x.rs"), text).is_empty());
        assert_eq!(audit_source("core", Path::new("x.rs"), text).len(), 1);
    }

    #[test]
    fn decision_path_modules_get_r1_by_suffix() {
        let text = "fn f() { None::<u32>.unwrap(); }\n";
        for module in DECISION_PATH_MODULES {
            let rel = Path::new("crates").join(module);
            let findings = audit_source("bench", &rel, text);
            assert_eq!(findings.len(), 1, "{module} should be decision-path");
            assert_eq!(findings[0].rule, RuleId::PanicFreedom);
        }
        // Sibling bench files stay exempt.
        assert!(audit_source("bench", Path::new("crates/bench/src/paper.rs"), text).is_empty());
    }

    #[test]
    fn semantic_findings_respect_allow_and_test_regions() {
        let suppressed = "use std::time::Instant;\n\
                          // audit:allow(R6): coarse staleness probe, not decision input\n\
                          fn f() { let t = Instant::now(); }\n";
        let audit = audit_source_full("core", Path::new("crates/core/src/x.rs"), suppressed);
        assert!(audit.findings.is_empty(), "{:?}", audit.findings);

        let in_tests = "#[cfg(test)]\n\
                        mod tests {\n\
                        \x20   fn f() { let t = std::time::Instant::now(); }\n\
                        }\n";
        let audit = audit_source_full("core", Path::new("crates/core/src/y.rs"), in_tests);
        assert!(audit.findings.is_empty(), "{:?}", audit.findings);
    }

    #[test]
    fn timing_and_concurrency_whitelists_match_by_suffix() {
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            audit_source("obs", Path::new("crates/obs/src/recorder.rs"), clock).len(),
            1
        );
        assert!(audit_source("obs", Path::new("crates/obs/src/metrics.rs"), clock).is_empty());

        let lock = "fn f() { let m = std::sync::Mutex::new(0); }\n";
        assert_eq!(
            audit_source("bench", Path::new("crates/bench/src/paper.rs"), lock).len(),
            1
        );
        assert!(audit_source("bench", Path::new("crates/bench/src/pool.rs"), lock).is_empty());
    }

    #[test]
    fn ledger_collects_markers_and_r9_is_unsuppressible() {
        let text = "fn f(x: Option<u32>) -> u32 {\n\
                    \x20   // audit:allow(R1): fallback would mask the config error\n\
                    \x20   x.unwrap()\n\
                    }\n\
                    // audit:allow(R1) audit:allow(R9): excuses itself\n\
                    fn g() {}\n";
        let audit = audit_source_full("core", Path::new("crates/core/src/z.rs"), text);
        assert_eq!(audit.ledger.len(), 2, "{:?}", audit.ledger);
        assert_eq!(audit.ledger[0].line, 2);
        assert_eq!(audit.ledger[0].rule, RuleId::PanicFreedom);
        // The reasonless R1 marker on line 5 is flagged despite the
        // adjacent allow(R9) attempt.
        let r9: Vec<_> = audit
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::SuppressionLedger)
            .collect();
        assert_eq!(r9.len(), 1, "{:?}", audit.findings);
        assert_eq!(r9[0].line, 5);
    }
}
