//! JSON output for `xtask audit --json` and baseline diffing for the CI
//! gate.
//!
//! The writer is hand-rolled (no dependencies, by the crate's own policy)
//! and deliberately boring: fixed key order, sorted records, no
//! timestamps, `\n` line endings — two consecutive runs over the same
//! tree produce byte-identical output, which is what lets CI compare
//! `audit.json` against the committed baseline with a plain equality
//! check on the diff keys.
//!
//! The baseline comparison keys findings on `(rule, file, message)` as a
//! *multiset*, not on line numbers: editing a file renumbers every
//! finding below the edit, and a gate that cried wolf on pure line drift
//! would be deleted within a week. A finding is "new" only when its key
//! occurs more often in the current run than in the baseline.

use crate::ledger::Suppression;
use crate::{AuditReport, Finding};

/// Schema identifier embedded in the output; bump on breaking changes.
pub const SCHEMA: &str = "chamulteon-audit/v1";

/// Serializes a report to the stable JSON schema.
pub fn report_to_json(report: &AuditReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
    out.push_str("  \"counts\": {\n");
    out.push_str(&format!(
        "    \"findings\": {},\n    \"ledger\": {}\n  }},\n",
        report.findings.len(),
        report.ledger.len()
    ));
    out.push_str("  \"findings\": [");
    write_records(&mut out, &report.findings, write_finding);
    out.push_str("],\n");
    out.push_str("  \"ledger\": [");
    write_records(&mut out, &report.ledger, write_suppression);
    out.push_str("]\n}\n");
    out
}

fn write_records<T>(out: &mut String, records: &[T], write_one: fn(&mut String, &T)) {
    for (i, record) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        write_one(out, record);
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
}

fn write_finding(out: &mut String, f: &Finding) {
    out.push_str(&format!(
        "{{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
        quote(f.rule.id()),
        quote(f.rule.name()),
        quote(&f.file.display().to_string()),
        f.line,
        quote(&f.message)
    ));
}

fn write_suppression(out: &mut String, s: &Suppression) {
    out.push_str(&format!(
        "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
        quote(s.rule.id()),
        quote(&s.file.display().to_string()),
        s.line,
        quote(&s.reason)
    ));
}

/// JSON string quoting with the mandatory escapes.
fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finding's identity for baseline comparison: `(rule id, file,
/// message)`. Line numbers are deliberately absent — see the module docs.
pub type BaselineKey = (String, String, String);

/// The baseline key of one finding.
pub fn finding_key(f: &Finding) -> BaselineKey {
    (
        f.rule.id().to_owned(),
        f.file.display().to_string(),
        f.message.clone(),
    )
}

/// Parses a baseline file (itself produced by `--write-baseline`) into
/// its finding keys.
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem; CI treats
/// that as an audit error (exit 2), not a regression.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineKey>, String> {
    let value = Parser::new(text).parse()?;
    let Value::Object(fields) = value else {
        return Err("baseline root is not an object".to_owned());
    };
    let schema = fields.iter().find(|(k, _)| k == "schema");
    match schema {
        Some((_, Value::String(s))) if s == SCHEMA => {}
        Some((_, Value::String(s))) => {
            return Err(format!("baseline schema `{s}` is not `{SCHEMA}`"));
        }
        _ => return Err("baseline has no `schema` string".to_owned()),
    }
    let Some((_, Value::Array(findings))) = fields.iter().find(|(k, _)| k == "findings") else {
        return Err("baseline has no `findings` array".to_owned());
    };
    let mut keys = Vec::with_capacity(findings.len());
    for entry in findings {
        let Value::Object(fields) = entry else {
            return Err("baseline finding is not an object".to_owned());
        };
        let get = |name: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, Value::String(s))) => Ok(s.clone()),
                _ => Err(format!("baseline finding lacks string field `{name}`")),
            }
        };
        keys.push((get("rule")?, get("file")?, get("message")?));
    }
    Ok(keys)
}

/// The findings not covered by the baseline: each `(rule, file, message)`
/// key may appear in the result only as many times as it *exceeds* its
/// baseline count.
pub fn new_findings<'a>(findings: &'a [Finding], baseline: &[BaselineKey]) -> Vec<&'a Finding> {
    use std::collections::BTreeMap;
    let mut budget: BTreeMap<&BaselineKey, usize> = BTreeMap::new();
    for key in baseline {
        *budget.entry(key).or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    for finding in findings {
        let key = finding_key(finding);
        match budget.get_mut(&key) {
            Some(count) if *count > 0 => *count -= 1,
            _ => fresh.push(finding),
        }
    }
    fresh
}

/// Minimal JSON value for baseline parsing.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Minimal recursive-descent JSON parser: just enough for files this
/// module itself writes, with positions in error messages.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(format!("unterminated string at byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().ok_or("unexpected end of input")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {}
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // `{`
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", self.pos));
            }
            self.pos += 1;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {}
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleId;
    use std::path::PathBuf;

    fn finding(rule: RuleId, file: &str, line: usize, message: &str) -> Finding {
        Finding {
            rule,
            file: PathBuf::from(file),
            line,
            message: message.to_owned(),
        }
    }

    fn sample_report() -> AuditReport {
        AuditReport {
            findings: vec![
                finding(
                    RuleId::PanicFreedom,
                    "crates/a/src/lib.rs",
                    3,
                    "no \"unwrap\"",
                ),
                finding(RuleId::Determinism, "crates/b/src/lib.rs", 9, "hash order"),
            ],
            ledger: vec![Suppression {
                rule: RuleId::Concurrency,
                file: PathBuf::from("crates/c/src/lib.rs"),
                line: 4,
                reason: "pool-internal".to_owned(),
            }],
        }
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let json = report_to_json(&sample_report());
        let keys = parse_baseline(&json).expect("parse");
        assert_eq!(
            keys,
            vec![
                (
                    "R1".to_owned(),
                    "crates/a/src/lib.rs".to_owned(),
                    "no \"unwrap\"".to_owned()
                ),
                (
                    "R6".to_owned(),
                    "crates/b/src/lib.rs".to_owned(),
                    "hash order".to_owned()
                ),
            ]
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(
            report_to_json(&sample_report()),
            report_to_json(&sample_report())
        );
        let empty = report_to_json(&AuditReport::default());
        assert!(empty.contains("\"findings\": []"), "{empty}");
        assert!(empty.contains("\"schema\": \"chamulteon-audit/v1\""));
    }

    #[test]
    fn baseline_diff_is_a_multiset() {
        let report = sample_report();
        let baseline: Vec<BaselineKey> = report.findings.iter().map(finding_key).collect();
        assert!(new_findings(&report.findings, &baseline).is_empty());

        // A second occurrence of an already-baselined key is new.
        let mut doubled = report.findings.clone();
        doubled.push(finding(
            RuleId::PanicFreedom,
            "crates/a/src/lib.rs",
            30,
            "no \"unwrap\"",
        ));
        let fresh = new_findings(&doubled, &baseline);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 30);

        // Line drift alone is not new.
        let mut drifted = report.findings.clone();
        drifted[0].line = 300;
        assert!(new_findings(&drifted, &baseline).is_empty());
    }

    #[test]
    fn baseline_schema_mismatch_is_an_error() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"other/v2\", \"findings\": []}").is_err());
        assert!(parse_baseline("not json").is_err());
        let minimal = format!("{{\"schema\": {:?}, \"findings\": []}}", SCHEMA);
        assert_eq!(parse_baseline(&minimal).expect("ok"), vec![]);
    }
}
