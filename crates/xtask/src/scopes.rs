//! Lightweight scope and item tracking over the token stream.
//!
//! The semantic rules (R6–R8) need more context than a single line can
//! carry: whether `HashMap` in this file *is* `std::collections::HashMap`,
//! which local names are bound to hash-ordered collections, and which
//! token spans lie inside a `parallel_map`/`spawn` call whose closure runs
//! on worker threads. [`FileContext`] computes all of that in one pass.
//!
//! This is deliberately not a type checker. It resolves `use` declarations
//! (including nested `{…}` groups and `as` renames), tracks bindings whose
//! type ascription or initializer names a resolved hash collection or
//! float type, and delimits call-argument regions by matching parentheses.
//! The approximation is sound for the patterns the audit enforces; the
//! suppression ledger covers the rest.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A significant (non-whitespace, non-comment) token with its stream
/// position, used by the semantic rules.
#[derive(Debug, Clone)]
pub struct SigToken {
    /// Index into the full token stream.
    pub token_index: usize,
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's exact text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// Everything the semantic rules need to know about one source file.
#[derive(Debug)]
pub struct FileContext {
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// Significant tokens only, in stream order.
    pub sig: Vec<SigToken>,
    /// `use`-declaration resolution: local name → full path
    /// (`HashMap` → `std::collections::HashMap`).
    pub imports: BTreeMap<String, String>,
    /// Local names bound to `std::collections::HashMap`/`HashSet` via a
    /// type ascription (`m: &HashMap<…>`) or initializer
    /// (`let m = HashMap::new()`).
    pub hash_bindings: BTreeSet<String>,
    /// Local names bound to `f64`/`f32` via ascription or a float-literal
    /// initializer (`let mut total = 0.0`).
    pub float_bindings: BTreeSet<String>,
    /// Sig-index ranges covering the argument lists of `parallel_map(…)` /
    /// `spawn(…)` calls — code inside runs on worker threads under the
    /// pool's deterministic-merge contract.
    pub parallel_regions: Vec<ParallelRegion>,
}

/// One `parallel_map`/`spawn` call-argument region.
#[derive(Debug)]
pub struct ParallelRegion {
    /// The spawning function's name (`parallel_map` or `spawn`).
    pub callee: String,
    /// Sig index of the opening parenthesis.
    pub start: usize,
    /// Sig index one past the matching closing parenthesis.
    pub end: usize,
    /// Names declared *inside* the region: closure parameters and `let`
    /// bindings. A mutation of anything else is a captured accumulator.
    pub declared: BTreeSet<String>,
}

impl ParallelRegion {
    /// Whether sig index `i` lies inside this region.
    pub fn contains(&self, i: usize) -> bool {
        (self.start..self.end).contains(&i)
    }
}

/// Functions whose call arguments execute on worker threads.
const PARALLEL_CALLEES: &[&str] = &["parallel_map", "spawn"];

impl FileContext {
    /// Lexes and analyzes one source file.
    pub fn analyze(text: &str) -> FileContext {
        let tokens = lex(text);
        let sig: Vec<SigToken> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_significant())
            .map(|(i, t)| SigToken {
                token_index: i,
                kind: t.kind,
                text: t.text.clone(),
                line: t.line,
            })
            .collect();

        let imports = collect_imports(&sig);
        let mut ctx = FileContext {
            tokens,
            sig,
            imports,
            hash_bindings: BTreeSet::new(),
            float_bindings: BTreeSet::new(),
            parallel_regions: Vec::new(),
        };
        ctx.collect_bindings();
        ctx.collect_parallel_regions();
        ctx
    }

    /// Resolves the path ending at sig index `i` (an identifier) to a full
    /// path using leading `seg::seg::` segments and the import table:
    /// `collections::HashMap` with `use std::collections;` resolves to
    /// `std::collections::HashMap`.
    pub fn resolve(&self, i: usize) -> String {
        let mut segments = vec![self.sig[i].text.clone()];
        let mut j = i;
        // Walk back over `ident ::` pairs.
        while j >= 3
            && self.sig[j - 1].text == ":"
            && self.sig[j - 2].text == ":"
            && self.sig[j - 3].kind == TokenKind::Ident
        {
            segments.push(self.sig[j - 3].text.clone());
            j -= 3;
        }
        segments.reverse();
        // Expand the head through the import table (`collections` →
        // `std::collections`). Absolute heads pass through unchanged.
        if let Some(full) = self.imports.get(&segments[0]) {
            segments[0] = full.clone();
        }
        segments.join("::")
    }

    /// Whether the identifier at sig index `i` resolves to `full_path`
    /// (an absolute `std::…` path, matched with or without the `std::`
    /// prefix spelled out at the use site).
    pub fn resolves_to(&self, i: usize, full_path: &str) -> bool {
        let resolved = self.resolve(i);
        resolved == full_path || Some(resolved.as_str()) == full_path.strip_prefix("std::")
    }

    /// Whether the identifier at sig index `i` names a std hash-ordered
    /// collection type (`HashMap`/`HashSet`), resolved through imports or
    /// written as a full path. A bare `HashMap` with no import in scope
    /// also counts — the decision-path crates have no competing type of
    /// that name, and a custom import (`use crate::x::HashMap`) un-counts.
    pub fn is_hash_type(&self, i: usize) -> bool {
        if self.sig[i].kind != TokenKind::Ident {
            return false;
        }
        let t = self.sig[i].text.as_str();
        if t != "HashMap" && t != "HashSet" {
            return false;
        }
        let resolved = self.resolve(i);
        resolved == format!("std::collections::{t}")
            || resolved == format!("collections::{t}")
            || resolved == t
    }

    /// Sig-token pattern scan: bindings typed or initialized as hash
    /// collections or floats.
    fn collect_bindings(&mut self) {
        let n = self.sig.len();
        let mut hash = Vec::new();
        let mut float = Vec::new();
        for i in 0..n {
            // `name :` ascription (not `name ::` path) — scan the type
            // expression up to a statement-ish boundary.
            if self.sig[i].kind == TokenKind::Ident
                && i + 2 < n
                && self.sig[i + 1].text == ":"
                && self.sig[i + 2].text != ":"
                && (i == 0 || self.sig[i - 1].text != ":")
            {
                let name = self.sig[i].text.clone();
                let limit = (i + 24).min(n);
                for j in i + 2..limit {
                    let t = self.sig[j].text.as_str();
                    if t == ";" || t == "=" || t == "{" || t == ")" || t == "," {
                        break;
                    }
                    if self.is_hash_type(j) {
                        hash.push(name.clone());
                        break;
                    }
                    if t == "f64" || t == "f32" {
                        float.push(name.clone());
                        break;
                    }
                }
            }
            // `let [mut] name = …;` initializer scan.
            if self.sig[i].text == "let" && self.sig[i].kind == TokenKind::Ident {
                let mut j = i + 1;
                if j < n && self.sig[j].text == "mut" {
                    j += 1;
                }
                if j >= n || self.sig[j].kind != TokenKind::Ident {
                    continue;
                }
                let name = self.sig[j].text.clone();
                // Find `=` before `;` (ascriptions are handled above).
                let mut k = j + 1;
                let limit = (i + 200).min(n);
                while k < limit && self.sig[k].text != "=" && self.sig[k].text != ";" {
                    k += 1;
                }
                if k >= limit || self.sig[k].text != "=" {
                    continue;
                }
                let mut m = k + 1;
                let mut saw_hash = false;
                while m < limit && self.sig[m].text != ";" {
                    if self.is_hash_type(m) {
                        saw_hash = true;
                        break;
                    }
                    m += 1;
                }
                if saw_hash {
                    hash.push(name);
                } else if m == k + 2
                    && self.sig[k + 1].kind == TokenKind::Number
                    && is_float_literal(&self.sig[k + 1].text)
                {
                    // Only the direct `= 0.0;` form: a float literal deep
                    // inside a longer initializer says nothing about the
                    // binding's own type.
                    float.push(name);
                }
            }
        }
        self.hash_bindings.extend(hash);
        self.float_bindings.extend(float);
    }

    /// Finds `parallel_map(…)` / `spawn(…)` call-argument spans and the
    /// names declared inside each (closure params, `let` bindings).
    fn collect_parallel_regions(&mut self) {
        let n = self.sig.len();
        let mut regions = Vec::new();
        for i in 0..n.saturating_sub(1) {
            if self.sig[i].kind != TokenKind::Ident
                || !PARALLEL_CALLEES.contains(&self.sig[i].text.as_str())
                || self.sig[i + 1].text != "("
            {
                continue;
            }
            let start = i + 1;
            let mut depth = 0i64;
            let mut end = n;
            for (j, tok) in self.sig.iter().enumerate().skip(start) {
                match tok.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let mut declared = BTreeSet::new();
            let mut j = start;
            while j < end {
                let t = self.sig[j].text.as_str();
                if t == "let" {
                    let mut k = j + 1;
                    if k < end && self.sig[k].text == "mut" {
                        k += 1;
                    }
                    if k < end && self.sig[k].kind == TokenKind::Ident {
                        declared.insert(self.sig[k].text.clone());
                    }
                } else if t == "|" {
                    // Closure parameter list: collect idents up to the
                    // closing `|` (over-collection of type names inside is
                    // harmless — it only widens "declared here").
                    let mut k = j + 1;
                    while k < end && self.sig[k].text != "|" {
                        if self.sig[k].kind == TokenKind::Ident {
                            declared.insert(self.sig[k].text.clone());
                        }
                        k += 1;
                    }
                    j = k;
                }
                j += 1;
            }
            regions.push(ParallelRegion {
                callee: self.sig[i].text.clone(),
                start,
                end,
                declared,
            });
        }
        self.parallel_regions = regions;
    }

    /// The sig-index range of the statement containing sig index `i`:
    /// back to just past the previous `;`/`{`/`}` and forward through the
    /// next one.
    pub fn statement_range(&self, i: usize) -> (usize, usize) {
        let mut start = i;
        while start > 0 {
            let t = self.sig[start - 1].text.as_str();
            if t == ";" || t == "{" || t == "}" {
                break;
            }
            start -= 1;
        }
        let mut end = i;
        while end < self.sig.len() {
            let t = self.sig[end].text.as_str();
            end += 1;
            if t == ";" || t == "{" || t == "}" {
                break;
            }
        }
        (start, end)
    }
}

/// Whether a numeric literal is a float (`0.0`, `1e3` decimal exponent,
/// or an `f32`/`f64` suffix).
pub fn is_float_literal(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f64")
        || text.ends_with("f32")
        || (!text.starts_with("0x")
            && !text.starts_with("0b")
            && !text.starts_with("0o")
            && (text.contains('e') || text.contains('E')))
}

/// Parses every `use` declaration in the significant-token stream into
/// `local name → full path` entries. Handles nested groups
/// (`use std::sync::{Arc, atomic::{AtomicU64, Ordering}};`), renames
/// (`as`), and ignores globs.
fn collect_imports(sig: &[SigToken]) -> BTreeMap<String, String> {
    let mut imports = BTreeMap::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].kind == TokenKind::Ident && sig[i].text == "use" {
            let mut j = i + 1;
            parse_use_tree(sig, &mut j, String::new(), &mut imports);
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    imports
}

/// Recursive-descent parse of one use-tree level; `prefix` is the path
/// accumulated so far (`std::sync::`). Advances `*j` to the terminator
/// (`;`, `,` or past a closed group).
fn parse_use_tree(
    sig: &[SigToken],
    j: &mut usize,
    prefix: String,
    imports: &mut BTreeMap<String, String>,
) {
    let mut path = prefix;
    let mut last_segment = String::new();
    while *j < sig.len() {
        let t = sig[*j].text.as_str();
        match t {
            ";" | "," | "}" => {
                if !last_segment.is_empty() {
                    record_leaf(imports, &path, &last_segment, &last_segment);
                }
                return;
            }
            ":" => {
                *j += 1;
                if *j < sig.len() && sig[*j].text == ":" {
                    *j += 1;
                }
                if !last_segment.is_empty() {
                    path.push_str(&last_segment);
                    path.push_str("::");
                    last_segment.clear();
                }
            }
            "{" => {
                *j += 1;
                loop {
                    if *j >= sig.len() {
                        return;
                    }
                    if sig[*j].text == "}" {
                        *j += 1;
                        return;
                    }
                    parse_use_tree(sig, j, path.clone(), imports);
                    if *j < sig.len() && sig[*j].text == "," {
                        *j += 1;
                    }
                }
            }
            "as" => {
                *j += 1;
                if *j < sig.len() && sig[*j].kind == TokenKind::Ident {
                    record_leaf(imports, &path, &last_segment, &sig[*j].text);
                    last_segment.clear();
                    *j += 1;
                }
            }
            "*" => {
                last_segment.clear();
                *j += 1;
            }
            _ if sig[*j].kind == TokenKind::Ident => {
                last_segment = sig[*j].text.clone();
                *j += 1;
            }
            _ => {
                *j += 1;
            }
        }
    }
    if !last_segment.is_empty() {
        record_leaf(imports, &path, &last_segment, &last_segment);
    }
}

fn record_leaf(imports: &mut BTreeMap<String, String>, path: &str, segment: &str, local: &str) {
    if local == "self" {
        return;
    }
    let full = if segment == "self" || segment.is_empty() {
        path.trim_end_matches(':').to_owned()
    } else {
        format!("{path}{segment}")
    };
    if full.is_empty() {
        return;
    }
    imports.insert(local.to_owned(), full);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_resolve_nested_groups_and_renames() {
        let ctx = FileContext::analyze(
            "use std::collections::{HashMap, HashSet};\n\
             use std::sync::{Arc, atomic::{AtomicU64, Ordering}};\n\
             use std::time::Instant as Clock;\n\
             use std::collections;\n",
        );
        assert_eq!(
            ctx.imports.get("HashMap").map(String::as_str),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            ctx.imports.get("HashSet").map(String::as_str),
            Some("std::collections::HashSet")
        );
        assert_eq!(
            ctx.imports.get("Arc").map(String::as_str),
            Some("std::sync::Arc")
        );
        assert_eq!(
            ctx.imports.get("AtomicU64").map(String::as_str),
            Some("std::sync::atomic::AtomicU64")
        );
        assert_eq!(
            ctx.imports.get("Ordering").map(String::as_str),
            Some("std::sync::atomic::Ordering")
        );
        assert_eq!(
            ctx.imports.get("Clock").map(String::as_str),
            Some("std::time::Instant")
        );
        assert_eq!(
            ctx.imports.get("collections").map(String::as_str),
            Some("std::collections")
        );
    }

    #[test]
    fn resolve_walks_path_segments_and_imports() {
        let ctx = FileContext::analyze(
            "use std::collections;\n\
             fn f() { let m = collections::HashMap::new(); let t = std::time::Instant::now(); }\n",
        );
        let hm = ctx.sig.iter().position(|t| t.text == "HashMap").unwrap();
        assert!(ctx.is_hash_type(hm));
        let instant = ctx.sig.iter().position(|t| t.text == "Instant").unwrap();
        assert!(ctx.resolves_to(instant, "std::time::Instant"));
    }

    #[test]
    fn custom_hashmap_is_not_std() {
        let ctx =
            FileContext::analyze("use crate::fast::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n");
        let hm = ctx.sig.iter().rposition(|t| t.text == "HashMap").unwrap();
        assert!(!ctx.is_hash_type(hm));
        assert!(ctx.hash_bindings.is_empty());
    }

    #[test]
    fn hash_and_float_bindings_from_ascription_and_initializer() {
        let ctx = FileContext::analyze(
            "use std::collections::{HashMap, HashSet};\n\
             fn f(m: &HashMap<String, f64>, n: usize) {\n\
                 let mut s = HashSet::new();\n\
                 let mut total: f64 = 0.0;\n\
                 let mut acc = 0.0;\n\
                 let v = vec![1.5, 2.5];\n\
                 let k = 3;\n\
             }\n",
        );
        assert!(ctx.hash_bindings.contains("m"));
        assert!(ctx.hash_bindings.contains("s"));
        assert!(!ctx.hash_bindings.contains("n"));
        assert!(ctx.float_bindings.contains("total"));
        assert!(ctx.float_bindings.contains("acc"));
        assert!(
            !ctx.float_bindings.contains("v"),
            "literal deep in an initializer is not a float binding"
        );
        assert!(!ctx.float_bindings.contains("k"));
    }

    #[test]
    fn parallel_regions_span_call_args_and_track_declared() {
        let ctx = FileContext::analyze(
            "fn f(items: &[f64]) -> f64 {\n\
                 let mut total = 0.0;\n\
                 let parts = parallel_map(items, 4, |i, x| { let y = x * 2.0; y });\n\
                 parts.iter().sum::<f64>()\n\
             }\n",
        );
        assert_eq!(ctx.parallel_regions.len(), 1);
        let region = &ctx.parallel_regions[0];
        assert_eq!(region.callee, "parallel_map");
        assert!(region.declared.contains("i"));
        assert!(region.declared.contains("x"));
        assert!(region.declared.contains("y"));
        assert!(!region.declared.contains("total"));
        // The trailing `.sum` lies outside the region.
        let sum = ctx.sig.iter().position(|t| t.text == "sum").unwrap();
        assert!(!region.contains(sum));
    }

    #[test]
    fn statement_range_brackets_by_semicolons_and_braces() {
        let ctx = FileContext::analyze("fn f() { let a = 1; let b = 2; }\n");
        let b = ctx.sig.iter().position(|t| t.text == "b").unwrap();
        let (start, end) = ctx.statement_range(b);
        let texts: Vec<&str> = ctx.sig[start..end]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, vec!["let", "b", "=", "2", ";"]);
    }

    #[test]
    fn float_literal_classification() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1e3"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0xEf"));
    }
}
