//! R4 — layering: parses `crates/*/Cargo.toml` (a minimal, line-oriented
//! TOML subset: section headers and `key = value` pairs) and rejects
//! forbidden dependency edges.
//!
//! The workspace is layered; a crate may depend only on *strictly lower*
//! layers. In particular the foundations (`queueing`, `timeseries`,
//! `workload`) and estimators (`demand`, `perfmodel`) must never depend on
//! `core` or `sim`, and nothing but the harness may depend on `bench`:
//!
//! | Layer | Crates |
//! |-------|--------|
//! | 0     | `obs` |
//! | 1     | `queueing`, `timeseries`, `workload` |
//! | 2     | `demand`, `perfmodel` |
//! | 3     | `scalers`, `sim`, `metrics` |
//! | 4     | `core` |
//! | 5     | `conformance` |
//! | 6     | `bench` |
//!
//! Only `[dependencies]` edges are checked: dev-dependencies exercise test
//! scaffolding and may reach sideways. A violating line can be suppressed
//! with `# audit:allow(layering): why` on or directly above it.

use crate::{Finding, RuleId};
use std::path::Path;

/// Layer assignment by crate directory name. Unlisted crates (`xtask`,
/// fixtures, future tooling) are not layered and produce no findings.
const LAYERS: &[(&str, u8)] = &[
    ("obs", 0),
    ("queueing", 1),
    ("timeseries", 1),
    ("workload", 1),
    ("demand", 2),
    ("perfmodel", 2),
    ("scalers", 3),
    ("sim", 3),
    ("metrics", 3),
    ("core", 4),
    ("conformance", 5),
    ("bench", 6),
];

fn layer_of(crate_dir: &str) -> Option<u8> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == crate_dir)
        .map(|&(_, layer)| layer)
}

/// Maps a dependency *package* name to its crate directory name, for
/// first-party packages (`chamulteon`, `chamulteon-forecast`,
/// `chamulteon-<dir>`). Third-party (vendored) packages map to `None`.
fn dep_crate_dir(package: &str) -> Option<&str> {
    match package {
        "chamulteon" => Some("core"),
        "chamulteon-forecast" => Some("timeseries"),
        _ => package.strip_prefix("chamulteon-"),
    }
}

/// Checks the `[dependencies]` edges of one crate manifest.
pub fn check_layering(crate_dir: &str, rel_path: &Path, text: &str) -> Vec<Finding> {
    let Some(crate_layer) = layer_of(crate_dir) else {
        return Vec::new();
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut findings = Vec::new();
    let mut in_dependencies = false;

    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // `[dependencies]` and `[target.….dependencies]`, but not
            // `[dev-dependencies]` or `[build-dependencies]`.
            let header = line.trim_matches(['[', ']']);
            in_dependencies = header == "dependencies" || header.ends_with(".dependencies");
            continue;
        }
        if !in_dependencies || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(key) = line
            .split(['=', '.', ' ', '\t'])
            .next()
            .map(|k| k.trim_matches('"'))
        else {
            continue;
        };
        let Some(dep_dir) = dep_crate_dir(key) else {
            continue;
        };
        let Some(dep_layer) = layer_of(dep_dir) else {
            continue;
        };
        if dep_layer >= crate_layer && !toml_allowed(&lines, idx) {
            findings.push(Finding {
                rule: RuleId::Layering,
                file: rel_path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "`{crate_dir}` (layer {crate_layer}) must not depend on `{dep_dir}` \
                     (layer {dep_layer}): dependencies must point strictly downward"
                ),
            });
        }
    }
    findings
}

/// `audit:allow(layering)` on the dependency line or a `#` comment line
/// directly above it.
fn toml_allowed(lines: &[&str], idx: usize) -> bool {
    let marker = |line: &str| {
        line.find("audit:allow(").is_some_and(|pos| {
            line[pos + "audit:allow(".len()..]
                .split(')')
                .next()
                .and_then(RuleId::parse)
                == Some(RuleId::Layering)
        })
    };
    if marker(lines[idx]) {
        return true;
    }
    idx > 0 && lines[idx - 1].trim_start().starts_with('#') && marker(lines[idx - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(deps: &str) -> String {
        format!("[package]\nname = \"x\"\n\n[dependencies]\n{deps}\n[dev-dependencies]\nchamulteon.workspace = true\n")
    }

    #[test]
    fn upward_edge_rejected_with_line_number() {
        let text = manifest("chamulteon.workspace = true\n");
        let findings = check_layering("queueing", Path::new("crates/queueing/Cargo.toml"), &text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
        assert!(findings[0].message.contains("`queueing`"));
        assert!(findings[0].message.contains("`core`"));
    }

    #[test]
    fn sideways_edge_rejected_downward_accepted() {
        let text = manifest("chamulteon-sim = { path = \"../sim\" }\n");
        assert_eq!(
            check_layering("metrics", Path::new("m"), &text).len(),
            1,
            "same-layer edge must be rejected"
        );
        let text = manifest("chamulteon-queueing.workspace = true\nrand.workspace = true\n");
        assert!(check_layering("metrics", Path::new("m"), &text).is_empty());
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let text = manifest("");
        assert!(check_layering("queueing", Path::new("m"), &text).is_empty());
    }

    #[test]
    fn bench_may_depend_on_everything_but_nothing_on_bench() {
        let every = manifest(
            "chamulteon.workspace = true\nchamulteon-sim.workspace = true\nchamulteon-queueing.workspace = true\n",
        );
        assert!(check_layering("bench", Path::new("m"), &every).is_empty());
        let text = manifest("chamulteon-bench.workspace = true\n");
        assert_eq!(check_layering("core", Path::new("m"), &text).len(), 1);
    }

    #[test]
    fn allow_comment_suppresses_single_edge() {
        let text = manifest(
            "# audit:allow(layering): transitional, tracked in ROADMAP\nchamulteon.workspace = true\nchamulteon-sim.workspace = true\n",
        );
        let findings = check_layering("demand", Path::new("m"), &text);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`sim`"));
    }

    #[test]
    fn conformance_sits_between_core_and_bench() {
        // The oracles may read the whole decision path...
        let deps = manifest(
            "chamulteon.workspace = true\nchamulteon-queueing.workspace = true\nchamulteon-perfmodel.workspace = true\n",
        );
        assert!(check_layering("conformance", Path::new("m"), &deps).is_empty());
        // ...the harness may invoke the oracles...
        let harness = manifest("chamulteon-conformance.workspace = true\n");
        assert!(check_layering("bench", Path::new("m"), &harness).is_empty());
        // ...but the decision path must never depend on its own auditors.
        assert_eq!(check_layering("core", Path::new("m"), &harness).len(), 1);
        let upward = manifest("chamulteon-bench.workspace = true\n");
        assert_eq!(
            check_layering("conformance", Path::new("m"), &upward).len(),
            1
        );
    }

    #[test]
    fn unlisted_crates_are_not_layered() {
        let text = manifest("chamulteon.workspace = true\n");
        assert!(check_layering("xtask", Path::new("m"), &text).is_empty());
    }
}
