//! R9 — the suppression ledger.
//!
//! Every audit exemption must be *visible and counted*: an
//! `audit:allow(<rule>)` marker with a mandatory justification. Two
//! spellings are accepted:
//!
//! ```text
//! // audit:allow(lossy-cast): counters fit f64's 53-bit integer range
//! // audit: allow(R6, "iteration feeds a BTreeMap two statements later")
//! ```
//!
//! This module parses the markers, collects the well-formed ones into the
//! reported [`Suppression`] ledger, and emits R9 findings for the rest: a
//! marker with no reason, an empty reason, or an unknown rule name is
//! itself a violation — a typo in a rule name would otherwise silently
//! suppress nothing while looking like it suppressed something.
//!
//! R9 findings are not themselves suppressible: a justification-free
//! exemption cannot excuse its own lack of justification.

use crate::{Finding, RuleId};
use std::path::Path;

/// Comment syntax of the file being scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentStyle {
    /// `//` comments (Rust sources).
    Rust,
    /// `#` comments (TOML manifests).
    Toml,
}

impl CommentStyle {
    fn starts_before(self, line: &str, pos: usize) -> bool {
        let prefix = &line[..pos];
        match self {
            CommentStyle::Rust => prefix.contains("//"),
            CommentStyle::Toml => prefix.contains('#'),
        }
    }
}

/// One parsed `audit:allow` marker, before validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// The rule argument as written (`R6`, `determinism`, …).
    pub rule_text: String,
    /// The resolved rule, when `rule_text` names one.
    pub rule: Option<RuleId>,
    /// The justification, trimmed; `None` when absent or empty.
    pub reason: Option<String>,
}

/// One validated ledger entry: a well-formed exemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The suppressed rule.
    pub rule: RuleId,
    /// File carrying the marker, relative to the workspace root.
    pub file: std::path::PathBuf,
    /// 1-based line of the marker.
    pub line: usize,
    /// The mandatory justification.
    pub reason: String,
}

/// Parses every `audit:allow` marker on one line. Markers must appear in
/// comment position (after `//` or `#`, per `style`).
pub fn parse_markers(line: &str, style: CommentStyle) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = line[search_from..].find("audit:") {
        let at = search_from + rel;
        search_from = at + "audit:".len();
        if !style.starts_before(line, at) {
            continue;
        }
        let rest = line[at + "audit:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some((inside, after)) = split_at_closing_paren(args) else {
            continue;
        };
        // Inline form: `allow(R6, "reason")`.
        let (rule_text, mut reason) = match split_top_level_comma(inside) {
            Some((rule, arg)) => (rule.trim(), Some(unquote(arg.trim()).to_owned())),
            None => (inside.trim(), None),
        };
        // Trailing form: `allow(R6): reason`.
        if reason.is_none() {
            if let Some(tail) = after.trim_start().strip_prefix(':') {
                reason = Some(tail.trim().to_owned());
            }
        }
        let reason = reason
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty());
        markers.push(AllowMarker {
            rule_text: rule_text.to_owned(),
            rule: RuleId::parse(rule_text),
            reason,
        });
    }
    markers
}

/// Whether any marker on `line` suppresses `rule` (reason quality is
/// enforced separately, by R9).
pub fn line_allows(line: &str, style: CommentStyle, rule: RuleId) -> bool {
    parse_markers(line, style)
        .iter()
        .any(|m| m.rule == Some(rule))
}

/// Scans one file's lines for markers, returning the R9 findings for
/// malformed ones and the ledger entries for well-formed ones.
pub fn scan_file(
    rel_path: &Path,
    lines: &[&str],
    style: CommentStyle,
) -> (Vec<Finding>, Vec<Suppression>) {
    let mut findings = Vec::new();
    let mut ledger = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for marker in parse_markers(line, style) {
            let lineno = idx + 1;
            match (marker.rule, marker.reason) {
                (Some(rule), Some(reason)) => ledger.push(Suppression {
                    rule,
                    file: rel_path.to_path_buf(),
                    line: lineno,
                    reason,
                }),
                (None, _) => findings.push(Finding {
                    rule: RuleId::SuppressionLedger,
                    file: rel_path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`audit:allow({})` names no known rule: the marker suppresses nothing",
                        marker.rule_text
                    ),
                }),
                (Some(rule), None) => findings.push(Finding {
                    rule: RuleId::SuppressionLedger,
                    file: rel_path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`audit:allow({})` carries no justification: every exemption needs a \
                         reason in the ledger",
                        rule.id()
                    ),
                }),
            }
        }
    }
    (findings, ledger)
}

/// Splits `args` (the text after `allow(`) at the matching `)`,
/// respecting a double-quoted segment with backslash escapes. Returns
/// `(inside, after)`.
fn split_at_closing_paren(args: &str) -> Option<(&str, &str)> {
    let mut in_string = false;
    let mut escaped = false;
    let mut depth = 0u32;
    for (i, c) in args.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '(' if !in_string => depth += 1,
            ')' if !in_string => {
                if depth == 0 {
                    return Some((&args[..i], &args[i + 1..]));
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

/// Splits at the first top-level (outside quotes) comma.
fn split_top_level_comma(inside: &str) -> Option<(&str, &str)> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inside.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => return Some((&inside[..i], &inside[i + 1..])),
            _ => {}
        }
    }
    None
}

/// Strips one layer of double quotes, if present.
fn unquote(text: &str) -> &str {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn rust_markers(line: &str) -> Vec<AllowMarker> {
        parse_markers(line, CommentStyle::Rust)
    }

    #[test]
    fn legacy_syntax_with_trailing_reason() {
        let m = rust_markers("let x = y as f64; // audit:allow(lossy-cast): counts fit f64");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, Some(RuleId::LossyCast));
        assert_eq!(m[0].reason.as_deref(), Some("counts fit f64"));
    }

    #[test]
    fn inline_syntax_with_quoted_reason() {
        let m = rust_markers("// audit: allow(R6, \"result feeds a BTreeMap (sorted) merge\")");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, Some(RuleId::Determinism));
        assert_eq!(
            m[0].reason.as_deref(),
            Some("result feeds a BTreeMap (sorted) merge")
        );
    }

    #[test]
    fn missing_and_empty_reasons_are_detected() {
        for line in [
            "// audit:allow(R6)",
            "// audit:allow(determinism):   ",
            "// audit: allow(R8, \"\")",
        ] {
            let m = rust_markers(line);
            assert_eq!(m.len(), 1, "{line}");
            assert!(m[0].rule.is_some(), "{line}");
            assert_eq!(m[0].reason, None, "{line}");
        }
    }

    #[test]
    fn unknown_rules_are_preserved_verbatim() {
        let m = rust_markers("// audit:allow(R42): no such rule");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, None);
        assert_eq!(m[0].rule_text, "R42");
    }

    #[test]
    fn markers_require_comment_position() {
        assert!(rust_markers("let s = \"audit:allow(R6): nope\";").is_empty());
        assert_eq!(
            parse_markers("# audit:allow(layering): fixture", CommentStyle::Toml).len(),
            1
        );
        assert!(parse_markers("audit:allow(layering): x", CommentStyle::Toml).is_empty());
    }

    #[test]
    fn scan_file_splits_findings_from_ledger() {
        let lines = [
            "// audit:allow(R1): startup-only path",
            "// audit:allow(R6)",
            "// audit:allow(nonsense): reason present",
            "let ok = 1;",
        ];
        let (findings, ledger) = scan_file(
            &PathBuf::from("crates/x/src/lib.rs"),
            &lines,
            CommentStyle::Rust,
        );
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].rule, RuleId::PanicFreedom);
        assert_eq!(ledger[0].line, 1);
        assert_eq!(ledger[0].reason, "startup-only path");
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == RuleId::SuppressionLedger));
        assert!(findings[0].message.contains("no justification"));
        assert!(findings[1].message.contains("no known rule"));
    }

    #[test]
    fn line_allows_accepts_both_syntaxes() {
        assert!(line_allows(
            "// audit:allow(panic-freedom): why",
            CommentStyle::Rust,
            RuleId::PanicFreedom
        ));
        assert!(line_allows(
            "// audit: allow(R1, \"why\")",
            CommentStyle::Rust,
            RuleId::PanicFreedom
        ));
        // Reasonless markers still suppress; R9 reports them separately,
        // so the diagnostic points at the real problem (the missing
        // reason), not a phantom unsuppressed finding.
        assert!(line_allows(
            "// audit:allow(R1)",
            CommentStyle::Rust,
            RuleId::PanicFreedom
        ));
        assert!(!line_allows(
            "// audit:allow(R1): why",
            CommentStyle::Rust,
            RuleId::NanSafety
        ));
    }
}
