//! Source stripping: a light lexer that blanks comments and string-literal
//! contents while preserving line structure, plus `#[cfg(test)]` region
//! detection. Line rules run on the stripped view, so `panic!` inside a doc
//! comment or an error message never false-positives.

/// A file prepared for line-rule scanning.
#[derive(Debug)]
pub struct StrippedSource {
    /// Lines with comments and string contents blanked.
    pub lines: Vec<String>,
    /// Whether each line is a doc comment (`///`, `//!` or `#[doc`) in the
    /// original source — needed by the doc-coverage rule, which would
    /// otherwise be blinded by the stripping.
    pub doc_comment: Vec<bool>,
    /// Whether each line lies inside a `#[cfg(test)]` item.
    pub in_test_region: Vec<bool>,
}

/// Strips `text` and computes the line classifications.
pub fn strip_source(text: &str) -> StrippedSource {
    let stripped = strip_to_string(text);
    let lines: Vec<String> = stripped.split('\n').map(ToOwned::to_owned).collect();
    let doc_comment = text
        .split('\n')
        .map(|line| {
            let t = line.trim_start();
            t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc")
        })
        .collect();
    let in_test_region = mark_test_regions(&lines);
    StrippedSource {
        lines,
        doc_comment,
        in_test_region,
    }
}

/// Lexer state for [`strip_to_string`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Replaces comment bodies and string/char-literal contents with spaces.
/// Newlines are preserved, so line numbers in the output match the input.
#[allow(clippy::cast_possible_truncation)] // hash counts are tiny
fn strip_to_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // Consume the prefix (`r`, `br`, `rb`) and hashes up to
                    // the opening quote.
                    let mut j = i;
                    while chars.get(j).is_some_and(|&p| p == 'r' || p == 'b') {
                        out.push(chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        out.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    out.push('"');
                    i = j + 1;
                    state = State::RawStr(hashes);
                }
                '\'' if is_char_literal_start(&chars, i) => {
                    state = State::CharLit;
                    out.push('\'');
                    i += 1;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }
    out
}

/// Whether position `i` starts a raw (byte) string literal: `r"`, `r#"`,
/// `br"`, `rb"` etc. Plain identifiers ending in `r` (`for r in …`) and the
/// `b'x'` byte-char form must not match.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Reject when the prefix continues an identifier (`solver"…` is not
    // possible, but `var` in `var"` would otherwise match on its final r).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    let mut saw_r = false;
    // Accept at most one `r` and at most one `b`, in either order.
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') if !saw_r => {
                saw_r = true;
                j += 1;
            }
            Some('b') if j == i => {
                j += 1;
            }
            _ => break,
        }
    }
    if !saw_r {
        // `b"…"` is a plain byte string: handled by the normal Str state
        // via its quote, so no raw handling needed.
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the `"` at position `i` is followed by `hashes` `#`s.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Whether the `'` at position `i` starts a char literal (as opposed to a
/// lifetime like `'a` or `'static`).
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item. The attribute's
/// item is delimited by its matching braces (a `mod tests { … }` block) or,
/// for brace-less items, by the first `;` at brace depth zero.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut marked = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if marked[i] || !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'scan: for (j, line) in lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for flag in marked.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        i = end + 1;
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = strip_source(
            "let x = 1; // panic! in comment\nlet m = \"calls unwrap() inside\";\n/* block\npanic! */ let y = 2;\n",
        );
        assert!(!s.lines[0].contains("panic!"));
        assert!(s.lines[0].contains("let x = 1;"));
        assert!(!s.lines[1].contains("unwrap"));
        assert!(s.lines[1].contains("let m ="));
        assert!(!s.lines[2].contains("panic"));
        assert!(s.lines[3].contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = strip_source(
            "let a = r#\"panic! \"quoted\" unwrap()\"#;\nlet b = \"esc \\\" panic!\";\nlet c = a.unwrap();\n",
        );
        assert!(!s.lines[0].contains("panic"));
        assert!(!s.lines[1].contains("panic"));
        assert!(s.lines[2].contains(".unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s =
            strip_source("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet n = '\\n';\n");
        assert_eq!(s.lines[0], "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(s.lines[1], "let c = ' ';");
        assert_eq!(s.lines[2], "let n = '  ';");
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let text = "let s = \"line one\nline two with panic!\nend\";\nlet t = 1.unwrap();\n";
        let s = strip_source(text);
        assert_eq!(s.lines.len(), text.split('\n').count());
        assert!(!s.lines[1].contains("panic"));
        assert!(s.lines[3].contains("unwrap"));
    }

    #[test]
    fn test_region_spans_mod_block() {
        let s = strip_source(
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn b() {}\n}\nfn c() {}\n",
        );
        // The trailing newline yields one final empty line.
        assert_eq!(
            s.in_test_region,
            vec![false, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let s = strip_source("#[cfg(test)]\nuse helpers::*;\nfn real() {}\n");
        assert_eq!(s.in_test_region, vec![true, true, false, false]);
    }

    #[test]
    fn doc_comment_lines_flagged() {
        let s = strip_source("/// docs\npub fn f() {}\n//! inner\n#[doc = \"x\"]\n");
        assert_eq!(s.doc_comment, vec![true, false, true, true, false]);
    }
}
