//! The stripped line view: comments and string-literal contents blanked,
//! line structure preserved, plus `#[cfg(test)]` region detection.
//!
//! Since the token-level lexer landed (see [`crate::lexer`]), this module
//! is a thin projection over it rather than a second hand-rolled scanner:
//! the blanking is [`crate::lexer::stripped_view`] over the lossless token
//! stream, so the line rules and the semantic rules can never disagree
//! about what is a comment and what is code.

use crate::lexer;

/// A file prepared for line-rule scanning.
#[derive(Debug)]
pub struct StrippedSource {
    /// Lines with comments and string contents blanked.
    pub lines: Vec<String>,
    /// Whether each line is a doc comment (`///`, `//!` or `#[doc`) in the
    /// original source — needed by the doc-coverage rule, which would
    /// otherwise be blinded by the stripping.
    pub doc_comment: Vec<bool>,
    /// Whether each line lies inside a `#[cfg(test)]` item.
    pub in_test_region: Vec<bool>,
}

/// Strips `text` and computes the line classifications.
pub fn strip_source(text: &str) -> StrippedSource {
    let tokens = lexer::lex(text);
    let stripped = lexer::stripped_view(&tokens);
    let lines: Vec<String> = stripped.split('\n').map(ToOwned::to_owned).collect();
    let doc_comment = text
        .split('\n')
        .map(|line| {
            let t = line.trim_start();
            t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc")
        })
        .collect();
    let in_test_region = mark_test_regions(&lines);
    StrippedSource {
        lines,
        doc_comment,
        in_test_region,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item. The attribute's
/// item is delimited by its matching braces (a `mod tests { … }` block) or,
/// for brace-less items, by the first `;` at brace depth zero. Runs on the
/// stripped lines, so braces inside literals cannot skew the matching.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut marked = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if marked[i] || !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'scan: for (j, line) in lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for flag in marked.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        i = end + 1;
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = strip_source(
            "let x = 1; // panic! in comment\nlet m = \"calls unwrap() inside\";\n/* block\npanic! */ let y = 2;\n",
        );
        assert!(!s.lines[0].contains("panic!"));
        assert!(s.lines[0].contains("let x = 1;"));
        assert!(!s.lines[1].contains("unwrap"));
        assert!(s.lines[1].contains("let m ="));
        assert!(!s.lines[2].contains("panic"));
        assert!(s.lines[3].contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = strip_source(
            "let a = r#\"panic! \"quoted\" unwrap()\"#;\nlet b = \"esc \\\" panic!\";\nlet c = a.unwrap();\n",
        );
        assert!(!s.lines[0].contains("panic"));
        assert!(!s.lines[1].contains("panic"));
        assert!(s.lines[2].contains(".unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s =
            strip_source("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet n = '\\n';\n");
        assert_eq!(s.lines[0], "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(s.lines[1], "let c = ' ';");
        assert_eq!(s.lines[2], "let n = '  ';");
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let text = "let s = \"line one\nline two with panic!\nend\";\nlet t = 1.unwrap();\n";
        let s = strip_source(text);
        assert_eq!(s.lines.len(), text.split('\n').count());
        assert!(!s.lines[1].contains("panic"));
        assert!(s.lines[3].contains("unwrap"));
    }

    #[test]
    fn test_region_spans_mod_block() {
        let s = strip_source(
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn b() {}\n}\nfn c() {}\n",
        );
        // The trailing newline yields one final empty line.
        assert_eq!(
            s.in_test_region,
            vec![false, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let s = strip_source("#[cfg(test)]\nuse helpers::*;\nfn real() {}\n");
        assert_eq!(s.in_test_region, vec![true, true, false, false]);
    }

    #[test]
    fn doc_comment_lines_flagged() {
        let s = strip_source("/// docs\npub fn f() {}\n//! inner\n#[doc = \"x\"]\n");
        assert_eq!(s.doc_comment, vec![true, false, true, true, false]);
    }
}
