//! The semantic rule families: R3 (token-stream lossy casts), R6
//! (determinism), R7 (float-reduction order) and R8 (concurrency
//! discipline). All run over a [`FileContext`] — the lexed token stream
//! plus import resolution, binding tracking and parallel-region spans —
//! so they see through line breaks, comments and string literals.
//!
//! Why these rules exist: every speedup since the incremental-solver PR
//! is justified by bit-identity between optimized and reference paths. A
//! stray `HashMap` iteration feeding a float sum, a wall-clock read in a
//! decision path, or an ad-hoc lock in a worker closure silently breaks
//! that reproducibility in ways tests only catch when the thread schedule
//! happens to differ. These checks reject the *constructs*, so the
//! property holds by construction; deliberate exceptions go through the
//! R9 suppression ledger.

use crate::lexer::TokenKind;
use crate::scopes::{is_float_literal, FileContext};
use crate::RuleId;

/// One semantic finding before path/suppression filtering: 1-based line,
/// rule, message.
pub type SemFinding = (usize, RuleId, String);

/// Hash-collection methods that observe iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Tokens that make an iteration-order-dependent chain order-*independent*
/// again within the same statement: sorting, collecting into an ordered
/// container, or reducing with an order-insensitive operation.
const ORDER_NORMALIZERS: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "is_empty",
    "all",
    "any",
    "contains",
    "contains_key",
];

/// `std::sync` items whose presence outside the pool violates R8. `Arc`
/// and `Weak` are exempt: immutable sharing has no ordering side.
fn is_forbidden_sync_path(path: &str) -> bool {
    path.strip_prefix("std::sync::").is_some_and(|rest| {
        let head = rest.split("::").next().unwrap_or(rest);
        head != "Arc" && head != "Weak"
    })
}

/// Which rule families apply to the file being checked.
#[derive(Debug, Clone, Copy)]
pub struct Applicability {
    /// R6 hash/env and R7: decision-path crates and modules.
    pub decision_path: bool,
    /// R3: capacity-math crates.
    pub checked_casts: bool,
    /// R6 time: false inside the obs/bench timing whitelist.
    pub wall_clock_banned: bool,
    /// R8: false inside `bench::pool` (the one sanctioned home of
    /// std::sync primitives).
    pub concurrency_banned: bool,
}

/// Runs R3 + R6 + R7 + R8 over one analyzed file. Line-level exemptions
/// (test regions, allow markers) are applied by the caller.
pub fn check_file(ctx: &FileContext, app: Applicability) -> Vec<SemFinding> {
    let mut findings = Vec::new();
    // Statement ranges already claimed by an R7 finding: R6 skips these so
    // one defect yields the sharper diagnostic, not two overlapping ones.
    let mut r7_statements: Vec<(usize, usize)> = Vec::new();

    if app.checked_casts {
        check_lossy_casts(ctx, &mut findings);
    }
    if app.decision_path {
        check_float_reductions(ctx, &mut findings, &mut r7_statements);
        check_hash_iteration(ctx, &r7_statements, &mut findings);
        check_env_dependence(ctx, &mut findings);
    }
    if app.wall_clock_banned {
        check_wall_clock(ctx, &mut findings);
    }
    if app.concurrency_banned {
        check_concurrency(ctx, &mut findings);
    }
    findings.sort_by(|a, b| (a.0, a.1.id()).cmp(&(b.0, b.1.id())));
    findings
}

/// Cast targets R3 rejects (casting *to* these truncates, saturates or
/// loses precision silently).
const CAST_TARGETS: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "f64", "f32",
];

/// R3 — lossy casts, on the token stream: `expr as u64` is flagged even
/// when a line break separates `as` from its target. `use … as name`
/// renames are excluded by checking the enclosing statement.
fn check_lossy_casts(ctx: &FileContext, findings: &mut Vec<SemFinding>) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if sig[i].kind != TokenKind::Ident || sig[i].text != "as" {
            continue;
        }
        let Some(next) = sig.get(i + 1) else { continue };
        if next.kind != TokenKind::Ident || !CAST_TARGETS.contains(&next.text.as_str()) {
            continue;
        }
        // `use path as alias;` / `pub use … as …;` are renames, not casts.
        let (start, _) = ctx.statement_range(i);
        if sig[start..i].iter().any(|t| t.text == "use") {
            continue;
        }
        findings.push((
            sig[i].line,
            RuleId::LossyCast,
            format!(
                "bare `as {}` cast in capacity math: use `try_from`/`from` or a checked helper",
                next.text
            ),
        ));
    }
}

/// Whether the sig token at `i` starts a hash-iteration call:
/// `<hash binding> . <iter method> (`.
fn hash_iteration_at(ctx: &FileContext, i: usize) -> bool {
    let sig = &ctx.sig;
    sig[i].kind == TokenKind::Ident
        && ctx.hash_bindings.contains(&sig[i].text)
        && sig.get(i + 1).is_some_and(|t| t.text == ".")
        && sig
            .get(i + 2)
            .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
        && sig.get(i + 3).is_some_and(|t| t.text == "(")
}

/// Whether the statement span contains an order normalizer after `from`.
fn normalized_after(ctx: &FileContext, from: usize, end: usize) -> bool {
    ctx.sig[from..end].iter().any(|t| {
        t.kind == TokenKind::Ident
            && (t.text.starts_with("sort") || ORDER_NORMALIZERS.contains(&t.text.as_str()))
    })
}

/// R6 — iteration over `std::collections::HashMap`/`HashSet` in
/// decision-path code, unless the same statement immediately
/// order-normalizes the result (sort, ordered collect, or an
/// order-insensitive reduction).
fn check_hash_iteration(
    ctx: &FileContext,
    r7_statements: &[(usize, usize)],
    findings: &mut Vec<SemFinding>,
) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if hash_iteration_at(ctx, i) {
            let (start, end) = ctx.statement_range(i);
            if r7_statements.contains(&(start, end)) {
                continue; // R7 reported the sharper float-order diagnostic
            }
            if normalized_after(ctx, i, end) {
                continue;
            }
            // The collect-then-sort idiom puts the normalizer on the next
            // statement: `let mut v: Vec<_> = m.keys().collect(); v.sort();`.
            if end < ctx.sig.len() {
                let (_, next_end) = ctx.statement_range(end);
                if normalized_after(ctx, end, next_end) {
                    continue;
                }
            }
            findings.push((
                sig[i + 2].line,
                RuleId::Determinism,
                format!(
                    "iteration over hash-ordered `{}` (`.{}()`): order is nondeterministic — \
                     sort, collect into a BTree container, or reduce order-insensitively",
                    sig[i].text,
                    sig[i + 2].text
                ),
            ));
        }
        // `for x in &map { … }`: the loop body observes hash order and
        // there is no same-statement normalizer to look for.
        if sig[i].kind == TokenKind::Ident && sig[i].text == "for" {
            let limit = (i + 30).min(sig.len());
            let Some(in_pos) = (i + 1..limit).find(|&j| sig[j].text == "in") else {
                continue;
            };
            for j in in_pos + 1..limit {
                let t = &sig[j];
                if t.text == "{" {
                    break;
                }
                if t.kind == TokenKind::Ident && ctx.hash_bindings.contains(&t.text) {
                    // Iterating a normalized view (`map.keys().collect::<
                    // BTreeSet<_>>()`) in the loop head is fine.
                    let head_end = (j..limit).find(|&k| sig[k].text == "{").unwrap_or(limit);
                    if !normalized_after(ctx, j, head_end) {
                        findings.push((
                            t.line,
                            RuleId::Determinism,
                            format!(
                                "`for` loop over hash-ordered `{}`: iteration order is \
                                 nondeterministic in decision-path code",
                                t.text
                            ),
                        ));
                    }
                    break;
                }
            }
        }
    }
}

/// R6 — wall-clock reads (`Instant::now`, `SystemTime::…`) outside the
/// obs/bench timing whitelist. Storing or passing an `Instant` is fine;
/// *reading the clock* is what diverges between runs.
fn check_wall_clock(ctx: &FileContext, findings: &mut Vec<SemFinding>) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if sig[i].kind != TokenKind::Ident {
            continue;
        }
        // Only association (`X::…`) reads the clock through the type.
        if !(sig.get(i + 1).is_some_and(|t| t.text == ":")
            && sig.get(i + 2).is_some_and(|t| t.text == ":"))
        {
            continue;
        }
        for time_type in ["std::time::Instant", "std::time::SystemTime"] {
            if ctx.resolves_to(i, time_type) {
                findings.push((
                    sig[i].line,
                    RuleId::Determinism,
                    format!(
                        "wall-clock read through `{time_type}`: decision paths must be \
                         reproducible — timing belongs in the obs/bench whitelist"
                    ),
                ));
            }
        }
    }
}

/// R6 — `std::env` reads and thread-identity branching in decision-path
/// code: decisions must be pure functions of their inputs.
fn check_env_dependence(ctx: &FileContext, findings: &mut Vec<SemFinding>) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if sig[i].kind != TokenKind::Ident {
            continue;
        }
        let assoc = sig.get(i + 1).is_some_and(|t| t.text == ":")
            && sig.get(i + 2).is_some_and(|t| t.text == ":");
        if !assoc {
            continue;
        }
        let in_use = {
            let (start, _) = ctx.statement_range(i);
            sig[start..i].iter().any(|t| t.text == "use")
        };
        if in_use {
            continue;
        }
        if sig[i].text == "env" && ctx.resolves_to(i, "std::env") {
            findings.push((
                sig[i].line,
                RuleId::Determinism,
                "process-environment read in decision-path code: decisions must be pure \
                 functions of their inputs"
                    .to_owned(),
            ));
        }
        if sig[i].text == "thread"
            && ctx.resolves_to(i, "std::thread")
            && sig.get(i + 3).is_some_and(|t| t.text == "current")
        {
            findings.push((
                sig[i].line,
                RuleId::Determinism,
                "thread-identity dependence in decision-path code: behavior must not vary \
                 with the executing thread"
                    .to_owned(),
            ));
        }
    }
}

/// R7 — order-sensitive f64 reductions: a float `sum`/`product`/`fold`
/// fed by hash iteration, or a captured float accumulator mutated inside
/// a `parallel_map`/`spawn` closure. Merges must go through the pool's
/// deterministic input-order result vector instead.
fn check_float_reductions(
    ctx: &FileContext,
    findings: &mut Vec<SemFinding>,
    r7_statements: &mut Vec<(usize, usize)>,
) {
    let sig = &ctx.sig;
    for i in 0..sig.len().saturating_sub(1) {
        if sig[i].text != "." {
            continue;
        }
        let method = &sig[i + 1];
        let float_reduce = match method.text.as_str() {
            "sum" | "product" => {
                // `.sum::<f64>()` turbofish names the element type.
                sig.get(i + 2).is_some_and(|t| t.text == ":")
                    && sig.get(i + 3).is_some_and(|t| t.text == ":")
                    && sig.get(i + 4).is_some_and(|t| t.text == "<")
                    && sig
                        .get(i + 5)
                        .is_some_and(|t| t.text == "f64" || t.text == "f32")
            }
            "fold" => {
                // `.fold(0.0, …)` with a float-literal seed.
                sig.get(i + 2).is_some_and(|t| t.text == "(")
                    && sig
                        .get(i + 3)
                        .is_some_and(|t| t.kind == TokenKind::Number && is_float_literal(&t.text))
            }
            _ => false,
        };
        if !float_reduce {
            continue;
        }
        let (start, end) = ctx.statement_range(i);
        if (start..end).any(|j| hash_iteration_at(ctx, j)) {
            findings.push((
                method.line,
                RuleId::FloatOrder,
                format!(
                    "float `.{}` over hash-ordered iteration: f64 reduction order changes the \
                     result bits — iterate an ordered view instead",
                    method.text
                ),
            ));
            r7_statements.push((start, end));
        }
    }

    for region in &ctx.parallel_regions {
        for i in region.start..region.end.min(sig.len()) {
            if sig[i].kind == TokenKind::Ident
                && ctx.float_bindings.contains(&sig[i].text)
                && !region.declared.contains(&sig[i].text)
                && sig
                    .get(i + 1)
                    .is_some_and(|t| matches!(t.text.as_str(), "+" | "-" | "*"))
                && sig.get(i + 2).is_some_and(|t| t.text == "=")
            {
                findings.push((
                    sig[i].line,
                    RuleId::FloatOrder,
                    format!(
                        "captured float accumulator `{}` mutated inside a `{}` closure: merge \
                         through the pool's input-order results, not shared state",
                        sig[i].text, region.callee
                    ),
                ));
            }
        }
    }
}

/// R8 — concurrency discipline: `std::sync` primitives (everything but
/// `Arc`/`Weak`), thread spawning, and lock acquisition in per-item
/// closures are confined to `bench::pool`, whose deterministic-merge
/// contract is the one audited home for shared-state concurrency.
fn check_concurrency(ctx: &FileContext, findings: &mut Vec<SemFinding>) {
    let sig = &ctx.sig;
    // `use` statements span to the `;`, including `{…}` groups — a plain
    // statement-range walk-back stops at the group's brace, so mark the
    // spans up front.
    let mut in_use_stmt = vec![false; sig.len()];
    let mut u = 0;
    while u < sig.len() {
        if sig[u].kind == TokenKind::Ident && sig[u].text == "use" {
            while u < sig.len() && sig[u].text != ";" {
                in_use_stmt[u] = true;
                u += 1;
            }
        }
        u += 1;
    }
    // (line → names) for grouped import findings, in first-seen order.
    let mut import_lines: Vec<(usize, Vec<String>)> = Vec::new();
    for i in 0..sig.len() {
        if sig[i].kind != TokenKind::Ident {
            continue;
        }
        let in_use = in_use_stmt[i];
        let resolved = ctx.resolve(i);
        let imported_leaf = ctx
            .imports
            .get(&sig[i].text)
            .is_some_and(|p| p == &resolved);

        if in_use && imported_leaf && is_forbidden_sync_path(&resolved) {
            // One grouped finding per `use` line.
            match import_lines.iter_mut().find(|(l, _)| *l == sig[i].line) {
                Some((_, names)) => names.push(sig[i].text.clone()),
                None => import_lines.push((sig[i].line, vec![sig[i].text.clone()])),
            }
            continue;
        }
        if !in_use && !imported_leaf && is_forbidden_sync_path(&resolved) && resolved.contains("::")
        {
            // Fully-qualified inline use (`std::sync::RwLock::new(…)`).
            // Only flag the type segment itself, not trailing method
            // segments resolved through it.
            if sig[i].text != "sync" && !resolved.ends_with(&format!("::{}", sig[i].text)) {
                continue;
            }
            // Flag the type segment exactly once: `std::sync::RwLock` or
            // `std::sync::atomic::AtomicU64`, not trailing associated-item
            // segments (`…AtomicU64::new`, `…Ordering::Relaxed`).
            let is_type_head = resolved
                .strip_prefix("std::sync::")
                .is_some_and(|rest| !rest.strip_prefix("atomic::").unwrap_or(rest).contains("::"))
                && sig[i].text != "sync"
                && sig[i].text != "atomic";
            if is_type_head {
                findings.push((
                    sig[i].line,
                    RuleId::Concurrency,
                    format!(
                        "`{resolved}` outside `bench::pool`: std::sync primitives are confined \
                         to the deterministic worker pool"
                    ),
                ));
            }
        }
        // Thread spawning outside the pool.
        if sig[i].text == "thread"
            && ctx.resolves_to(i, "std::thread")
            && sig.get(i + 1).is_some_and(|t| t.text == ":")
            && sig.get(i + 2).is_some_and(|t| t.text == ":")
            && sig
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "spawn" | "scope" | "Builder"))
        {
            findings.push((
                sig[i].line,
                RuleId::Concurrency,
                format!(
                    "`std::thread::{}` outside `bench::pool`: worker threads are confined to \
                     the pool's deterministic-merge contract",
                    sig[i + 3].text
                ),
            ));
        }
    }
    for (line, names) in import_lines {
        findings.push((
            line,
            RuleId::Concurrency,
            format!(
                "std::sync primitive{} `{}` outside `bench::pool`: shared-state concurrency \
                 is confined to the deterministic worker pool",
                if names.len() > 1 { "s" } else { "" },
                names.join("`, `")
            ),
        ));
    }
    // Lock acquisition inside per-item closures: even a correctly-merged
    // cell must not serialize on shared state mid-item.
    for region in &ctx.parallel_regions {
        for i in region.start..region.end.min(sig.len()) {
            if sig[i].text == "."
                && sig.get(i + 1).is_some_and(|t| t.text == "lock")
                && sig.get(i + 2).is_some_and(|t| t.text == "(")
            {
                findings.push((
                    sig[i + 1].line,
                    RuleId::Concurrency,
                    format!(
                        "lock acquisition inside a `{}` per-item closure: cells must be pure \
                         functions of their inputs",
                        region.callee
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scopes::FileContext;

    const ALL: Applicability = Applicability {
        decision_path: true,
        checked_casts: true,
        wall_clock_banned: true,
        concurrency_banned: true,
    };

    fn check(text: &str) -> Vec<SemFinding> {
        check_file(&FileContext::analyze(text), ALL)
    }

    fn rules(text: &str) -> Vec<RuleId> {
        check(text).into_iter().map(|(_, r, _)| r).collect()
    }

    #[test]
    fn r3_sees_casts_split_across_lines() {
        let text = "fn f(x: f64) -> u64 {\n    (x * 2.0) as\n        u64\n}\n";
        let f = check(text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, RuleId::LossyCast);
        assert_eq!(f[0].0, 2, "reported at the `as` line");
    }

    #[test]
    fn r3_excludes_use_renames_and_non_numeric_targets() {
        assert!(check("use queueing::mmn as mmn_solver;\n").is_empty());
        assert!(check("pub use a::b as c;\n").is_empty());
        assert!(check("fn f(x: u32) -> u64 { u64::from(x) }\n").is_empty());
        assert!(check("fn f(t: T) -> U { t as U }\n").is_empty());
    }

    #[test]
    fn r6_flags_unnormalized_hash_iteration() {
        let text = "use std::collections::HashMap;\n\
                    fn f(m: &HashMap<String, f64>) -> Vec<String> {\n\
                        m.keys().cloned().collect()\n\
                    }\n";
        assert_eq!(rules(text), vec![RuleId::Determinism]);
    }

    #[test]
    fn r6_accepts_normalized_iteration() {
        for body in [
            "m.iter().collect::<std::collections::BTreeMap<_, _>>()",
            "{ let mut v: Vec<_> = m.keys().collect(); v.sort(); v }",
            "m.keys().count()",
            "m.values().all(|v| v.is_finite())",
        ] {
            let text = format!(
                "use std::collections::HashMap;\nfn f(m: &HashMap<String, f64>) -> usize {{\n    {body}\n}}\n"
            );
            assert!(rules(&text).is_empty(), "{body}");
        }
    }

    #[test]
    fn r6_flags_for_loops_over_hash_bindings() {
        let text = "use std::collections::HashSet;\n\
                    fn f(s: &HashSet<u32>) -> u32 {\n\
                        let mut acc = 0;\n\
                        for v in s {\n\
                            acc ^= v;\n\
                        }\n\
                        acc\n\
                    }\n";
        let f = check(text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, RuleId::Determinism);
        assert_eq!(f[0].0, 4);
    }

    #[test]
    fn r6_flags_wall_clock_and_env() {
        let text = "use std::time::Instant;\n\
                    fn f() -> bool {\n\
                        let t = Instant::now();\n\
                        std::env::var(\"X\").is_ok()\n\
                    }\n";
        let f = check(text);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.1 == RuleId::Determinism));
        assert_eq!(f[0].0, 3);
        assert_eq!(f[1].0, 4);
    }

    #[test]
    fn r6_time_allows_duration_and_storage() {
        let text = "use std::time::{Duration, Instant};\n\
                    fn f(start: Instant, d: Duration) -> Duration {\n\
                        d + Duration::from_secs(1)\n\
                    }\n";
        assert!(check(text).is_empty());
    }

    #[test]
    fn r7_flags_float_reductions_over_hash_iteration() {
        let sum = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        assert_eq!(rules(sum), vec![RuleId::FloatOrder], "sum, no extra R6");
        let fold = "use std::collections::HashMap;\n\
                    fn f(m: &HashMap<u32, f64>) -> f64 { m.values().fold(0.0, |a, b| a + b) }\n";
        assert_eq!(rules(fold), vec![RuleId::FloatOrder]);
    }

    #[test]
    fn r7_flags_captured_accumulator_in_parallel_closure() {
        let text = "fn f(items: &[f64]) -> f64 {\n\
                        let mut total = 0.0;\n\
                        parallel_map(items, 4, |_i, x| { total += x; });\n\
                        total\n\
                    }\n";
        let f = check(text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, RuleId::FloatOrder);
        assert_eq!(f[0].0, 3);
    }

    #[test]
    fn r7_accepts_input_order_merges() {
        let text = "fn f(items: &[f64]) -> f64 {\n\
                        let parts = parallel_map(items, 4, |i, x| x * 2.0);\n\
                        parts.iter().sum::<f64>()\n\
                    }\n";
        assert!(check(text).is_empty());
        let local = "fn f(items: &[f64]) -> Vec<f64> {\n\
                         parallel_map(items, 4, |_i, xs: &Vec<f64>| {\n\
                             let mut acc = 0.0;\n\
                             for x in xs { acc += x; }\n\
                             acc\n\
                         })\n\
                     }\n";
        assert!(check(local).is_empty(), "closure-local accumulator is fine");
    }

    #[test]
    fn r8_flags_sync_imports_grouped_per_line() {
        let text = "use std::sync::{Arc, Mutex};\n\
                    use std::sync::atomic::{AtomicU64, Ordering};\n\
                    fn f() {}\n";
        let f = check(text);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.1 == RuleId::Concurrency));
        assert!(
            f[0].2.contains("`Mutex`") && !f[0].2.contains("Arc"),
            "{}",
            f[0].2
        );
        assert!(f[1].2.contains("AtomicU64") && f[1].2.contains("Ordering"));
    }

    #[test]
    fn r8_flags_inline_paths_spawns_and_region_locks() {
        let inline = "fn f() { let l = std::sync::RwLock::new(0); }\n";
        assert_eq!(rules(inline), vec![RuleId::Concurrency]);
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules(spawn), vec![RuleId::Concurrency]);
        let lock = "fn f(items: &[u32], slots: &[M]) {\n\
                        parallel_map(items, 4, |i, x| { slots[i].lock(); });\n\
                    }\n";
        assert_eq!(rules(lock), vec![RuleId::Concurrency]);
    }

    #[test]
    fn r8_allows_arc_and_plain_code() {
        assert!(check("use std::sync::Arc;\nfn f(x: Arc<u32>) -> u32 { *x }\n").is_empty());
        assert!(check("fn f() { let d = std::time::Duration::from_secs(1); }\n").is_empty());
    }

    #[test]
    fn applicability_gates_families() {
        let text = "use std::sync::Mutex;\n\
                    use std::collections::HashMap;\n\
                    use std::time::Instant;\n\
                    fn f(m: &HashMap<u32, u32>) -> usize {\n\
                        let t = Instant::now();\n\
                        let l = Mutex::new(0);\n\
                        m.keys().collect::<Vec<_>>().len()\n\
                    }\n";
        let none = Applicability {
            decision_path: false,
            checked_casts: false,
            wall_clock_banned: false,
            concurrency_banned: false,
        };
        assert!(check_file(&FileContext::analyze(text), none).is_empty());
        let timing_only = Applicability {
            wall_clock_banned: true,
            ..none
        };
        let f = check_file(&FileContext::analyze(text), timing_only);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, RuleId::Determinism);
    }
}
