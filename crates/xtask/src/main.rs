//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- audit [--root DIR]
//! ```
//!
//! Runs the repo's static-analysis rules (see [`xtask`] crate docs) and
//! exits nonzero when violations are found, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         \n\
         commands:\n\
         \x20 audit [--root DIR]   run the workspace static-analysis rules\n\
         \x20                      (R1 panic-freedom, R2 nan-safety, R3 lossy-cast,\n\
         \x20                       R4 layering, R5 doc-coverage); DIR defaults to\n\
         \x20                      the workspace root (or the current directory)"
    );
}

fn audit(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown audit option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Under `cargo run`, the manifest dir is crates/xtask; the workspace
    // root is two levels up.
    let root = root.unwrap_or_else(|| {
        let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest_dir
            .parent()
            .and_then(std::path::Path::parent)
            .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
    });

    match xtask::run_audit(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "audit: clean ({} rules over {})",
                xtask::RuleId::ALL.len(),
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("\naudit: {} violation(s)", findings.len());
            println!(
                "suppress a single line with `// audit:allow(<rule>): justification` \
                 (see DESIGN.md, \"Static analysis & lint policy\")"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
