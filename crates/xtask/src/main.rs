//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- audit [--root DIR] [--json] [--out FILE]
//!                             [--baseline FILE] [--write-baseline]
//! ```
//!
//! Runs the repo's static-analysis rules (see [`xtask`] crate docs) and
//! exits nonzero when violations are found, so CI can gate on it.
//!
//! Exit codes: 0 — clean (or, with `--baseline`, no *new* findings);
//! 1 — violations (new findings, in baseline mode); 2 — the audit itself
//! could not run (bad root, unreadable baseline, I/O failure).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         \n\
         commands:\n\
         \x20 audit [options]   run the workspace static-analysis rules\n\
         \x20                   (R1 panic-freedom, R2 nan-safety, R3 lossy-cast,\n\
         \x20                    R4 layering, R5 doc-coverage, R6 determinism,\n\
         \x20                    R7 float-order, R8 concurrency, R9 suppression)\n\
         \n\
         audit options:\n\
         \x20 --root DIR         workspace to audit (default: this repo's root)\n\
         \x20 --json             print the report as JSON instead of text\n\
         \x20 --out FILE         also write the JSON report to FILE\n\
         \x20 --baseline FILE    fail only on findings not present in FILE;\n\
         \x20                    pre-existing findings are reported but tolerated\n\
         \x20 --write-baseline   write the report to the default baseline path\n\
         \x20                    (ROOT/audit-baseline.json) and exit 0"
    );
}

struct AuditOptions {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_options(args: &[String]) -> Result<AuditOptions, String> {
    let mut opts = AuditOptions {
        root: None,
        json: false,
        out: None,
        baseline: None,
        write_baseline: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory argument".to_owned()),
            },
            "--json" => opts.json = true,
            "--out" => match iter.next() {
                Some(file) => opts.out = Some(PathBuf::from(file)),
                None => return Err("--out requires a file argument".to_owned()),
            },
            "--baseline" => match iter.next() {
                Some(file) => opts.baseline = Some(PathBuf::from(file)),
                None => return Err("--baseline requires a file argument".to_owned()),
            },
            "--write-baseline" => opts.write_baseline = true,
            other => return Err(format!("unknown audit option `{other}`")),
        }
    }
    Ok(opts)
}

fn audit(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    // Under `cargo run`, the manifest dir is crates/xtask; the workspace
    // root is two levels up.
    let root = opts.root.clone().unwrap_or_else(|| {
        let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest_dir
            .parent()
            .and_then(std::path::Path::parent)
            .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
    });

    let report = match xtask::run_audit_report(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let json = xtask::jsonio::report_to_json(&report);

    if opts.write_baseline {
        let path = root.join("audit-baseline.json");
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("audit error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline written to {} ({} finding(s), {} ledger entr{})",
            path.display(),
            report.findings.len(),
            report.ledger.len(),
            if report.ledger.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("audit error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        print!("{json}");
    }

    // Baseline mode: tolerate findings already accounted for, fail on the
    // rest.
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("audit error: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let keys = match xtask::jsonio::parse_baseline(&text) {
            Ok(keys) => keys,
            Err(message) => {
                eprintln!("audit error: baseline {}: {message}", path.display());
                return ExitCode::from(2);
            }
        };
        let fresh = xtask::jsonio::new_findings(&report.findings, &keys);
        if !opts.json {
            for finding in &fresh {
                println!("{finding}");
            }
            println!(
                "audit: {} finding(s), {} new vs baseline {}, {} ledger entr{}",
                report.findings.len(),
                fresh.len(),
                path.display(),
                report.ledger.len(),
                if report.ledger.len() == 1 { "y" } else { "ies" }
            );
        }
        return if fresh.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.json {
        return if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.findings.is_empty() {
        println!(
            "audit: clean ({} rules over {}, {} ledger entr{})",
            xtask::RuleId::ALL.len(),
            root.display(),
            report.ledger.len(),
            if report.ledger.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!("\naudit: {} violation(s)", report.findings.len());
        println!(
            "suppress a single line with `// audit:allow(<rule>): justification` \
             (see DESIGN.md, \"Semantic audit engine\")"
        );
        ExitCode::FAILURE
    }
}
