//! A string/char/comment-aware Rust lexer for the audit engine.
//!
//! The line rules used to run on a regex-ish "stripped" view of each file;
//! that view could not distinguish a `panic!` in code from one in a raw
//! string, nor see an `as\n    u64` cast split across lines. This module
//! produces a real token stream instead, with two guarantees the rest of
//! the engine builds on:
//!
//! 1. **Round-trip**: concatenating [`Token::text`] over the stream
//!    reproduces the input byte-for-byte, so line/column arithmetic can
//!    never drift from the source.
//! 2. **Classification**: every character belongs to exactly one token,
//!    and string/char/comment contents are *contained* — a quote inside a
//!    raw string or a nested block comment never leaks into code tokens.
//!
//! The lexer is deliberately lossless and permissive: malformed input
//! (an unterminated string at EOF) still lexes, ending the open token at
//! EOF, because the audit must degrade gracefully on in-progress code.

/// Classification of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs and newlines (grouped into runs).
    Whitespace,
    /// `// …` to end of line. `doc` marks `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`, but not `////`).
        doc: bool,
    },
    /// `/* … */`, nesting-aware. `doc` marks `/**` and `/*!` forms.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`, but not `/***`).
        doc: bool,
    },
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime or loop label: `'a`, `'static`.
    Lifetime,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A numeric literal, including suffixes and exponents (`1_000u64`,
    /// `2.5e-3`, `0xff`).
    Number,
    /// A single punctuation character (`.`, `:`, `(`, `+`, …).
    Punct,
}

/// One lexed token with its exact source text and 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The exact source text, so the stream round-trips losslessly.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token carries code meaning (not whitespace or a
    /// comment). String/char literals *are* significant: rules may need
    /// to see that an argument is a literal.
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Lexes `text` into a lossless token stream.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_token();
            let text: String = self.chars[start..self.pos].iter().collect();
            self.line += text.matches('\n').count();
            self.tokens.push(Token { kind, text, line });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one token starting at `self.pos` and returns its kind.
    fn next_token(&mut self) -> TokenKind {
        let c = self.chars[self.pos];
        match c {
            c if c.is_whitespace() => {
                while self.peek(0).is_some_and(char::is_whitespace) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            '/' if self.peek(1) == Some('/') => self.line_comment(),
            '/' if self.peek(1) == Some('*') => self.block_comment(),
            '"' => self.string(0),
            'b' | 'r' if self.raw_or_byte_string_len().is_some() => {
                let prefix = self.raw_or_byte_string_len().unwrap_or(0);
                self.string(prefix)
            }
            'b' if self.peek(1) == Some('\'') => {
                self.pos += 1; // the `b`; char_or_lifetime sees the quote
                self.char_or_lifetime()
            }
            '\'' => self.char_or_lifetime(),
            c if c.is_alphabetic() || c == '_' => self.ident(),
            c if c.is_ascii_digit() => self.number(),
            _ => {
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        let doc =
            (self.peek(2) == Some('/') && self.peek(3) != Some('/')) || self.peek(2) == Some('!');
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.pos += 1;
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let doc =
            (self.peek(2) == Some('*') && self.peek(3) != Some('*')) || self.peek(2) == Some('!');
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.chars.len() && depth > 0 {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// Length of a raw/byte string prefix (`r`, `b`, `br`, `rb`, plus any
    /// `#`s) starting at `self.pos`, if one introduces a string literal.
    fn raw_or_byte_string_len(&self) -> Option<usize> {
        let mut j = 0;
        let mut saw_r = false;
        for _ in 0..2 {
            match self.peek(j) {
                Some('r') if !saw_r => {
                    saw_r = true;
                    j += 1;
                }
                Some('b') if j == 0 => j += 1,
                _ => break,
            }
        }
        if j == 0 {
            return None;
        }
        let hash_start = j;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        // Hashes require a raw prefix: `b#` is not a string.
        if j > hash_start && !saw_r {
            return None;
        }
        (self.peek(j) == Some('"')).then_some(j)
    }

    /// Consumes a string literal whose prefix (`r#`, `b`, …) is `prefix`
    /// characters long. For raw strings the closing delimiter is `"`
    /// followed by the same number of `#`s as the opening one.
    fn string(&mut self, prefix: usize) -> TokenKind {
        let raw = self.chars[self.pos..self.pos + prefix].contains(&'r');
        let hashes = self.chars[self.pos..self.pos + prefix]
            .iter()
            .filter(|&&c| c == '#')
            .count();
        self.pos += prefix + 1; // prefix + opening quote
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            if !raw && c == '\\' {
                self.pos = (self.pos + 2).min(self.chars.len());
            } else if c == '"' {
                let closes = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                self.pos += 1;
                if closes {
                    self.pos += hashes;
                    break;
                }
            } else {
                self.pos += 1;
            }
        }
        TokenKind::Str
    }

    /// Disambiguates `'x'` / `'\n'` (char literals) from `'a` / `'static`
    /// (lifetimes and labels). Called with `self.pos` at the `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => false,
        };
        if is_char {
            self.pos += 1;
            while self.pos < self.chars.len() {
                match self.chars[self.pos] {
                    '\\' => self.pos = (self.pos + 2).min(self.chars.len()),
                    '\'' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += 1,
                }
            }
            TokenKind::Char
        } else {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
            TokenKind::Lifetime
        }
    }

    fn ident(&mut self) -> TokenKind {
        // Raw identifier `r#name` (the string case was ruled out earlier).
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                // `1e-3` / `2E+5`: the sign belongs to the literal only
                // when an exponent `e`/`E` in a decimal literal precedes
                // it and a digit follows.
                self.pos += 1;
                if (c == 'e' || c == 'E')
                    && !self.hex_prefix()
                    && matches!(self.peek(0), Some('+' | '-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 1;
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.text_so_far_contains_dot()
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        TokenKind::Number
    }

    /// Whether the number being lexed started with `0x`/`0o`/`0b`.
    fn hex_prefix(&self) -> bool {
        // Walk back to the start of the current numeric run.
        let mut start = self.pos;
        while start > 0 {
            let c = self.chars[start - 1];
            if c.is_alphanumeric() || c == '_' || c == '.' {
                start -= 1;
            } else {
                break;
            }
        }
        self.chars[start] == '0'
            && matches!(
                self.chars.get(start + 1),
                Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')
            )
    }

    /// Whether the numeric token being lexed already consumed a `.`
    /// (so `1.2.3` stops at the second dot and `1..2` keeps the range).
    fn text_so_far_contains_dot(&self) -> bool {
        let mut i = self.pos;
        while i > 0 {
            let c = self.chars[i - 1];
            if c == '.' {
                return true;
            }
            if c.is_alphanumeric() || c == '_' {
                i -= 1;
            } else {
                break;
            }
        }
        false
    }
}

/// Renders one token for the stripped view: comments and string/char
/// contents become spaces (newlines preserved), delimiters and code text
/// stay put, so the output has the same line structure as the input.
pub fn stripped_text(token: &Token) -> String {
    let blank = |s: &str| -> String {
        s.chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect()
    };
    match token.kind {
        TokenKind::Whitespace
        | TokenKind::Ident
        | TokenKind::Number
        | TokenKind::Punct
        | TokenKind::Lifetime => token.text.clone(),
        TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } => blank(&token.text),
        TokenKind::Str | TokenKind::Char => {
            // Keep the opening delimiter (prefix + quote) and closing
            // delimiter (quote + hashes) so the stripped line still reads
            // as a literal; blank everything between.
            let chars: Vec<char> = token.text.chars().collect();
            let quote = if token.kind == TokenKind::Char {
                '\''
            } else {
                '"'
            };
            let open = chars.iter().position(|&c| c == quote).map_or(0, |p| p + 1);
            let mut close = chars.iter().rposition(|&c| c == quote).unwrap_or(0);
            if close < open {
                // Unterminated literal: blank through to EOF.
                close = chars.len();
            }
            chars
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if i < open || i >= close || c == '\n' {
                        c
                    } else {
                        ' '
                    }
                })
                .collect()
        }
    }
}

/// The full stripped view of a source file: same character count per line
/// as the input, with comment and literal contents blanked.
pub fn stripped_view(tokens: &[Token]) -> String {
    tokens.iter().map(stripped_text).collect()
}

/// The complement of [`stripped_view`]: comments and whitespace kept
/// verbatim, every code/literal token blanked to spaces (newlines
/// preserved). The suppression-ledger scan runs on this view, so an
/// `audit:allow(…)` quoted inside a string literal — a diagnostic message
/// explaining the syntax, say — is never mistaken for a real marker.
pub fn comment_view(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| match t.kind {
            TokenKind::Whitespace
            | TokenKind::LineComment { .. }
            | TokenKind::BlockComment { .. } => t.text.clone(),
            _ => t
                .text
                .chars()
                .map(|c| if c == '\n' { '\n' } else { ' ' })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> Vec<Token> {
        let tokens = lex(text);
        let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, text, "lossless round-trip");
        tokens
    }

    #[test]
    fn classifies_basic_stream() {
        let tokens = round_trip("let x = 1.5e-3 + foo_bar(42);\n");
        let kinds: Vec<(TokenKind, &str)> = tokens
            .iter()
            .filter(|t| t.is_significant())
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "1.5e-3"),
                (TokenKind::Punct, "+"),
                (TokenKind::Ident, "foo_bar"),
                (TokenKind::Punct, "("),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_contain_their_hazards() {
        for (text, n_str) in [
            ("let a = \"panic! \\\" unwrap()\";", 1),
            ("let a = r#\"quote \" inside\"#;", 1),
            ("let a = br##\"double \"# inside\"##;", 1),
            ("let a = b\"bytes\";", 1),
            ("let (a, b) = (\"x\", \"y\");", 2),
        ] {
            let tokens = round_trip(text);
            let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
            assert_eq!(strs.len(), n_str, "{text}");
            assert!(
                !tokens
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .any(|t| t.text == "panic" || t.text == "unwrap" || t.text == "inside"),
                "{text}: literal contents leaked into code tokens"
            );
        }
    }

    #[test]
    fn nested_block_comments() {
        let tokens = round_trip("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| matches!(t.kind, TokenKind::BlockComment { .. }))
                .count(),
            1
        );
        let idents: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let tokens =
            round_trip("fn f<'a>(x: &'a str) -> char { 'x' }\nlet n = '\\n'; let l = 'static;");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn byte_char_and_raw_ident() {
        let tokens = round_trip("let c = b'x'; let r#match = 1;");
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "b'x'"));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#match"));
    }

    #[test]
    fn doc_comment_flags() {
        let tokens = round_trip(
            "/// doc\n//! inner\n//// not doc\n// plain\n/** blk */\n/*! blk */\n/*** not */\n",
        );
        let docs: Vec<bool> = tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, vec![true, true, false, false, true, true, false]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let text = "a\n\"multi\nline\"\n/* c\nc */ b\n";
        let tokens = round_trip(text);
        let b = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text == "b")
            .unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn unterminated_literals_lex_to_eof() {
        round_trip("let s = \"open");
        round_trip("let s = r#\"open\"");
        round_trip("/* open");
        round_trip("let c = 'x");
    }

    #[test]
    fn stripped_view_preserves_structure() {
        let text = "let m = \"calls unwrap() here\"; // panic!\nlet y = 'x';\n";
        let view = stripped_view(&lex(text));
        assert_eq!(view.split('\n').count(), text.split('\n').count());
        assert!(!view.contains("unwrap"));
        assert!(!view.contains("panic"));
        assert!(view.contains("let m = \""));
        assert!(view.contains("let y = ' ';"));
        for (a, b) in view.split('\n').zip(text.split('\n')) {
            assert_eq!(a.chars().count(), b.chars().count());
        }
    }

    #[test]
    fn comment_view_keeps_comments_blanks_code() {
        let text = "let s = \"audit:allow(R1): fake\"; // audit:allow(R2): real\n";
        let view = comment_view(&lex(text));
        assert!(!view.contains("fake"));
        assert!(view.contains("// audit:allow(R2): real"));
        assert_eq!(view.split('\n').count(), text.split('\n').count());
    }

    #[test]
    fn ranges_are_not_float_dots() {
        let tokens = round_trip("for i in 0..10 { let x = 1.5; let v = a[1..=2]; }");
        let numbers: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(numbers, vec!["0", "10", "1.5", "1", "2"]);
    }
}
