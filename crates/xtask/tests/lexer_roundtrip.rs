//! Property tests for the audit lexer: token streams concatenate back to
//! the exact input (losslessness), and the stripped/comment views preserve
//! line structure while only ever blanking characters.

// Test code: panics are acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use xtask::lexer::{self, TokenKind};

/// Source fragments grouped by token family. Adjacent fragments may merge
/// or re-split under lexing (`'a` + `'x'`, `/` + `/`); the round-trip
/// property must hold regardless, which is exactly what makes it a good
/// invariant.
const FRAGMENTS: &[&[&str]] = &[
    // Identifiers and keywords, including a raw identifier.
    &[
        "x", "value", "foo_bar", "HashMap", "loop", "r#match", "_under",
    ],
    // Numbers with separators, suffixes, exponents, and radix prefixes.
    &[
        "0", "1_000u64", "2.5e-3", "0xff", "3.14f64", "0b1010", "7usize",
    ],
    // Punctuation and multi-character operators (lexed char by char).
    &[
        "+", "::", ".", "(", ")", "{", "}", ";", "=>", "->", "&&", "#",
    ],
    // Whitespace runs.
    &[" ", "\n", "\t", "  \n\n", " \t "],
    // String literals: escapes, raw forms, bytes, embedded newlines, and
    // a quoted marker that must never reach the suppression ledger.
    &[
        "\"plain\"",
        "\"esc \\\" \\n \\\\\"",
        "r\"raw \\ not an escape\"",
        "r#\"hash \" inside\"#",
        "b\"bytes\"",
        "\"multi\nline\"",
        "\"// audit:allow(R1): quoted, not a marker\"",
    ],
    // Char literals vs lifetimes — the classic lexer ambiguity.
    &["'x'", "'\\n'", "'\\''", "b'q'", "'a", "'static", "'_"],
    // Line comments, doc and plain.
    &[
        "// plain\n",
        "/// doc\n",
        "//! inner\n",
        "//\n",
        "//// rule\n",
    ],
    // Block comments, including nesting and embedded newlines.
    &[
        "/* simple */",
        "/* nested /* inner */ tail */",
        "/** doc */",
        "/*! inner doc */",
        "/* multi\nline */",
    ],
];

fn assemble(pairs: &[(usize, usize)]) -> String {
    pairs
        .iter()
        .map(|&(family, variant)| {
            let family = FRAGMENTS[family % FRAGMENTS.len()];
            family[variant % family.len()]
        })
        .collect()
}

/// A view must keep every newline where it was and may otherwise only
/// replace characters with spaces, never insert, delete, or reorder.
fn assert_is_blanking(source: &str, view: &str, name: &str) {
    assert_eq!(
        source.chars().count(),
        view.chars().count(),
        "{name} changed length"
    );
    for (i, (s, v)) in source.chars().zip(view.chars()).enumerate() {
        assert!(
            v == s || (v == ' ' && s != '\n'),
            "{name} rewrote char {i}: {s:?} -> {v:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenating the lexed tokens reproduces the input byte for byte.
    #[test]
    fn lexing_is_lossless(pairs in prop::collection::vec((0usize..8, 0usize..12), 0..40)) {
        let source = assemble(&pairs);
        let tokens = lexer::lex(&source);
        let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(&rebuilt, &source, "tokens: {:?}", tokens);
    }

    /// Both derived views are pure blankings of the source with identical
    /// line structure, and they partition it: every non-whitespace char
    /// survives in exactly one of the two views.
    #[test]
    fn views_blank_but_never_reshape(pairs in prop::collection::vec((0usize..8, 0usize..12), 0..40)) {
        let source = assemble(&pairs);
        let tokens = lexer::lex(&source);
        let stripped = lexer::stripped_view(&tokens);
        let comments = lexer::comment_view(&tokens);
        assert_is_blanking(&source, &stripped, "stripped_view");
        assert_is_blanking(&source, &comments, "comment_view");
        for ((s, a), b) in source.chars().zip(stripped.chars()).zip(comments.chars()) {
            if s != ' ' && s != '\n' && s != '\t' {
                prop_assert!(
                    a == ' ' || b == ' ',
                    "char {:?} kept by both views",
                    s
                );
            }
        }
    }

    /// Token line numbers equal one plus the newlines preceding each token,
    /// so findings always point at the right source line.
    #[test]
    fn line_numbers_track_newlines(pairs in prop::collection::vec((0usize..8, 0usize..12), 0..40)) {
        let source = assemble(&pairs);
        let mut expected_line = 1usize;
        for token in lexer::lex(&source) {
            prop_assert_eq!(token.line, expected_line, "token {:?}", token);
            expected_line += token.text.matches('\n').count();
        }
        prop_assert_eq!(expected_line, 1 + source.matches('\n').count());
    }

    /// Raw strings swallow backslashes and hash-guarded quotes whole: after
    /// any prefix that leaves the lexer in a clean state, the `r#"…"#`
    /// fragment lexes as one string token with the full guarded text.
    /// (A prefix can legitimately end mid-literal — e.g. `3.14f64` directly
    /// before `r#"` merges the `r` into the number's suffix and the hash
    /// quotes desync — so such prefixes are assumed away, not failed.)
    #[test]
    fn raw_strings_lex_as_single_tokens(pairs in prop::collection::vec((0usize..8, 0usize..12), 0..20)) {
        let needle = "r#\"hash \" inside\"#";
        let prefix = format!("{}\n", assemble(&pairs));
        let clean = match lexer::lex(&prefix).last() {
            None => true,
            Some(t) => t.kind == TokenKind::Whitespace,
        };
        prop_assume!(clean);
        let source = format!("{prefix}{needle}\n");
        let tokens = lexer::lex(&source);
        prop_assert!(
            tokens
                .iter()
                .any(|t| t.kind == TokenKind::Str && t.text == needle),
            "raw string split apart: {:?}",
            tokens
        );
    }
}
