//! End-to-end audit over the committed fixture workspace in
//! `tests/fixtures/ws/`, which seeds exactly one violation per rule
//! (R1–R5) plus a suppressed twin for the line rules and the manifest
//! rule. Asserts rule ids, `file:line` coordinates, and process exit
//! codes of the `xtask` binary.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::{run_audit, Finding, RuleId};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn findings() -> Vec<Finding> {
    run_audit(&fixture_root()).expect("fixture workspace is readable")
}

/// Whether a finding of `rule` at `line` exists in a file whose
/// normalized path ends with `suffix`.
fn has(findings: &[Finding], rule: RuleId, suffix: &str, line: usize) -> bool {
    findings.iter().any(|f| {
        f.rule == rule
            && f.line == line
            && f.file
                .to_string_lossy()
                .replace('\\', "/")
                .ends_with(suffix)
    })
}

#[test]
fn every_rule_fires_at_its_seeded_location() {
    let f = findings();
    assert!(
        has(&f, RuleId::NanSafety, "queueing/src/lib.rs", 5),
        "R2 missing: {f:?}"
    );
    assert!(
        has(&f, RuleId::DocCoverage, "queueing/src/lib.rs", 8),
        "R5 missing: {f:?}"
    );
    assert!(
        has(&f, RuleId::LossyCast, "queueing/src/lib.rs", 14),
        "R3 missing: {f:?}"
    );
    assert!(
        has(&f, RuleId::PanicFreedom, "queueing/src/lib.rs", 19),
        "R1 missing: {f:?}"
    );
    assert!(
        has(&f, RuleId::Layering, "queueing/Cargo.toml", 5),
        "R4 missing: {f:?}"
    );
}

#[test]
fn seeded_violations_are_exactly_the_expected_set() {
    // One finding per line/manifest rule and nothing else: the suppressed
    // twins, the `#[cfg(test)]` region and the clean `core` fixture stay
    // silent, and the semantic families (R6–R9) have no seeds in this
    // tree — theirs live in `tests/fixtures/semantic/`.
    let f = findings();
    assert_eq!(f.len(), 5, "unexpected findings: {f:?}");
    for rule in RuleId::ALL {
        let seeded = matches!(
            rule,
            RuleId::PanicFreedom
                | RuleId::NanSafety
                | RuleId::LossyCast
                | RuleId::Layering
                | RuleId::DocCoverage
        );
        assert_eq!(
            f.iter().filter(|x| x.rule == rule).count(),
            usize::from(seeded),
            "finding count for {rule}: {f:?}"
        );
    }
}

#[test]
fn allow_marker_suppresses_exactly_one_line_finding() {
    // `panicky` (line 19) and `suppressed` (line 25) contain the same
    // `x.unwrap()`; only the unsuppressed one may be reported.
    let f = findings();
    let r1: Vec<_> = f
        .iter()
        .filter(|x| x.rule == RuleId::PanicFreedom)
        .collect();
    assert_eq!(r1.len(), 1, "{r1:?}");
    assert_eq!(r1[0].line, 19);
}

#[test]
fn toml_allow_and_dev_dependencies_are_exempt() {
    // core/Cargo.toml carries an upward edge under an allow marker and the
    // same edge again under [dev-dependencies]: neither may be reported.
    let f = findings();
    assert!(
        !f.iter().any(|x| {
            x.rule == RuleId::Layering
                && x.file
                    .to_string_lossy()
                    .replace('\\', "/")
                    .ends_with("core/Cargo.toml")
        }),
        "{f:?}"
    );
}

#[test]
fn test_region_is_exempt() {
    // The fixture's #[cfg(test)] module (lines 28+) unwraps and casts
    // freely; none of it may be reported.
    let f = findings();
    assert!(
        !f.iter().any(|x| x.line >= 28),
        "test-region finding leaked: {f:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_fixture_tree_and_reports_coordinates() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture_root())
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("queueing/src/lib.rs:19: [R1 panic-freedom]"),
        "{stdout}"
    );
    assert!(stdout.contains("5 violation(s)"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    // `fixtures/clean` holds a single violation-free crate.
    let clean_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/clean");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(&clean_root)
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("audit: clean"),
        "{out:?}"
    );
}

#[test]
fn binary_exits_two_on_unusable_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root", "/nonexistent/definitely-not-a-workspace"])
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
