//! Fixture: R6 determinism seeds — violating and conforming pairs.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant as Clock;

/// Violation: hash-ordered iteration escapes un-normalized.
fn keys_in_hash_order(m: &HashMap<String, f64>) -> Vec<String> {
    m.keys().cloned().collect()
}

/// Violation: `for` loop body observes hash order.
fn fold_in_hash_order(s: &HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in s {
        acc = acc.wrapping_add(*v);
    }
    acc
}

/// Violation: wall-clock read in a decision-path crate.
fn timestamped() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

/// Violation: the rename does not hide the clock from the import table.
fn renamed_clock() -> u64 {
    Clock::now().elapsed().as_secs()
}

/// Violation: decisions must not read the process environment.
fn env_dependent() -> bool {
    std::env::var("CHAMULTEON_FAST").is_ok()
}

/// Conforming: collected into an ordered container in the same statement.
fn keys_sorted(m: &HashMap<String, f64>) -> BTreeSet<String> {
    m.keys().cloned().collect::<BTreeSet<String>>()
}

/// Conforming: order-insensitive reduction.
fn finite_count(m: &HashMap<String, f64>) -> usize {
    m.values().filter(|v| v.is_finite()).count()
}

/// Conforming: collect-then-sort normalizes on the next statement.
fn keys_collect_then_sort(m: &HashMap<String, f64>) -> Vec<String> {
    let mut v: Vec<String> = m.keys().cloned().collect();
    v.sort();
    v
}

/// Conforming: suppressed with a ledger entry.
fn suppressed_iteration(m: &HashMap<String, f64>) -> Vec<f64> {
    // audit:allow(R6): fixture pins suppression; caller sorts before use
    m.values().cloned().collect()
}
