//! Fixture: R8 concurrency seeds — violating and conforming pairs.

/// Violation: a `std::sync` primitive import outside the pool.
use std::sync::Mutex;
/// Conforming: `Arc` is exempt — immutable sharing has no ordering side.
use std::sync::Arc;
// audit:allow(R8): fixture pins suppression of a sync import
use std::sync::Condvar;

/// Violation: inline fully-qualified path, no import to flag.
fn inline_rwlock() -> u32 {
    let cell = std::sync::RwLock::new(7);
    cell.read().map(|v| *v).unwrap_or(0)
}

/// Violation: thread spawning outside the pool.
fn rogue_thread() {
    let handle = std::thread::spawn(|| 2 + 2);
    let _ = handle.join();
}

/// Violation: lock acquisition inside a per-item closure.
fn locks_per_item<M>(items: &[u32], slots: &[M]) {
    parallel_map(items, |i, _x| slots[i].lock());
}

/// Conforming: `Arc` use and a lock-free per-item closure.
fn shares_immutably(x: Arc<u32>, items: &[u32]) -> u32 {
    parallel_map(items, |_i, v| v + *x)
}

/// Conforming: the suppressed import above keeps this name resolvable.
fn uses_suppressed_primitives(m: &Mutex<u32>, c: &Condvar) {
    // audit:allow(R8): fixture exercises body-side use of a flagged import
    let _ = (m, c);
}
