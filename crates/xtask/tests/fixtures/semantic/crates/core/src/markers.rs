//! Fixture: R9 suppression-ledger seeds — malformed markers (violations)
//! and well-formed ones (ledger entries).

/// Violation: a reasonless marker. It still suppresses the `unwrap` —
/// R9 points at the real problem, the missing justification.
fn reasonless(x: Option<u32>) -> u32 {
    // audit:allow(R1)
    x.unwrap()
}

/// Violation: the marker names no known rule, so it suppresses nothing.
fn misspelled() {
    // audit:allow(determinsm): the rule name is misspelled
}

/// Violation: an empty reason is no reason.
fn empty_reason() {
    // audit: allow(R8, "")
}

/// Conforming: the legacy trailing-reason syntax.
fn legacy_syntax(x: Option<u32>) -> u32 {
    // audit:allow(R1): fixture pins the legacy marker syntax
    x.unwrap()
}

/// Conforming: the inline quoted-reason syntax.
fn inline_syntax(x: f64) -> u64 {
    // audit: allow(R3, "fixture pins the inline marker syntax")
    x as u64
}

/// Conforming: prose mentioning the audit is not a marker.
fn prose_only() {
    // The audit:allow grammar requires parentheses; this line has none.
}
