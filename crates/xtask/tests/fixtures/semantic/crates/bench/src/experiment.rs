//! Fixture: R7 float-order seeds in a decision-path bench module —
//! violating and conforming pairs.

use std::collections::HashMap;

/// Violation: f64 sum over hash-ordered iteration (R7 subsumes the R6
/// hash finding on this statement).
fn sum_in_hash_order(m: &HashMap<String, f64>) -> f64 {
    m.values().sum::<f64>()
}

/// Violation: float-seeded fold over hash-ordered iteration.
fn fold_in_hash_order(m: &HashMap<String, f64>) -> f64 {
    m.values().fold(0.0, |acc, v| acc + v)
}

/// Violation: captured float accumulator mutated on worker threads.
fn racy_accumulate(items: &[f64]) -> f64 {
    let mut total = 0.0;
    parallel_map(items, |_i, x| total += x);
    total
}

/// Conforming: merge through the pool's input-order result vector.
fn input_order_merge(items: &[f64]) -> f64 {
    let parts = parallel_map(items, |_i, x| x * 2.0);
    parts.iter().sum::<f64>()
}

/// Conforming: the accumulator is closure-local, not captured.
fn local_accumulate(items: &[f64]) -> Vec<f64> {
    parallel_map(items, |_i, xs| {
        let mut acc = 0.0;
        acc += xs;
        acc
    })
}

/// Conforming: suppressed with a ledger entry.
fn suppressed_accumulate(items: &[f64]) -> f64 {
    let mut lower_bound = 0.0;
    // audit: allow(R7, "fixture pins suppression; the bound is order-insensitive")
    parallel_map(items, |_i, x| lower_bound += x);
    lower_bound
}
