//! Fixture: the concurrency whitelist — this path suffix is the one
//! sanctioned home for `std::sync` primitives, so nothing here may be
//! flagged by R8.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work-stealing cursor, pool-internal by design.
fn next_index(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

/// Slot fill, pool-internal by design.
fn fill_slot(slot: &Mutex<Option<u32>>, value: u32) {
    if let Ok(mut guard) = slot.lock() {
        *guard = Some(value);
    }
}

/// Worker spawn, pool-internal by design.
fn run_workers() {
    std::thread::scope(|scope| {
        let _ = scope;
    });
}
