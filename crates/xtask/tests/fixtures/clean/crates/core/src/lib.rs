//! Clean fixture crate: no violations, the audit must stay silent here.

/// Adds one, panic-free.
pub fn documented(x: u32) -> u32 {
    x.saturating_add(1)
}
