//! Fixture: one seeded violation per line rule, plus a suppressed twin.

/// Compares floats the NaN-unsafe way (R2 seed).
pub fn nan_unsafe(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).unwrap() == std::cmp::Ordering::Less
}

pub fn undocumented(x: u32) -> u32 {
    x
}

/// Truncates capacity math the lossy way (R3 seed).
pub fn lossy(x: f64) -> u32 {
    x as u32
}

/// Panics on empty input (R1 seed).
pub fn panicky(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Same construct as `panicky`, but suppressed by an allow marker.
pub fn suppressed(x: Option<u32>) -> u32 {
    // audit:allow(panic-freedom): fixture demonstrates suppression
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(super::panicky(Some(7)), 7);
        let boom: u32 = None.unwrap();
        let _ = f64::from(boom) as u8;
    }
}
