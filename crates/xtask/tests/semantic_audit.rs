//! End-to-end audit over the committed fixture workspace in
//! `tests/fixtures/semantic/`, which seeds violating *and* conforming
//! cases for the semantic rule families (R6 determinism, R7 float-order,
//! R8 concurrency, R9 suppression ledger), plus the JSON report's
//! byte-stability and the baseline-diff CI workflow.

// Test code: panics are acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::{run_audit_report, AuditReport, RuleId};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semantic")
}

fn report() -> AuditReport {
    run_audit_report(&fixture_root()).expect("fixture workspace is readable")
}

fn normalized(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

#[test]
fn semantic_findings_are_exactly_the_seeded_set() {
    let rep = report();
    let got: Vec<(RuleId, String, usize)> = rep
        .findings
        .iter()
        .map(|f| (f.rule, normalized(&f.file), f.line))
        .collect();
    let expected: Vec<(RuleId, &str, usize)> = vec![
        (RuleId::FloatOrder, "crates/bench/src/experiment.rs", 9),
        (RuleId::FloatOrder, "crates/bench/src/experiment.rs", 14),
        (RuleId::FloatOrder, "crates/bench/src/experiment.rs", 20),
        (RuleId::Determinism, "crates/core/src/determinism.rs", 8),
        (RuleId::Determinism, "crates/core/src/determinism.rs", 14),
        (RuleId::Determinism, "crates/core/src/determinism.rs", 22),
        (RuleId::Determinism, "crates/core/src/determinism.rs", 28),
        (RuleId::Determinism, "crates/core/src/determinism.rs", 33),
        (RuleId::SuppressionLedger, "crates/core/src/markers.rs", 7),
        (RuleId::SuppressionLedger, "crates/core/src/markers.rs", 13),
        (RuleId::SuppressionLedger, "crates/core/src/markers.rs", 18),
        (RuleId::Concurrency, "crates/core/src/sync_discipline.rs", 4),
        (
            RuleId::Concurrency,
            "crates/core/src/sync_discipline.rs",
            12,
        ),
        (
            RuleId::Concurrency,
            "crates/core/src/sync_discipline.rs",
            18,
        ),
        (
            RuleId::Concurrency,
            "crates/core/src/sync_discipline.rs",
            24,
        ),
    ];
    let expected: Vec<(RuleId, String, usize)> = expected
        .into_iter()
        .map(|(r, f, l)| (r, f.to_owned(), l))
        .collect();
    assert_eq!(got, expected, "finding set drifted: {:#?}", rep.findings);
}

#[test]
fn conforming_cases_and_whitelist_stay_silent() {
    let rep = report();
    // The whitelisted pool copy uses Mutex/atomics/thread::scope freely.
    assert!(
        !rep.findings
            .iter()
            .any(|f| normalized(&f.file).ends_with("bench/src/pool.rs")),
        "whitelist leak: {:#?}",
        rep.findings
    );
    // Conforming determinism cases: nothing after the seeded block
    // (normalized collects, count reduction, collect-then-sort,
    // suppressed twin) may fire.
    assert!(
        !rep.findings
            .iter()
            .any(|f| normalized(&f.file).ends_with("determinism.rs") && f.line > 33),
        "conforming determinism case flagged: {:#?}",
        rep.findings
    );
    // R7 subsumption: the hash-ordered `.sum`/`.fold` statements yield
    // float-order findings only, not a duplicate R6 each.
    assert!(
        !rep.findings.iter().any(
            |f| normalized(&f.file).ends_with("experiment.rs") && f.rule == RuleId::Determinism
        ),
        "R7 should subsume R6 on reduction statements: {:#?}",
        rep.findings
    );
    // The reasonless marker still suppresses its R1 target; R9 reports
    // the marker itself instead.
    assert!(
        !rep.findings
            .iter()
            .any(|f| normalized(&f.file).ends_with("markers.rs") && f.rule == RuleId::PanicFreedom),
        "reasonless marker must still suppress: {:#?}",
        rep.findings
    );
}

#[test]
fn ledger_collects_every_wellformed_marker() {
    let rep = report();
    let got: Vec<(RuleId, String, usize, &str)> = rep
        .ledger
        .iter()
        .map(|s| (s.rule, normalized(&s.file), s.line, s.reason.as_str()))
        .collect();
    let expected = vec![
        (
            RuleId::FloatOrder,
            "crates/bench/src/experiment.rs".to_owned(),
            42,
            "fixture pins suppression; the bound is order-insensitive",
        ),
        (
            RuleId::Layering,
            "crates/core/Cargo.toml".to_owned(),
            4,
            "fixture pins TOML markers landing in the ledger",
        ),
        (
            RuleId::Determinism,
            "crates/core/src/determinism.rs".to_owned(),
            55,
            "fixture pins suppression; caller sorts before use",
        ),
        (
            RuleId::PanicFreedom,
            "crates/core/src/markers.rs".to_owned(),
            23,
            "fixture pins the legacy marker syntax",
        ),
        (
            RuleId::LossyCast,
            "crates/core/src/markers.rs".to_owned(),
            29,
            "fixture pins the inline marker syntax",
        ),
        (
            RuleId::Concurrency,
            "crates/core/src/sync_discipline.rs".to_owned(),
            7,
            "fixture pins suppression of a sync import",
        ),
        (
            RuleId::Concurrency,
            "crates/core/src/sync_discipline.rs".to_owned(),
            34,
            "fixture exercises body-side use of a flagged import",
        ),
    ];
    assert_eq!(got, expected, "ledger drifted: {:#?}", rep.ledger);
}

fn run_audit_binary(args: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.arg("audit").args(["--root"]).arg(fixture_root());
    cmd.args(args);
    cmd.output().expect("xtask binary runs")
}

#[test]
fn json_output_is_byte_stable_across_runs() {
    let first = run_audit_binary(&["--json"]);
    let second = run_audit_binary(&["--json"]);
    assert_eq!(first.status.code(), Some(1), "{first:?}");
    assert_eq!(second.status.code(), Some(1));
    assert!(!first.stdout.is_empty());
    assert_eq!(
        first.stdout, second.stdout,
        "JSON output must be byte-stable"
    );
    let text = String::from_utf8(first.stdout).expect("valid UTF-8");
    assert!(text.contains("\"schema\": \"chamulteon-audit/v1\""));
    // The report parses as its own baseline with the full finding set.
    let keys = xtask::jsonio::parse_baseline(&text).expect("self-parse");
    assert_eq!(keys.len(), 15);
}

#[test]
fn baseline_gate_tolerates_known_findings_and_fails_on_new() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("semantic-baseline");
    std::fs::create_dir_all(&tmp).expect("tmp dir");

    // Capture the current report as the baseline: the gate passes.
    let current = tmp.join("audit.json");
    let out = run_audit_binary(&["--out", current.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let gated = run_audit_binary(&["--baseline", current.to_str().expect("utf-8 path")]);
    assert_eq!(
        gated.status.code(),
        Some(0),
        "no new findings vs own baseline: {gated:?}"
    );
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(stdout.contains("15 finding(s), 0 new"), "{stdout}");

    // An empty baseline makes every finding new: the gate fails.
    let empty = tmp.join("empty.json");
    std::fs::write(
        &empty,
        "{\"schema\": \"chamulteon-audit/v1\", \"findings\": []}\n",
    )
    .expect("write empty baseline");
    let out = run_audit_binary(&["--baseline", empty.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("15 new"),
        "{out:?}"
    );

    // A malformed baseline is an audit error, not a pass.
    let bad = tmp.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"other/v9\"}").expect("write bad baseline");
    let out = run_audit_binary(&["--baseline", bad.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn write_baseline_then_gate_round_trips_on_a_clean_tree() {
    // Use a scratch copy of the clean fixture so `--write-baseline` never
    // touches a committed tree.
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("write-baseline-ws");
    let src_dir = tmp.join("crates/solo/src");
    std::fs::create_dir_all(&src_dir).expect("scratch workspace");
    std::fs::write(
        tmp.join("crates/solo/Cargo.toml"),
        "[package]\nname = \"solo\"\n",
    )
    .expect("manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Scratch crate.\n\n/// Doubles, panic-free.\npub fn double(x: u32) -> u32 {\n    x.saturating_mul(2)\n}\n",
    )
    .expect("source");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(&tmp)
        .arg("--write-baseline")
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let baseline = tmp.join("audit-baseline.json");
    assert!(baseline.is_file(), "baseline written");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(&tmp)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
