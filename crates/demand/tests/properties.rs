//! Property-based tests for demand estimation.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_demand::{
    DemandEstimator, MonitoringSample, RollingDemandEstimator, ServiceDemandLawEstimator,
    UtilizationRegressionEstimator,
};
use proptest::prelude::*;

proptest! {
    /// The Service Demand Law recovers a planted demand exactly from any
    /// consistent single window.
    #[test]
    fn sdl_exact_on_consistent_window(
        demand in 0.001f64..1.0,
        lambda in 0.1f64..100.0,
        n in 1u32..50,
    ) {
        let duration = 60.0;
        let arrivals = (lambda * duration).round().max(1.0);
        let effective_lambda = arrivals / duration;
        let util = demand * effective_lambda / f64::from(n);
        prop_assume!(util <= 1.0);
        let s = MonitoringSample::new(duration, arrivals as u64, util, n, None).unwrap();
        let est = ServiceDemandLawEstimator.estimate(&[s]).unwrap();
        prop_assert!((est - demand).abs() < 1e-9);
    }

    /// Estimates are always positive and finite when they succeed.
    #[test]
    fn estimates_positive_finite(
        windows in prop::collection::vec(
            (1u64..100_000, 0.0f64..1.0, 1u32..100),
            1..10,
        ),
    ) {
        let samples: Vec<MonitoringSample> = windows
            .iter()
            .map(|&(a, u, n)| MonitoringSample::new(60.0, a, u, n, None).unwrap())
            .collect();
        for d in [
            ServiceDemandLawEstimator.estimate(&samples),
            UtilizationRegressionEstimator.estimate(&samples),
        ].into_iter().flatten() {
            prop_assert!(d.is_finite());
            prop_assert!(d > 0.0);
        }
    }

    /// The rolling estimator never yields a non-positive or non-finite
    /// demand, whatever it observes.
    #[test]
    fn rolling_always_usable(
        windows in prop::collection::vec(
            (0u64..10_000, 0.0f64..1.2, 1u32..50),
            0..30,
        ),
        smoothing in 0.05f64..1.0,
    ) {
        let mut est = RollingDemandEstimator::new(8, smoothing, 0.1);
        for (a, u, n) in windows {
            est.observe(MonitoringSample::new(60.0, a, u, n, None).unwrap());
            let d = est.current_demand();
            prop_assert!(d.is_finite() && d > 0.0);
        }
    }

    /// EWMA smoothing keeps the estimate within the range of raw estimates
    /// seen so far (plus the seed).
    #[test]
    fn rolling_within_observed_range(
        demands in prop::collection::vec(0.01f64..1.0, 1..15),
    ) {
        // Window of 1 so each raw estimate equals the planted demand.
        let mut est = RollingDemandEstimator::new(1, 0.3, 0.1);
        let mut lo = 0.1f64;
        let mut hi = 0.1f64;
        for d in demands {
            // λ = 10 on n = 4 => util = d · 10 / 4, keep ≤ 1.
            let util = (d * 10.0 / 4.0).min(1.0);
            let eff_d = util * 4.0 / 10.0; // actual planted demand after clamp
            est.observe(MonitoringSample::new(60.0, 600, util, 4, None).unwrap());
            lo = lo.min(eff_d);
            hi = hi.max(eff_d);
            prop_assert!(est.current_demand() >= lo - 1e-9);
            prop_assert!(est.current_demand() <= hi + 1e-9);
        }
    }
}
