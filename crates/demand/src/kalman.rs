//! Kalman-filter demand estimation on the utilization law.
//!
//! LibReDE's registry includes a Kalman-filter approach (after Wang et
//! al.) that treats the service demand as a slowly drifting hidden state
//! observed through the utilization law `U = (X/n)·D + noise`. Compared to
//! the plain Service Demand Law it smooths monitoring noise *and* adapts
//! when the true demand drifts (e.g. after a deployment changes the code
//! path), trading a little bias right after a change for much lower
//! variance.

use crate::error::DemandError;
use crate::estimators::DemandEstimator;
use crate::sample::MonitoringSample;

/// Scalar Kalman filter over the utilization law.
///
/// State: the service demand `D` (seconds/request). Observation per
/// monitoring window: the utilization `U` with linear model `U = H·D`,
/// `H = X/n` (per-instance throughput). The filter is re-run over the
/// supplied window from a diffuse prior on every call, so the estimator
/// stays stateless like the rest of the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanFilterEstimator {
    /// Process noise variance `Q`: how fast the true demand may drift per
    /// window (in demand units squared).
    pub process_noise: f64,
    /// Observation noise variance `R` of the utilization monitor.
    pub observation_noise: f64,
}

impl Default for KalmanFilterEstimator {
    fn default() -> Self {
        KalmanFilterEstimator {
            process_noise: 1e-6,
            observation_noise: 1e-3,
        }
    }
}

impl KalmanFilterEstimator {
    /// Creates a filter with custom noise parameters (non-positive values
    /// fall back to the defaults).
    pub fn new(process_noise: f64, observation_noise: f64) -> Self {
        let d = KalmanFilterEstimator::default();
        KalmanFilterEstimator {
            process_noise: if process_noise > 0.0 && process_noise.is_finite() {
                process_noise
            } else {
                d.process_noise
            },
            observation_noise: if observation_noise > 0.0 && observation_noise.is_finite() {
                observation_noise
            } else {
                d.observation_noise
            },
        }
    }
}

impl DemandEstimator for KalmanFilterEstimator {
    fn name(&self) -> &str {
        "kalman-filter"
    }

    fn estimate(&self, samples: &[MonitoringSample]) -> Result<f64, DemandError> {
        // Initialize from the first informative window's direct estimate.
        let mut state: Option<(f64, f64)> = None; // (D, P)
        for s in samples {
            let h = s.throughput() / f64::from(s.instances());
            if h <= 0.0 {
                continue; // idle window carries no information
            }
            match &mut state {
                None => {
                    // Diffuse prior centered on the direct SDL estimate of
                    // this window.
                    let d0 = s.utilization() / h;
                    if d0 > 0.0 && d0.is_finite() {
                        state = Some((d0, 1.0));
                    }
                }
                Some((d, p)) => {
                    // Predict.
                    let p_pred = *p + self.process_noise;
                    // Update.
                    let innovation = s.utilization() - h * *d;
                    let s_var = h * h * p_pred + self.observation_noise;
                    let gain = p_pred * h / s_var;
                    *d += gain * innovation;
                    *p = (1.0 - gain * h) * p_pred;
                    // Demands are physically positive.
                    if *d < 1e-6 {
                        *d = 1e-6;
                    }
                }
            }
        }
        match state {
            Some((d, _)) if d.is_finite() && d > 0.0 => Ok(d),
            _ => Err(DemandError::NoUsableSamples),
        }
    }

    fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync> {
        Box::new(*self)
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn sample(arrivals: u64, util: f64, n: u32) -> MonitoringSample {
        MonitoringSample::new(60.0, arrivals, util, n, None).unwrap()
    }

    #[test]
    fn recovers_constant_demand() {
        // D = 0.1 planted across consistent windows.
        let samples: Vec<_> = (1..=10)
            .map(|k| {
                let lambda = k as f64 * 4.0;
                let util = (0.1 * lambda / 4.0_f64).min(1.0);
                sample((lambda * 60.0) as u64, util, 4)
            })
            .collect();
        let d = KalmanFilterEstimator::default().estimate(&samples).unwrap();
        assert!((d - 0.1).abs() < 1e-3, "got {d}");
    }

    #[test]
    fn smooths_noisy_observations() {
        // Deterministic "noise" around D = 0.059.
        let samples: Vec<_> = (0..20)
            .map(|k| {
                let lambda = 30.0;
                let noise = 0.01 * ((k as f64 * 1.7).sin());
                let util = (0.059 * lambda / 4.0 + noise).clamp(0.0, 1.0);
                sample((lambda * 60.0) as u64, util, 4)
            })
            .collect();
        let kalman = KalmanFilterEstimator::default().estimate(&samples).unwrap();
        assert!((kalman - 0.059).abs() < 0.01, "kalman {kalman}");
    }

    #[test]
    fn tracks_demand_drift() {
        // Demand shifts 0.05 -> 0.15 halfway; filter must move toward the
        // new value.
        let mut samples = Vec::new();
        for _ in 0..10 {
            samples.push(sample(1800, (0.05 * 30.0 / 4.0_f64).min(1.0), 4));
        }
        for _ in 0..20 {
            samples.push(sample(1800, (0.15 * 30.0 / 4.0_f64).min(1.0), 4));
        }
        let fast = KalmanFilterEstimator::new(1e-3, 1e-3);
        let d = fast.estimate(&samples).unwrap();
        assert!(d > 0.12, "should track drift, got {d}");
    }

    #[test]
    fn idle_windows_skipped() {
        let samples = vec![
            sample(0, 0.0, 4),
            sample(1200, 0.5, 4), // D = 0.1
            sample(0, 0.0, 4),
        ];
        let d = KalmanFilterEstimator::default().estimate(&samples).unwrap();
        assert!((d - 0.1).abs() < 1e-6);
    }

    #[test]
    fn all_idle_is_error() {
        let samples = vec![sample(0, 0.0, 4)];
        assert_eq!(
            KalmanFilterEstimator::default().estimate(&samples),
            Err(DemandError::NoUsableSamples)
        );
        assert!(KalmanFilterEstimator::default().estimate(&[]).is_err());
    }

    #[test]
    fn invalid_noise_parameters_fall_back() {
        let k = KalmanFilterEstimator::new(-1.0, f64::NAN);
        assert_eq!(
            k.process_noise,
            KalmanFilterEstimator::default().process_noise
        );
        assert_eq!(
            k.observation_noise,
            KalmanFilterEstimator::default().observation_noise
        );
    }

    #[test]
    fn estimate_is_always_positive() {
        // Utilization 0 with traffic: direct estimate would be 0; the
        // filter clamps to a positive floor.
        let samples = vec![
            sample(1200, 0.5, 4),
            sample(1200, 0.0, 4),
            sample(1200, 0.0, 4),
        ];
        let d = KalmanFilterEstimator::new(1e-2, 1e-3)
            .estimate(&samples)
            .unwrap();
        assert!(d > 0.0);
    }
}
