//! The monitoring sample consumed by all estimators.

use crate::error::DemandError;

/// One monitoring window worth of observations for a single service.
///
/// The paper's estimation input (§III-A2): "the request arrivals per
/// resource and the average monitored utilization are required", plus the
/// optional mean response time used by the response-time estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitoringSample {
    duration: f64,
    arrivals: u64,
    completions: Option<u64>,
    utilization: f64,
    instances: u32,
    mean_response_time: Option<f64>,
}

impl MonitoringSample {
    /// Creates a validated sample.
    ///
    /// * `duration` — window length in seconds (> 0),
    /// * `arrivals` — requests that arrived during the window,
    /// * `utilization` — mean utilization across the service's instances,
    ///   in `[0, 1]` (values slightly above 1 from noisy monitors are
    ///   clamped to 1),
    /// * `instances` — number of running instances during the window (> 0),
    /// * `mean_response_time` — mean end-to-end response time at this
    ///   service in seconds, when measured.
    ///
    /// # Errors
    ///
    /// Returns [`DemandError::InvalidSample`] for a non-positive duration,
    /// a negative/NaN utilization, zero instances, or a non-positive
    /// response time.
    pub fn new(
        duration: f64,
        arrivals: u64,
        utilization: f64,
        instances: u32,
        mean_response_time: Option<f64>,
    ) -> Result<Self, DemandError> {
        if !(duration > 0.0) {
            return Err(DemandError::InvalidSample {
                field: "duration",
                value: duration,
            });
        }
        if !(utilization >= 0.0) {
            return Err(DemandError::InvalidSample {
                field: "utilization",
                value: utilization,
            });
        }
        if instances == 0 {
            return Err(DemandError::InvalidSample {
                field: "instances",
                value: 0.0,
            });
        }
        if let Some(rt) = mean_response_time {
            if !(rt > 0.0) {
                return Err(DemandError::InvalidSample {
                    field: "mean_response_time",
                    value: rt,
                });
            }
        }
        Ok(MonitoringSample {
            duration,
            arrivals,
            completions: None,
            utilization: utilization.min(1.0),
            instances,
            mean_response_time,
        })
    }

    /// Validates a sample whose counts come from an *untrusted* monitoring
    /// pipeline (raw `f64` readings that may be NaN, negative or
    /// non-finite — e.g. a faulted simulator report). This is the
    /// ingestion boundary: NaN/negative arrival or completion counts, a
    /// non-finite duration or utilization, and all the conditions of
    /// [`MonitoringSample::new`] are rejected here so nothing downstream
    /// ever sees them.
    ///
    /// # Errors
    ///
    /// Returns [`DemandError::InvalidSample`] naming the offending field.
    pub fn from_observed(
        duration: f64,
        arrivals: f64,
        completions: f64,
        utilization: f64,
        instances: u32,
        mean_response_time: Option<f64>,
    ) -> Result<Self, DemandError> {
        if !duration.is_finite() {
            return Err(DemandError::InvalidSample {
                field: "duration",
                value: duration,
            });
        }
        if !(arrivals >= 0.0) || !arrivals.is_finite() {
            return Err(DemandError::InvalidSample {
                field: "arrivals",
                value: arrivals,
            });
        }
        if !(completions >= 0.0) || !completions.is_finite() {
            return Err(DemandError::InvalidSample {
                field: "completions",
                value: completions,
            });
        }
        if !utilization.is_finite() {
            return Err(DemandError::InvalidSample {
                field: "utilization",
                value: utilization,
            });
        }
        if let Some(rt) = mean_response_time {
            if !rt.is_finite() {
                return Err(DemandError::InvalidSample {
                    field: "mean_response_time",
                    value: rt,
                });
            }
        }
        // Validated non-negative finite counts: the saturating float-to-int
        // cast is exact below 2^53 and cannot go negative.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let sample = Self::new(
            duration,
            arrivals.round() as u64,
            utilization,
            instances,
            mean_response_time,
        )?
        .with_completions(completions.round() as u64);
        Ok(sample)
    }

    /// An empty window: a zero-arrival, zero-utilization sample used as a
    /// last-resort stand-in when monitoring reports nothing usable and no
    /// earlier sample is available. Infallible: the inputs are sanitized
    /// (`duration` to ≥ 1 s, `instances` to ≥ 1).
    pub fn zero(duration: f64, instances: u32) -> Self {
        let duration = if duration.is_finite() {
            duration.max(1.0)
        } else {
            60.0
        };
        MonitoringSample {
            duration,
            arrivals: 0,
            completions: Some(0),
            utilization: 0.0,
            instances: instances.max(1),
            mean_response_time: None,
        }
    }

    /// Sets the number of requests *completed* during the window, when it
    /// differs from the arrivals (an overloaded service completes fewer
    /// than arrive; a draining one completes more). Estimators use this
    /// throughput — the utilization law is `U = X·D/n` with `X` the
    /// throughput, so dividing busy time by arrivals would underestimate
    /// the demand exactly when the service is saturated.
    pub fn with_completions(mut self, completions: u64) -> Self {
        self.completions = Some(completions);
        self
    }

    /// Window length in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Requests that arrived during the window.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Requests completed during the window (defaults to the arrivals when
    /// not set explicitly).
    pub fn completions(&self) -> u64 {
        self.completions.unwrap_or(self.arrivals)
    }

    /// The completions count exactly as recorded: `Some` only when it was
    /// set explicitly via [`with_completions`](Self::with_completions).
    /// The controller's state snapshot uses this so a restored sample is
    /// field-for-field identical to the captured one.
    pub fn explicit_completions(&self) -> Option<u64> {
        self.completions
    }

    /// Throughput `X = completions / duration` in requests per second.
    pub fn throughput(&self) -> f64 {
        self.completions() as f64 / self.duration
    }

    /// Mean utilization across instances, clamped to `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Number of running instances during the window.
    pub fn instances(&self) -> u32 {
        self.instances
    }

    /// Mean response time in seconds, when measured.
    pub fn mean_response_time(&self) -> Option<f64> {
        self.mean_response_time
    }

    /// Arrival rate `λ = arrivals / duration` in requests per second.
    pub fn arrival_rate(&self) -> f64 {
        self.arrivals as f64 / self.duration
    }

    /// Total busy time accumulated across all instances in this window,
    /// `U · n · T` in seconds.
    pub fn total_busy_time(&self) -> f64 {
        self.utilization * f64::from(self.instances) * self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_sample_accessors() {
        let s = MonitoringSample::new(60.0, 600, 0.5, 4, Some(0.2)).unwrap();
        assert_eq!(s.duration(), 60.0);
        assert_eq!(s.arrivals(), 600);
        assert_eq!(s.utilization(), 0.5);
        assert_eq!(s.instances(), 4);
        assert_eq!(s.mean_response_time(), Some(0.2));
        assert!((s.arrival_rate() - 10.0).abs() < 1e-12);
        assert!((s.total_busy_time() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_above_one_clamped() {
        let s = MonitoringSample::new(60.0, 100, 1.07, 2, None).unwrap();
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn rejects_invalid_fields() {
        assert!(MonitoringSample::new(0.0, 1, 0.5, 1, None).is_err());
        assert!(MonitoringSample::new(-1.0, 1, 0.5, 1, None).is_err());
        assert!(MonitoringSample::new(60.0, 1, -0.1, 1, None).is_err());
        assert!(MonitoringSample::new(60.0, 1, f64::NAN, 1, None).is_err());
        assert!(MonitoringSample::new(60.0, 1, 0.5, 0, None).is_err());
        assert!(MonitoringSample::new(60.0, 1, 0.5, 1, Some(0.0)).is_err());
        assert!(MonitoringSample::new(60.0, 1, 0.5, 1, Some(-0.5)).is_err());
    }

    #[test]
    fn zero_arrivals_is_valid_but_zero_rate() {
        let s = MonitoringSample::new(30.0, 0, 0.0, 1, None).unwrap();
        assert_eq!(s.arrival_rate(), 0.0);
    }

    #[test]
    fn from_observed_accepts_clean_readings() {
        let s = MonitoringSample::from_observed(60.0, 600.4, 590.6, 0.5, 4, Some(0.2)).unwrap();
        assert_eq!(s.arrivals(), 600);
        assert_eq!(s.completions(), 591);
        assert_eq!(s.utilization(), 0.5);
        assert_eq!(s.instances(), 4);
    }

    #[test]
    fn from_observed_rejects_nan_and_negative_counts() {
        // NaN arrivals — the corrupt-sample fault class.
        assert!(MonitoringSample::from_observed(60.0, f64::NAN, 1.0, 0.5, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, f64::NAN, 0.5, 1, None).is_err());
        // Negative counts.
        assert!(MonitoringSample::from_observed(60.0, -601.0, 1.0, 0.5, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, -1.0, 0.5, 1, None).is_err());
        // Non-finite everything else.
        assert!(MonitoringSample::from_observed(f64::INFINITY, 1.0, 1.0, 0.5, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, f64::INFINITY, 1.0, 0.5, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, 1.0, f64::NAN, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, 1.0, -0.6, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, 1.0, 0.5, 1, Some(f64::NAN)).is_err());
        // The `new` conditions still apply.
        assert!(MonitoringSample::from_observed(0.0, 1.0, 1.0, 0.5, 1, None).is_err());
        assert!(MonitoringSample::from_observed(60.0, 1.0, 1.0, 0.5, 0, None).is_err());
    }

    #[test]
    fn zero_sample_is_sanitized_and_quiet() {
        let s = MonitoringSample::zero(60.0, 4);
        assert_eq!(s.arrivals(), 0);
        assert_eq!(s.completions(), 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.instances(), 4);
        let degenerate = MonitoringSample::zero(f64::NAN, 0);
        assert_eq!(degenerate.duration(), 60.0);
        assert_eq!(degenerate.instances(), 1);
        assert_eq!(MonitoringSample::zero(-5.0, 2).duration(), 1.0);
    }
}
