//! Rolling, smoothed demand estimation for online use by the controller.

use crate::error::DemandError;
use crate::estimators::{DemandEstimator, ServiceDemandLawEstimator};
use crate::sample::MonitoringSample;
use std::collections::VecDeque;

/// Online wrapper around a [`DemandEstimator`]: keeps a bounded window of
/// recent monitoring samples and exponentially smooths successive
/// estimates, so one noisy monitoring interval cannot flip a scaling
/// decision.
///
/// # Examples
///
/// ```
/// use chamulteon_demand::{MonitoringSample, RollingDemandEstimator};
///
/// let mut est = RollingDemandEstimator::new(10, 0.5, 0.1);
/// let s = MonitoringSample::new(60.0, 1200, 0.5, 4, None)?; // true D = 0.1
/// est.observe(s);
/// assert!((est.current_demand() - 0.1).abs() < 1e-9);
/// # Ok::<(), chamulteon_demand::DemandError>(())
/// ```
pub struct RollingDemandEstimator {
    estimator: Box<dyn DemandEstimator + Send + Sync>,
    window: VecDeque<MonitoringSample>,
    capacity: usize,
    smoothing: f64,
    current: f64,
    initialized: bool,
}

impl Clone for RollingDemandEstimator {
    fn clone(&self) -> Self {
        RollingDemandEstimator {
            estimator: self.estimator.clone_box(),
            window: self.window.clone(),
            capacity: self.capacity,
            smoothing: self.smoothing,
            current: self.current,
            initialized: self.initialized,
        }
    }
}

impl std::fmt::Debug for RollingDemandEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingDemandEstimator")
            .field("estimator", &self.estimator.name())
            .field("window_len", &self.window.len())
            .field("capacity", &self.capacity)
            .field("smoothing", &self.smoothing)
            .field("current", &self.current)
            .finish()
    }
}

impl RollingDemandEstimator {
    /// Creates an estimator using the Service Demand Law over a window of
    /// `capacity` samples, EWMA-smoothed with factor `smoothing ∈ (0, 1]`
    /// (1.0 disables smoothing), seeded with `initial_demand` until the
    /// first real estimate arrives.
    pub fn new(capacity: usize, smoothing: f64, initial_demand: f64) -> Self {
        Self::with_estimator(
            Box::new(ServiceDemandLawEstimator),
            capacity,
            smoothing,
            initial_demand,
        )
    }

    /// Like [`RollingDemandEstimator::new`] but with a custom estimation
    /// approach.
    pub fn with_estimator(
        estimator: Box<dyn DemandEstimator + Send + Sync>,
        capacity: usize,
        smoothing: f64,
        initial_demand: f64,
    ) -> Self {
        let smoothing = if smoothing.is_finite() && smoothing > 0.0 && smoothing <= 1.0 {
            smoothing
        } else {
            0.5
        };
        let initial = if initial_demand.is_finite() && initial_demand > 0.0 {
            initial_demand
        } else {
            0.1
        };
        RollingDemandEstimator {
            estimator,
            window: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            smoothing,
            current: initial,
            initialized: false,
        }
    }

    /// Feeds one monitoring window and updates the smoothed estimate.
    ///
    /// Windows without usable signal (e.g. zero arrivals) leave the current
    /// estimate unchanged, which is the right behaviour for idle periods.
    pub fn observe(&mut self, sample: MonitoringSample) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(sample);
        let samples: Vec<MonitoringSample> = self.window.iter().copied().collect();
        match self.estimator.estimate(&samples) {
            Ok(estimate) if estimate.is_finite() && estimate > 0.0 => {
                if self.initialized {
                    self.current =
                        self.smoothing * estimate + (1.0 - self.smoothing) * self.current;
                } else {
                    self.current = estimate;
                    self.initialized = true;
                }
            }
            Ok(_) | Err(_) => {}
        }
    }

    /// The current smoothed demand estimate in seconds per request.
    pub fn current_demand(&self) -> f64 {
        self.current
    }

    /// Whether at least one real estimate has been incorporated (before
    /// that, [`current_demand`](Self::current_demand) returns the seed).
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The sample window capacity this estimator was built with.
    pub fn window_capacity(&self) -> usize {
        self.capacity
    }

    /// The EWMA smoothing factor this estimator was built with.
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }

    /// The samples currently in the rolling window, oldest first.
    pub fn window_samples(&self) -> Vec<MonitoringSample> {
        self.window.iter().copied().collect()
    }

    /// Reconstructs an estimator from externally captured state: the
    /// Service Demand Law over `capacity` samples smoothed with factor
    /// `smoothing`, with the window contents, the smoothed estimate and
    /// the initialization flag restored verbatim — the inverse of
    /// [`window_samples`](Self::window_samples) /
    /// [`current_demand`](Self::current_demand), used by the controller's
    /// crash-recovery snapshot.
    ///
    /// Invalid `capacity`/`smoothing` fall back exactly like
    /// [`RollingDemandEstimator::new`]; `current` is kept bit-for-bit
    /// when finite and positive (the only values
    /// [`observe`](Self::observe) can produce) and falls back to the
    /// `0.1` seed otherwise. Excess samples beyond the capacity are
    /// dropped from the front, mirroring the rolling eviction.
    pub fn restore(
        capacity: usize,
        smoothing: f64,
        current: f64,
        initialized: bool,
        samples: Vec<MonitoringSample>,
    ) -> Self {
        let mut est = Self::new(capacity, smoothing, current);
        let skip = samples.len().saturating_sub(est.capacity);
        for sample in samples.into_iter().skip(skip) {
            est.window.push_back(sample);
        }
        est.initialized = initialized;
        est
    }

    /// Runs the underlying estimator once on the current window without
    /// smoothing — what LibReDE would answer right now.
    ///
    /// # Errors
    ///
    /// Propagates the underlying estimator's error.
    pub fn raw_estimate(&self) -> Result<f64, DemandError> {
        let samples: Vec<MonitoringSample> = self.window.iter().copied().collect();
        self.estimator.estimate(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(arrivals: u64, util: f64, n: u32) -> MonitoringSample {
        MonitoringSample::new(60.0, arrivals, util, n, None).unwrap()
    }

    #[test]
    fn first_estimate_unsmoothed() {
        let mut est = RollingDemandEstimator::new(5, 0.2, 0.5);
        assert_eq!(est.current_demand(), 0.5);
        assert!(!est.is_initialized());
        est.observe(s(1200, 0.5, 4)); // D = 0.1
        assert!(est.is_initialized());
        assert!((est.current_demand() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn smoothing_damps_changes() {
        let mut est = RollingDemandEstimator::new(1, 0.5, 0.1);
        est.observe(s(1200, 0.5, 4)); // D = 0.1
        est.observe(s(600, 0.5, 4)); // D = 0.2 in this window alone
        let d = est.current_demand();
        assert!(d > 0.1 && d < 0.2, "smoothed value between: {d}");
        assert!((d - 0.15).abs() < 1e-12);
    }

    #[test]
    fn idle_windows_keep_last_estimate() {
        let mut est = RollingDemandEstimator::new(1, 1.0, 0.1);
        est.observe(s(1200, 0.5, 4));
        let before = est.current_demand();
        est.observe(s(0, 0.0, 4));
        assert_eq!(est.current_demand(), before);
    }

    #[test]
    fn window_is_bounded() {
        let mut est = RollingDemandEstimator::new(3, 1.0, 0.1);
        for _ in 0..10 {
            est.observe(s(1200, 0.5, 4));
        }
        assert_eq!(est.window.len(), 3);
    }

    #[test]
    fn window_forgets_old_regime() {
        // Demand shifts from 0.1 to 0.2; after the window fills with new
        // samples the estimate follows (no smoothing).
        let mut est = RollingDemandEstimator::new(2, 1.0, 0.1);
        est.observe(s(1200, 0.5, 4)); // 0.1
        est.observe(s(1200, 0.5, 4));
        for _ in 0..3 {
            est.observe(s(600, 0.5, 4)); // 0.2
        }
        assert!((est.current_demand() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_fall_back_to_defaults() {
        let est = RollingDemandEstimator::new(0, -1.0, -0.5);
        assert_eq!(est.capacity, 1);
        assert_eq!(est.smoothing, 0.5);
        assert_eq!(est.current_demand(), 0.1);
    }

    #[test]
    fn restore_round_trips_state_bit_for_bit() {
        let mut est = RollingDemandEstimator::new(3, 0.4, 0.2);
        for arrivals in [1200, 900, 600, 1100, 700] {
            est.observe(s(arrivals, 0.5, 4));
        }
        let mut copy = RollingDemandEstimator::restore(
            est.window_capacity(),
            est.smoothing(),
            est.current_demand(),
            est.is_initialized(),
            est.window_samples(),
        );
        assert_eq!(
            copy.current_demand().to_bits(),
            est.current_demand().to_bits()
        );
        assert_eq!(copy.window_samples(), est.window_samples());
        assert_eq!(copy.is_initialized(), est.is_initialized());
        // The restored copy must continue identically.
        est.observe(s(800, 0.6, 3));
        copy.observe(s(800, 0.6, 3));
        assert_eq!(
            copy.current_demand().to_bits(),
            est.current_demand().to_bits()
        );
    }

    #[test]
    fn restore_drops_excess_samples_from_the_front() {
        let samples = vec![s(100, 0.5, 4), s(200, 0.5, 4), s(300, 0.5, 4)];
        let est = RollingDemandEstimator::restore(2, 0.5, 0.1, true, samples.clone());
        assert_eq!(est.window_samples(), samples[1..].to_vec());
    }

    #[test]
    fn raw_estimate_reflects_window_only() {
        let mut est = RollingDemandEstimator::new(5, 0.1, 0.1);
        assert!(est.raw_estimate().is_err());
        est.observe(s(1200, 0.5, 4));
        assert!((est.raw_estimate().unwrap() - 0.1).abs() < 1e-12);
    }
}
