//! Error type for demand estimation.

use std::error::Error;
use std::fmt;

/// Error returned by service demand estimators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DemandError {
    /// No monitoring samples were provided, or none carried usable signal
    /// (e.g. all windows saw zero arrivals).
    NoUsableSamples,
    /// A sample field is invalid (negative, NaN, zero where positive is
    /// required).
    InvalidSample {
        /// Name of the offending field.
        field: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// The estimator requires observations this sample set lacks (e.g.
    /// response times for the response-time approximation).
    MissingObservation {
        /// Name of the missing observation.
        observation: &'static str,
    },
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::NoUsableSamples => {
                write!(f, "no monitoring samples with usable signal")
            }
            DemandError::InvalidSample { field, value } => {
                write!(f, "invalid sample field `{field}`: {value}")
            }
            DemandError::MissingObservation { observation } => {
                write!(f, "estimator requires missing observation `{observation}`")
            }
        }
    }
}

impl Error for DemandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!DemandError::NoUsableSamples.to_string().is_empty());
        assert!(DemandError::InvalidSample {
            field: "duration",
            value: -1.0
        }
        .to_string()
        .contains("duration"));
        assert!(DemandError::MissingObservation {
            observation: "response_time"
        }
        .to_string()
        .contains("response_time"));
    }
}
