//! The estimator trait and the three implemented estimation approaches.

use crate::error::DemandError;
use crate::sample::MonitoringSample;

/// A service demand estimation approach.
///
/// Mirrors LibReDE's design: every approach consumes a set of monitoring
/// windows for one service and produces a single demand estimate in seconds
/// per request. The trait is object-safe so approaches can be selected at
/// runtime through the [`EstimatorRegistry`](crate::EstimatorRegistry).
pub trait DemandEstimator {
    /// A short stable identifier, e.g. `"service-demand-law"`.
    fn name(&self) -> &str;

    /// Estimates the mean service demand (seconds per request) from the
    /// given monitoring windows.
    ///
    /// # Errors
    ///
    /// Returns [`DemandError::NoUsableSamples`] when no window carries
    /// signal and [`DemandError::MissingObservation`] when a required
    /// observation (e.g. response times) is absent.
    fn estimate(&self, samples: &[MonitoringSample]) -> Result<f64, DemandError>;

    /// Clones the estimator into a fresh box, so holders of trait objects
    /// (e.g. [`RollingDemandEstimator`](crate::RollingDemandEstimator)) can
    /// themselves be `Clone` — needed to checkpoint a controller mid-run.
    fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync>;
}

/// The Service Demand Law estimator — the approach the paper selects "to
/// minimize the estimation overhead".
///
/// From the utilization law `U = X·D/n` (with `X` the throughput) it
/// follows that `D = U·n/X = total busy time / total completions`. Windows
/// are aggregated by summing busy time and completions, which weights
/// windows by the amount of work they observed. Using completions rather
/// than arrivals keeps the estimate correct under saturation, when fewer
/// requests complete than arrive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceDemandLawEstimator;

impl DemandEstimator for ServiceDemandLawEstimator {
    fn name(&self) -> &str {
        "service-demand-law"
    }

    fn estimate(&self, samples: &[MonitoringSample]) -> Result<f64, DemandError> {
        let mut busy = 0.0;
        let mut completions = 0u64;
        for s in samples {
            busy += s.total_busy_time();
            completions += s.completions();
        }
        if completions == 0 || busy <= 0.0 {
            return Err(DemandError::NoUsableSamples);
        }
        Ok(busy / completions as f64)
    }

    fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync> {
        Box::new(*self)
    }
}

/// Least-squares regression of per-instance utilization on per-instance
/// throughput across windows, through the origin:
/// `U_w ≈ D · (X_w / n_w)` ⇒ `D = Σ x·U / Σ x²` with `x = X/n`.
///
/// More robust than the Service Demand Law when individual windows carry
/// correlated monitoring noise, at the cost of needing several windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationRegressionEstimator;

impl DemandEstimator for UtilizationRegressionEstimator {
    fn name(&self) -> &str {
        "utilization-regression"
    }

    fn estimate(&self, samples: &[MonitoringSample]) -> Result<f64, DemandError> {
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for s in samples {
            let x = s.throughput() / f64::from(s.instances());
            if x <= 0.0 {
                continue;
            }
            sxx += x * x;
            sxy += x * s.utilization();
        }
        if sxx <= 0.0 || sxy <= 0.0 {
            return Err(DemandError::NoUsableSamples);
        }
        Ok(sxy / sxx)
    }

    fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync> {
        Box::new(*self)
    }
}

/// Demand from observed response times, corrected for queueing delay with
/// the M/M/1-style approximation `R ≈ D / (1 − ρ)` ⇒ `D ≈ R·(1 − ρ)`.
///
/// Windows are weighted by their arrival counts. Requires response-time
/// observations; a window at (or past) saturation contributes the smallest
/// meaningful correction factor instead of a non-positive one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResponseTimeApproximationEstimator;

impl DemandEstimator for ResponseTimeApproximationEstimator {
    fn name(&self) -> &str {
        "response-time-approximation"
    }

    fn estimate(&self, samples: &[MonitoringSample]) -> Result<f64, DemandError> {
        if samples.is_empty() {
            return Err(DemandError::NoUsableSamples);
        }
        let mut weighted = 0.0;
        let mut weight = 0.0;
        let mut saw_response_time = false;
        for s in samples {
            let Some(rt) = s.mean_response_time() else {
                continue;
            };
            saw_response_time = true;
            if s.completions() == 0 {
                continue;
            }
            let correction = (1.0 - s.utilization()).max(0.05);
            let w = s.completions() as f64;
            weighted += w * rt * correction;
            weight += w;
        }
        if !saw_response_time {
            return Err(DemandError::MissingObservation {
                observation: "mean_response_time",
            });
        }
        if weight <= 0.0 {
            return Err(DemandError::NoUsableSamples);
        }
        Ok(weighted / weight)
    }

    fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync> {
        Box::new(*self)
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn sample(
        duration: f64,
        arrivals: u64,
        util: f64,
        n: u32,
        rt: Option<f64>,
    ) -> MonitoringSample {
        MonitoringSample::new(duration, arrivals, util, n, rt).unwrap()
    }

    #[test]
    fn sdl_recovers_planted_demand() {
        // Planted demand 0.1 s: λ = 20 req/s on 4 instances => U = 0.5.
        let s = sample(60.0, 1200, 0.5, 4, None);
        let d = ServiceDemandLawEstimator.estimate(&[s]).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sdl_aggregates_windows_by_work() {
        // Two windows with different loads but same true demand.
        let s1 = sample(60.0, 600, 0.25, 4, None); // λ=10, D=0.1
        let s2 = sample(60.0, 2400, 1.0, 4, None); // λ=40, D=0.1
        let d = ServiceDemandLawEstimator.estimate(&[s1, s2]).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sdl_no_arrivals_is_error() {
        let s = sample(60.0, 0, 0.0, 4, None);
        assert_eq!(
            ServiceDemandLawEstimator.estimate(&[s]),
            Err(DemandError::NoUsableSamples)
        );
        assert_eq!(
            ServiceDemandLawEstimator.estimate(&[]),
            Err(DemandError::NoUsableSamples)
        );
    }

    #[test]
    fn sdl_correct_under_saturation() {
        // 100 req/s arrive but a single instance (capacity 10 req/s at
        // D = 0.1) completes only 600 in 60 s at utilization 1.0.
        let s = sample(60.0, 6000, 1.0, 1, None).with_completions(600);
        let d = ServiceDemandLawEstimator.estimate(&[s]).unwrap();
        assert!((d - 0.1).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn regression_recovers_planted_demand() {
        // U = 0.059 · λ/n exactly across varied windows.
        let demand = 0.059;
        let samples: Vec<_> = (1..=6)
            .map(|k| {
                let lambda = k as f64 * 5.0;
                let n = 4;
                let util = demand * lambda / n as f64;
                sample(60.0, (lambda * 60.0) as u64, util, n, None)
            })
            .collect();
        let d = UtilizationRegressionEstimator.estimate(&samples).unwrap();
        assert!((d - demand).abs() < 1e-9);
    }

    #[test]
    fn regression_ignores_idle_windows() {
        let idle = sample(60.0, 0, 0.0, 4, None);
        let busy = sample(60.0, 1200, 0.5, 4, None);
        let d = UtilizationRegressionEstimator
            .estimate(&[idle, busy])
            .unwrap();
        assert!((d - 0.1).abs() < 1e-9);
    }

    #[test]
    fn regression_all_idle_is_error() {
        let idle = sample(60.0, 0, 0.0, 4, None);
        assert!(UtilizationRegressionEstimator.estimate(&[idle]).is_err());
    }

    #[test]
    fn response_time_low_load_close_to_demand() {
        // At 10% utilization, R barely exceeds D; the correction recovers D.
        let s = sample(60.0, 100, 0.1, 2, Some(0.111));
        let d = ResponseTimeApproximationEstimator.estimate(&[s]).unwrap();
        assert!((d - 0.1).abs() < 0.01);
    }

    #[test]
    fn response_time_requires_observation() {
        let s = sample(60.0, 100, 0.1, 2, None);
        assert_eq!(
            ResponseTimeApproximationEstimator.estimate(&[s]),
            Err(DemandError::MissingObservation {
                observation: "mean_response_time"
            })
        );
    }

    #[test]
    fn response_time_saturated_window_stays_positive() {
        let s = sample(60.0, 1000, 1.0, 2, Some(2.0));
        let d = ResponseTimeApproximationEstimator.estimate(&[s]).unwrap();
        assert!(d > 0.0);
    }

    #[test]
    fn estimators_are_object_safe() {
        let estimators: Vec<Box<dyn DemandEstimator>> = vec![
            Box::new(ServiceDemandLawEstimator),
            Box::new(UtilizationRegressionEstimator),
            Box::new(ResponseTimeApproximationEstimator),
        ];
        let s = sample(60.0, 1200, 0.5, 4, Some(0.13));
        for e in &estimators {
            assert!(!e.name().is_empty());
            assert!(e.estimate(&[s]).is_ok());
        }
    }
}
