//! LibReDE-style service demand estimation for the Chamulteon reproduction.
//!
//! Chamulteon (§III-A2) estimates the *service demand* of every service —
//! "the average time required from each service for processing a request,
//! excluding any waiting times" — from monitoring data. The paper uses the
//! estimator based on the **Service Demand Law** from the LibReDE library
//! (Spinner et al., ICPE 2014) to minimize estimation overhead; LibReDE
//! itself offers a registry of estimation approaches. This crate mirrors
//! that design:
//!
//! * [`MonitoringSample`] — one monitoring window worth of per-service
//!   observations (arrivals, utilization, instance count, response time),
//! * [`DemandEstimator`] — the estimator trait,
//! * [`ServiceDemandLawEstimator`] — the paper's choice: `D = U·n/λ`,
//! * [`UtilizationRegressionEstimator`] — least-squares regression of
//!   utilization on arrival rate across windows,
//! * [`ResponseTimeApproximationEstimator`] — demand from observed response
//!   times corrected for queueing,
//! * [`KalmanFilterEstimator`] — a Kalman filter over the utilization law
//!   that smooths monitoring noise and tracks demand drift,
//! * [`EstimatorRegistry`] — name-based lookup like LibReDE's approach
//!   registry,
//! * [`RollingDemandEstimator`] — a windowed, smoothed wrapper that the
//!   controller consumes.
//!
//! # Example
//!
//! ```
//! use chamulteon_demand::{DemandEstimator, MonitoringSample, ServiceDemandLawEstimator};
//!
//! // One 60 s window: 600 requests, 5 instances at 20% utilization.
//! let sample = MonitoringSample::new(60.0, 600, 0.2, 5, Some(0.11))?;
//! let demand = ServiceDemandLawEstimator.estimate(&[sample])?;
//! assert!((demand - 0.1).abs() < 1e-9); // U·n/λ = 0.2·5/10
//! # Ok::<(), chamulteon_demand::DemandError>(())
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod error;
pub mod estimators;
pub mod kalman;
pub mod registry;
pub mod rolling;
pub mod sample;

pub use error::DemandError;
pub use estimators::{
    DemandEstimator, ResponseTimeApproximationEstimator, ServiceDemandLawEstimator,
    UtilizationRegressionEstimator,
};
pub use kalman::KalmanFilterEstimator;
pub use registry::EstimatorRegistry;
pub use rolling::RollingDemandEstimator;
pub use sample::MonitoringSample;
