//! Name-based estimator registry, mirroring LibReDE's approach registry.

use crate::error::DemandError;
use crate::estimators::{
    DemandEstimator, ResponseTimeApproximationEstimator, ServiceDemandLawEstimator,
    UtilizationRegressionEstimator,
};
use crate::kalman::KalmanFilterEstimator;
use crate::sample::MonitoringSample;
use std::collections::BTreeMap;

/// A registry of demand estimation approaches keyed by name.
///
/// # Examples
///
/// ```
/// use chamulteon_demand::{EstimatorRegistry, MonitoringSample};
///
/// let registry = EstimatorRegistry::with_builtins();
/// let sample = MonitoringSample::new(60.0, 600, 0.2, 5, None)?;
/// let d = registry.estimate("service-demand-law", &[sample]).unwrap()?;
/// assert!((d - 0.1).abs() < 1e-9);
/// # Ok::<(), chamulteon_demand::DemandError>(())
/// ```
#[derive(Default)]
pub struct EstimatorRegistry {
    estimators: BTreeMap<String, Box<dyn DemandEstimator + Send + Sync>>,
}

impl std::fmt::Debug for EstimatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorRegistry")
            .field("estimators", &self.names())
            .finish()
    }
}

impl EstimatorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        EstimatorRegistry::default()
    }

    /// Creates a registry pre-populated with the four built-in approaches.
    pub fn with_builtins() -> Self {
        let mut r = EstimatorRegistry::new();
        r.register(Box::new(ServiceDemandLawEstimator));
        r.register(Box::new(UtilizationRegressionEstimator));
        r.register(Box::new(ResponseTimeApproximationEstimator));
        r.register(Box::new(KalmanFilterEstimator::default()));
        r
    }

    /// Registers an estimator under its own name, replacing any previous
    /// estimator with that name.
    pub fn register(&mut self, estimator: Box<dyn DemandEstimator + Send + Sync>) {
        self.estimators
            .insert(estimator.name().to_owned(), estimator);
    }

    /// Looks up an estimator by name.
    pub fn get(&self, name: &str) -> Option<&(dyn DemandEstimator + Send + Sync)> {
        self.estimators.get(name).map(|b| b.as_ref())
    }

    /// The registered estimator names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.estimators.keys().map(String::as_str).collect()
    }

    /// Runs the named estimator; `None` when the name is unknown.
    pub fn estimate(
        &self,
        name: &str,
        samples: &[MonitoringSample],
    ) -> Option<Result<f64, DemandError>> {
        self.get(name).map(|e| e.estimate(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let r = EstimatorRegistry::with_builtins();
        assert_eq!(
            r.names(),
            vec![
                "kalman-filter",
                "response-time-approximation",
                "service-demand-law",
                "utilization-regression"
            ]
        );
        assert!(r.get("service-demand-law").is_some());
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn estimate_dispatches() {
        let r = EstimatorRegistry::with_builtins();
        let s = MonitoringSample::new(60.0, 1200, 0.5, 4, None).unwrap();
        let d = r.estimate("service-demand-law", &[s]).unwrap().unwrap();
        assert!((d - 0.1).abs() < 1e-12);
        assert!(r.estimate("unknown", &[s]).is_none());
    }

    #[test]
    fn register_replaces_same_name() {
        #[derive(Debug)]
        struct Fixed;
        impl DemandEstimator for Fixed {
            fn name(&self) -> &str {
                "service-demand-law"
            }
            fn estimate(&self, _: &[MonitoringSample]) -> Result<f64, DemandError> {
                Ok(42.0)
            }
            fn clone_box(&self) -> Box<dyn DemandEstimator + Send + Sync> {
                Box::new(Fixed)
            }
        }
        let mut r = EstimatorRegistry::with_builtins();
        r.register(Box::new(Fixed));
        assert_eq!(r.estimate("service-demand-law", &[]).unwrap(), Ok(42.0));
        // Count unchanged.
        assert_eq!(r.names().len(), 4);
    }

    #[test]
    fn debug_lists_names() {
        let r = EstimatorRegistry::with_builtins();
        let text = format!("{r:?}");
        assert!(text.contains("service-demand-law"));
    }
}
