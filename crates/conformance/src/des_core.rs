//! Event-driven-core differential oracle.
//!
//! The event-driven simulation core in `chamulteon-sim` ([`DesSimulation`])
//! implements M/M/n stations twice over: exactly, as per-request events,
//! and approximately, as the hybrid fluid regime's analytic drift plus
//! Erlang-C tail synthesis. Both paths must reproduce the true M/M/n
//! stationary behaviour — and neither shares a line of code with the
//! [`crate::mmn_sim`] micro-simulator, which makes that simulator a
//! legitimate referee.
//!
//! For a grid of single-station scenarios `(λ, s, n)` at paper-scale
//! loads the oracle runs the DES on a flat trace and checks:
//!
//! * **waiting time** — the DES mean sojourn minus the mean service
//!   demand must sit inside a batch-means confidence band around the
//!   micro-simulator's mean waiting time (both runs carry statistical
//!   error, so the band is doubled and given a small relative floor);
//! * **queue length** — the time-sampled mean of the DES end-of-interval
//!   queue snapshots must agree with the micro-simulator's time-average
//!   of `(k − n)⁺`;
//! * **utilization** — the DES busy-time fraction must match the offered
//!   load per server `ρ = λ·s / n`;
//! * **conservation** — the per-second sent accounting must equal
//!   completions plus in-flight requests exactly, as integers;
//! * **hybrid mode** — the same scenario forced into the aggregate fluid
//!   regime must reproduce the analytic mean response time and conserve
//!   requests, while completing almost everything it admits.

use crate::config::ConformanceConfig;
use crate::mmn_sim::{self, Estimate};
use crate::report::OracleReport;
use chamulteon_perfmodel::{ApplicationModel, ApplicationModelBuilder};
use chamulteon_queueing::MmnQueue;
use chamulteon_sim::{DeploymentProfile, DesSimulation, HybridConfig, SimulationConfig, SloPolicy};
use chamulteon_workload::LoadTrace;

/// Lossless-enough `u64 → f64` for request counts (all values here are
/// far below 2⁵³).
fn u64_to_f64(value: u64) -> f64 {
    let high = u32::try_from(value >> 32).unwrap_or(u32::MAX);
    let low = u32::try_from(value & 0xFFFF_FFFF).unwrap_or(u32::MAX);
    f64::from(high) * 4_294_967_296.0 + f64::from(low)
}

/// Stations the DES validation sweeps: `(λ, s, n)`, all stable, spanning
/// the paper's service demands (§IV-B) and utilizations up to ρ = 0.8.
const DES_SCENARIOS: &[(f64, f64, u32)] = &[
    (100.0, 0.059, 9),
    (50.0, 0.1, 7),
    (20.0, 0.2, 5),
    (8.0, 1.0, 10),
];

/// What one DES run measures about its single station.
struct DesMeasures {
    /// Mean end-to-end sojourn of completed requests.
    mean_response: f64,
    /// Time-sampled mean waiting-queue length (post-warmup snapshots).
    mean_queue: f64,
    /// Duration-weighted busy-time fraction.
    utilization: f64,
    /// Requests admitted per the per-second accounting.
    sent: u64,
    /// Requests completed.
    completed: u64,
    /// Requests still in flight when the run ended.
    in_flight: u64,
}

/// Builds the single-service model for a scenario.
fn station_model(demand: f64, servers: u32) -> Option<ApplicationModel> {
    ApplicationModelBuilder::new()
        .service(
            "station",
            demand,
            1,
            servers.saturating_mul(4).max(64),
            servers,
        )
        .entry("station")
        .build()
        .ok()
}

/// Runs the DES on a flat trace and extracts the station measures.
fn run_des(
    rate: f64,
    demand: f64,
    servers: u32,
    duration: f64,
    seed: u64,
    hybrid: Option<HybridConfig>,
) -> Option<DesMeasures> {
    let model = station_model(demand, servers)?;
    let trace = LoadTrace::new(duration, vec![rate]).ok()?;
    let mut config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed);
    if let Some(h) = hybrid {
        config = config.with_hybrid(h);
    }
    let sim = DesSimulation::new(&model, &trace, config);
    let result = sim.run_to_end();
    if result.completed == 0 {
        return None;
    }
    let history = result.interval_history.first()?;
    let warmup = history.len() / 10;
    let mut snapshots = 0.0_f64;
    let mut queue_sum = 0.0_f64;
    let mut busy_weight = 0.0_f64;
    let mut util_sum = 0.0_f64;
    for (i, interval) in history.iter().enumerate() {
        util_sum += interval.utilization * interval.duration;
        busy_weight += interval.duration;
        if i >= warmup {
            queue_sum += u64_to_f64(u64::try_from(interval.queue_length_end).unwrap_or(u64::MAX));
            snapshots += 1.0;
        }
    }
    if snapshots < 1.0 || !(busy_weight > 0.0) {
        return None;
    }
    Some(DesMeasures {
        mean_response: result.mean_response_time(),
        mean_queue: queue_sum / snapshots,
        utilization: util_sum / busy_weight,
        sent: result.sent_per_second.iter().sum(),
        completed: result.completed,
        in_flight: result.in_flight_at_end,
    })
}

/// Confidence band for comparing two independent stochastic estimates:
/// the micro-simulator's batch-means error is doubled (the DES run
/// carries error of the same order), plus an absolute floor and a small
/// relative allowance for the DES warm-up transient.
fn band(reference: f64, estimate: Estimate, sigmas: f64, relative: f64) -> f64 {
    2.0 * sigmas * estimate.se + 1e-3 + relative * reference.abs()
}

/// Checks one scenario: pure DES against the micro-simulator, hybrid
/// aggregate mode against the analytic station law.
fn check_scenario(
    report: &mut OracleReport,
    config: &ConformanceConfig,
    rate: f64,
    demand: f64,
    servers: u32,
) {
    let duration = (u64_to_f64(config.sim_arrivals) / rate).ceil().max(600.0);
    let seed = config.seed ^ 0x0DE5_C04E ^ u64::from(servers) ^ rate.to_bits().rotate_left(17);

    let mut rng = rand_seed(config.seed ^ 0x0DE5_0000 ^ u64::from(servers));
    let Some(reference) = mmn_sim::simulate(rate, demand, servers, config.sim_arrivals, &mut rng)
    else {
        report.count_case();
        report.mismatch(format!(
            "des-core: micro-simulator produced no estimate for λ={rate} s={demand} n={servers}"
        ));
        return;
    };
    let Some(des) = run_des(rate, demand, servers, duration, seed, None) else {
        report.count_case();
        report.mismatch(format!(
            "des-core: DES run produced no measures for λ={rate} s={demand} n={servers}"
        ));
        return;
    };

    // Conservation: the per-second sent accounting, completions and the
    // in-flight remainder must reconcile exactly as integers.
    report.count_case();
    if des.sent != des.completed + des.in_flight {
        report.mismatch(format!(
            "des-core conservation: λ={rate} n={servers}: sent {} ≠ completed {} + in-flight {}",
            des.sent, des.completed, des.in_flight
        ));
    }

    // Mean waiting time: DES sojourn minus service demand vs the
    // micro-simulator's estimate, within batch-means bands.
    report.count_case();
    let des_wait = des.mean_response - demand;
    let wait_ref = reference.mean_waiting_time;
    let wait_band = band(wait_ref.value, wait_ref, config.tolerance_sigmas, 0.03);
    if (des_wait - wait_ref.value).abs() > wait_band {
        report.mismatch(format!(
            "des-core wait: λ={rate} n={servers}: DES {:.5} vs microsim {:.5} ± {:.5}",
            des_wait, wait_ref.value, wait_band
        ));
    }

    // Mean queue length: end-of-interval snapshots are a coarser (but
    // unbiased) sampler than the micro-simulator's time average, so the
    // relative allowance is wider.
    report.count_case();
    let queue_ref = reference.mean_queue_length;
    let queue_band = 0.05 + band(queue_ref.value, queue_ref, config.tolerance_sigmas, 0.20);
    if (des.mean_queue - queue_ref.value).abs() > queue_band {
        report.mismatch(format!(
            "des-core queue: λ={rate} n={servers}: DES {:.4} vs microsim {:.4} ± {:.4}",
            des.mean_queue, queue_ref.value, queue_band
        ));
    }

    // Utilization: busy fraction must match ρ = λ·s/n.
    report.count_case();
    let rho = rate * demand / f64::from(servers);
    if (des.utilization - rho).abs() > 0.035 {
        report.mismatch(format!(
            "des-core utilization: λ={rate} n={servers}: DES {:.4} vs ρ {:.4}",
            des.utilization, rho
        ));
    }

    check_hybrid(report, config, rate, demand, servers, duration, seed);
}

/// Forces the same scenario into the aggregate fluid regime and checks
/// the analytic synthesis: conservation stays exact, nearly every
/// admitted request completes, and the synthesized mean response time
/// reproduces the M/M/n law.
fn check_hybrid(
    report: &mut OracleReport,
    config: &ConformanceConfig,
    rate: f64,
    demand: f64,
    servers: u32,
    duration: f64,
    seed: u64,
) {
    let offered = rate * demand;
    let hybrid = HybridConfig::new(offered * 0.25, 0.5, 256);
    let Some(des) = run_des(rate, demand, servers, duration, seed, Some(hybrid)) else {
        report.count_case();
        report.mismatch(format!(
            "des-core hybrid: run produced no measures for λ={rate} s={demand} n={servers}"
        ));
        return;
    };

    report.count_case();
    if des.sent != des.completed + des.in_flight {
        report.mismatch(format!(
            "des-core hybrid conservation: λ={rate} n={servers}: sent {} ≠ completed {} + in-flight {}",
            des.sent, des.completed, des.in_flight
        ));
    }

    // A stable station completes what it admits, up to the in-flight tail.
    report.count_case();
    if u64_to_f64(des.completed) < 0.95 * u64_to_f64(des.sent) {
        report.mismatch(format!(
            "des-core hybrid throughput: λ={rate} n={servers}: completed {} of {} sent",
            des.completed, des.sent
        ));
    }

    // The aggregate regime attributes sojourns from Erlang-C tail
    // synthesis; its mean must track the analytic mean response time.
    report.count_case();
    match MmnQueue::new(rate, demand, servers).and_then(|q| q.mean_response_time()) {
        Ok(analytic) => {
            let tolerance = 0.002 + 0.02 * config.tolerance_sigmas * analytic;
            if (des.mean_response - analytic).abs() > tolerance {
                report.mismatch(format!(
                    "des-core hybrid response: λ={rate} n={servers}: DES {:.5} vs analytic {:.5} ± {:.5}",
                    des.mean_response, analytic, tolerance
                ));
            }
        }
        Err(err) => {
            report.mismatch(format!(
                "des-core hybrid response: λ={rate} n={servers}: analytic law unavailable: {err}"
            ));
        }
    }
}

/// Seeds a `StdRng` (thin wrapper so the seed expression reads clearly).
fn rand_seed(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Runs the DES-core oracle: every scenario's pure-DES statistics must
/// sit inside the micro-simulator's confidence bands, and the hybrid
/// fluid regime must reproduce the analytic station law.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("des-core");
    for &(rate, demand, servers) in DES_SCENARIOS {
        check_scenario(&mut report, config, rate, demand, servers);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_des_core_oracle_is_clean() {
        let report = run(&ConformanceConfig::quick());
        assert_eq!(report.oracle, "des-core");
        assert!(report.cases >= 24, "{}", report.cases);
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn des_core_measures_a_station() {
        let measures = run_des(20.0, 0.2, 5, 900.0, 11, None).expect("measures");
        assert!(measures.sent > 0);
        assert_eq!(measures.sent, measures.completed + measures.in_flight);
        assert!(measures.utilization > 0.5 && measures.utilization < 1.0);
        assert!(measures.mean_response > 0.2, "{}", measures.mean_response);
    }
}
