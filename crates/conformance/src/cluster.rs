//! Cluster-arbitration oracle: multi-tenant budget and ledger replay.
//!
//! Generates randomized multi-tenant arbitration histories — charging
//! model, policy, budget, 2–4 tenants, and per-cycle proposal sets whose
//! time advances mix exact interval multiples, half-intervals, zero
//! (same-instant cycles) and float drift, and whose weights/gains include
//! the degenerate values (`0`, `NaN`, `∞`) the sanitizers must neutralize
//! — and checks each history two independent ways:
//!
//! 1. **Differential replay.** The same history runs through
//!    [`ClusterArbiter`] and through a from-scratch re-implementation
//!    that keeps its books with plain selection loops, allocates one
//!    instance at a time for *every* policy (strict priority included),
//!    and bills by [counting intervals](crate::fox_ledger::naive_billed_duration)
//!    instead of `ceil`. Verdicts, per-tenant running counts, warm-pool
//!    sizes, and the final per-tenant billed ledgers must agree — the
//!    ledgers bit-exactly (billed durations are integer multiples of the
//!    charging interval, so float sums are exact).
//! 2. **Event-log replay.** The arbiter's raw [`ClusterEvent`] log is
//!    replayed by a bookkeeper that knows nothing of policies: it just
//!    moves leases between `running`/`warm` and asserts the budget
//!    invariant `running + warm ≤ budget` after *every single event*,
//!    then re-derives the per-tenant ledgers (transferred leases billed
//!    to their origin) and compares them bit-exactly against
//!    [`ClusterArbiter::billed_instance_seconds`].

use crate::config::ConformanceConfig;
use crate::fox_ledger::naive_billed_duration;
use crate::report::OracleReport;
use chamulteon::{
    ArbitrationPolicy, ChargingModel, ClusterArbiter, ClusterEvent, TenantId, TenantProposal,
    TenantVerdict,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paid time remaining under the counting billing rule, never negative.
fn naive_remaining(model: &ChargingModel, start: f64, now: f64) -> f64 {
    let elapsed = (now - start).max(0.0);
    (naive_billed_duration(model, elapsed) - elapsed).max(0.0)
}

/// Weight sanitizer mirror: positive and finite, else 1.
fn weight_of(proposal: &TenantProposal) -> f64 {
    if proposal.weight.is_finite() && proposal.weight > 0.0 {
        proposal.weight
    } else {
        1.0
    }
}

/// Gain sanitizer mirror: non-negative and finite, else 0.
fn gain_of(proposal: &TenantProposal) -> f64 {
    if proposal.slo_gain.is_finite() && proposal.slo_gain > 0.0 {
        proposal.slo_gain
    } else {
        0.0
    }
}

/// Independent re-implementation of the cluster arbiter: plain selection
/// loops, one-instance-at-a-time allocation for every policy, counting
/// billing. Shares no code with [`ClusterArbiter`] beyond the public
/// proposal/verdict types it must produce.
struct NaiveCluster {
    model: ChargingModel,
    policy: ArbitrationPolicy,
    budget: u32,
    /// Per-tenant running leases as `(start, origin)`.
    running: Vec<Vec<(f64, TenantId)>>,
    /// Warm pool as `(start, origin, paid_until)`.
    warm: Vec<(f64, TenantId, f64)>,
    /// Per-tenant billed seconds of closed leases.
    billed: Vec<f64>,
}

impl NaiveCluster {
    fn new(model: ChargingModel, policy: ArbitrationPolicy, budget: u32, tenants: usize) -> Self {
        NaiveCluster {
            model,
            policy,
            budget,
            running: vec![Vec::new(); tenants],
            warm: Vec::new(),
            billed: vec![0.0; tenants],
        }
    }

    fn ensure(&mut self, tenant: TenantId) {
        if tenant >= self.running.len() {
            self.running.resize(tenant + 1, Vec::new());
        }
        if tenant >= self.billed.len() {
            self.billed.resize(tenant + 1, 0.0);
        }
    }

    fn held(&self, tenant: TenantId) -> u32 {
        let count = self.running.get(tenant).map_or(0, Vec::len);
        u32::try_from(count).unwrap_or(u32::MAX)
    }

    fn total_running(&self) -> u32 {
        let count: usize = self.running.iter().map(Vec::len).sum();
        u32::try_from(count).unwrap_or(u32::MAX)
    }

    /// Index of `tenant`'s cheapest lease: least remaining paid time,
    /// ties to the earliest start, then the lowest origin.
    fn cheapest(&self, tenant: TenantId, now: f64) -> Option<usize> {
        let book = self.running.get(tenant)?;
        let mut best: Option<(usize, f64, f64, TenantId)> = None;
        for (i, &(start, origin)) in book.iter().enumerate() {
            let remaining = naive_remaining(&self.model, start, now);
            let better = match best {
                None => true,
                Some((_, r, s, o)) => {
                    remaining < r || (remaining == r && (start < s || (start == s && origin < o)))
                }
            };
            if better {
                best = Some((i, remaining, start, origin));
            }
        }
        best.map(|(i, _, _, _)| i)
    }

    /// Index of the warm lease worth drawing first: most paid time left,
    /// ties to the earliest start, then the lowest origin.
    fn warmest(&self, now: f64) -> Option<usize> {
        let mut best: Option<(usize, f64, f64, TenantId)> = None;
        for (i, &(start, origin, paid_until)) in self.warm.iter().enumerate() {
            let left = paid_until - now;
            let better = match best {
                None => true,
                Some((_, l, s, o)) => {
                    left > l || (left == l && (start < s || (start == s && origin < o)))
                }
            };
            if better {
                best = Some((i, left, start, origin));
            }
        }
        best.map(|(i, _, _, _)| i)
    }

    /// One-at-a-time allocation. Strict priority degenerates to the same
    /// sequence as the implementation's sort-then-fill because its rank
    /// ignores how much a proposal has already been granted.
    fn pick_grant(
        &self,
        proposals: &[TenantProposal],
        want: &[u32],
        granted: &[u32],
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in proposals.iter().enumerate() {
            if want.get(i).copied().unwrap_or(0) == 0 {
                continue;
            }
            let Some(b) = best else {
                best = Some(i);
                continue;
            };
            let q = &proposals[b];
            let better = match self.policy {
                ArbitrationPolicy::StrictPriority => {
                    let (wi, wb) = (weight_of(p), weight_of(q));
                    wi > wb || (wi == wb && p.tenant < q.tenant)
                }
                ArbitrationPolicy::WeightedFairShare => {
                    let ki = f64::from(granted[i]) / weight_of(p);
                    let kb = f64::from(granted[b]) / weight_of(q);
                    let (wi, wb) = (weight_of(p), weight_of(q));
                    ki < kb || (ki == kb && (wi > wb || (wi == wb && p.tenant < q.tenant)))
                }
                ArbitrationPolicy::CostGreedy => {
                    let gi = gain_of(p) / f64::from(granted[i] + 1);
                    let gb = gain_of(q) / f64::from(granted[b] + 1);
                    gi > gb || (gi == gb && p.tenant < q.tenant)
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Replays one arbitration cycle; mirrors the contract, not the code.
    fn arbitrate(&mut self, now: f64, proposals: &[TenantProposal]) -> Vec<TenantVerdict> {
        for p in proposals {
            self.ensure(p.tenant);
        }
        // Expire overdue warm leases, billing each origin its paid window.
        let mut i = 0;
        while i < self.warm.len() {
            let (start, origin, paid_until) = self.warm[i];
            if paid_until <= now {
                self.warm.remove(i);
                self.ensure(origin);
                self.billed[origin] += naive_billed_duration(&self.model, paid_until - start);
            } else {
                i += 1;
            }
        }

        let mut verdicts: Vec<TenantVerdict> = proposals
            .iter()
            .map(|p| TenantVerdict {
                tenant: p.tenant,
                requested: p.desired,
                granted: 0,
                drawn_warm: 0,
                opened_cold: 0,
                deposited: 0,
                closed: 0,
            })
            .collect();

        // Releases first: close inside the release window, park warm else.
        let window = 0.1 * self.model.interval;
        for (p, verdict) in proposals.iter().zip(verdicts.iter_mut()) {
            while self.held(p.tenant) > p.desired {
                let Some(index) = self.cheapest(p.tenant, now) else {
                    break;
                };
                let (start, origin) = self.running[p.tenant].remove(index);
                if naive_remaining(&self.model, start, now) <= window {
                    self.ensure(origin);
                    self.billed[origin] += naive_billed_duration(&self.model, now - start);
                    verdict.closed += 1;
                } else {
                    let paid_until = start + naive_billed_duration(&self.model, now - start);
                    self.warm.push((start, origin, paid_until));
                    verdict.deposited += 1;
                }
            }
        }

        // Grants: one instance at a time, warm pool before cold leases.
        let mut want: Vec<u32> = proposals
            .iter()
            .map(|p| p.desired.saturating_sub(self.held(p.tenant)))
            .collect();
        let mut granted: Vec<u32> = vec![0; proposals.len()];
        let mut left = self.budget.saturating_sub(self.total_running());
        while left > 0 {
            let Some(index) = self.pick_grant(proposals, &want, &granted) else {
                break;
            };
            let tenant = proposals[index].tenant;
            if let Some(w) = self.warmest(now) {
                let (start, origin, _) = self.warm.remove(w);
                self.ensure(tenant);
                self.running[tenant].push((start, origin));
                verdicts[index].drawn_warm += 1;
            } else {
                self.ensure(tenant);
                self.running[tenant].push((now, tenant));
                verdicts[index].opened_cold += 1;
            }
            want[index] -= 1;
            granted[index] += 1;
            left -= 1;
        }

        for verdict in &mut verdicts {
            verdict.granted = self.held(verdict.tenant);
        }
        verdicts
    }

    /// Per-tenant billed instance-seconds as of `now`: closed leases plus
    /// accrued running leases plus fixed warm-lease paid windows.
    fn billed_instance_seconds(&self, tenant: TenantId, now: f64) -> f64 {
        let mut total = self.billed.get(tenant).copied().unwrap_or(0.0);
        for &(start, origin) in self.running.iter().flatten() {
            if origin == tenant {
                total += naive_billed_duration(&self.model, now - start);
            }
        }
        for &(start, origin, paid_until) in &self.warm {
            if origin == tenant {
                total += naive_billed_duration(&self.model, paid_until - start);
            }
        }
        total
    }
}

/// Policy-blind replay of a raw event log: moves leases between the
/// running set and the warm pool, asserts the budget invariant after
/// every event, and re-derives the per-tenant ledgers at `final_time`.
fn replay_events(
    model: &ChargingModel,
    budget: u32,
    tenants: usize,
    events: &[ClusterEvent],
    final_time: f64,
) -> Result<Vec<f64>, String> {
    let mut running: Vec<(f64, TenantId)> = Vec::new();
    let mut warm: Vec<(f64, TenantId, f64)> = Vec::new();
    let mut billed = vec![0.0f64; tenants];
    let bill = |billed: &mut Vec<f64>, origin: TenantId, amount: f64| {
        if origin >= billed.len() {
            billed.resize(origin + 1, 0.0);
        }
        billed[origin] += amount;
    };
    for (index, event) in events.iter().enumerate() {
        match *event {
            ClusterEvent::Open { time, tenant } => {
                running.push((time, tenant));
            }
            ClusterEvent::Draw {
                tenant,
                start,
                origin,
                ..
            } => {
                let Some(pos) = warm.iter().position(|&(s, o, _)| s == start && o == origin) else {
                    return Err(format!(
                        "event {index}: draw of ({start}, {origin}) not in warm pool"
                    ));
                };
                warm.remove(pos);
                let _ = tenant;
                running.push((start, origin));
            }
            ClusterEvent::Deposit {
                time,
                start,
                origin,
                ..
            } => {
                let Some(pos) = running.iter().position(|&(s, o)| s == start && o == origin) else {
                    return Err(format!(
                        "event {index}: deposit of ({start}, {origin}) not running"
                    ));
                };
                running.remove(pos);
                let paid_until = start + naive_billed_duration(model, time - start);
                warm.push((start, origin, paid_until));
            }
            ClusterEvent::Close {
                time,
                start,
                origin,
                ..
            } => {
                let Some(pos) = running.iter().position(|&(s, o)| s == start && o == origin) else {
                    return Err(format!(
                        "event {index}: close of ({start}, {origin}) not running"
                    ));
                };
                running.remove(pos);
                bill(
                    &mut billed,
                    origin,
                    naive_billed_duration(model, time - start),
                );
            }
            ClusterEvent::Expire {
                start,
                paid_until,
                origin,
                ..
            } => {
                let Some(pos) = warm
                    .iter()
                    .position(|&(s, o, p)| s == start && o == origin && p == paid_until)
                else {
                    return Err(format!(
                        "event {index}: expiry of ({start}, {origin}, {paid_until}) not warm"
                    ));
                };
                warm.remove(pos);
                bill(
                    &mut billed,
                    origin,
                    naive_billed_duration(model, paid_until - start),
                );
            }
        }
        if running.len() + warm.len() > usize::try_from(budget).unwrap_or(usize::MAX) {
            return Err(format!(
                "event {index} ({event:?}): {} running + {} warm exceeds budget {budget}",
                running.len(),
                warm.len()
            ));
        }
    }
    for &(start, origin) in &running {
        bill(
            &mut billed,
            origin,
            naive_billed_duration(model, final_time - start),
        );
    }
    for &(start, origin, paid_until) in &warm {
        bill(
            &mut billed,
            origin,
            naive_billed_duration(model, paid_until - start),
        );
    }
    billed.resize(billed.len().max(tenants), 0.0);
    Ok(billed)
}

/// One generated arbitration cycle.
struct Cycle {
    now: f64,
    proposals: Vec<TenantProposal>,
}

/// Scenario parameters plus the full cycle history.
struct Scenario {
    model: ChargingModel,
    policy: ArbitrationPolicy,
    budget: u32,
    tenants: usize,
    cycles: Vec<Cycle>,
}

/// Draws one multi-tenant history. Weights and gains deliberately include
/// the degenerate values the sanitizers must map to 1 and 0.
fn generate_scenario(rng: &mut StdRng) -> Scenario {
    let model = if rng.gen_bool(0.5) {
        ChargingModel::ec2_hourly()
    } else {
        ChargingModel::gcp_per_minute()
    };
    let policy = match rng.gen_range(0..3u32) {
        0 => ArbitrationPolicy::StrictPriority,
        1 => ArbitrationPolicy::WeightedFairShare,
        _ => ArbitrationPolicy::CostGreedy,
    };
    let budget = rng.gen_range(2..=10u32);
    let tenants = rng.gen_range(2..=4usize);
    let cycle_count = rng.gen_range(8..=25usize);
    // A drifted epoch exercises the float-boundary snap in the billing.
    let mut now = if rng.gen_bool(0.5) { 0.0 } else { 0.1 };
    let mut cycles = Vec::with_capacity(cycle_count);
    for _ in 0..cycle_count {
        now += match rng.gen_range(0..6u32) {
            0 => model.interval,
            1 => 2.0 * model.interval,
            2 => model.interval / 2.0,
            3 => model.minimum,
            4 => 0.0,
            _ => rng.gen_range(0.3..1.7) * model.interval,
        };
        let mut proposals = Vec::new();
        for tenant in 0..tenants {
            // Most cycles every tenant proposes; sometimes one sits out
            // (its leases ride through the cycle untouched).
            if rng.gen_bool(0.85) {
                let weight = match rng.gen_range(0..6u32) {
                    0 => 1.0,
                    1 => 2.0,
                    2 => 0.5,
                    3 => f64::from(rng.gen_range(1..10u32)),
                    4 => 0.0,
                    _ => f64::NAN,
                };
                let slo_gain = match rng.gen_range(0..5u32) {
                    0..=2 => f64::from(rng.gen_range(0..50u32)) / 10.0,
                    3 => -1.0,
                    _ => f64::INFINITY,
                };
                proposals.push(TenantProposal {
                    tenant,
                    desired: rng.gen_range(0..=8u32),
                    weight,
                    slo_gain,
                });
            }
        }
        cycles.push(Cycle { now, proposals });
    }
    Scenario {
        model,
        policy,
        budget,
        tenants,
        cycles,
    }
}

/// Runs the cluster differential over `config.cluster_cases` generated
/// histories: per-cycle verdict/book agreement with the naive arbiter,
/// the per-event budget invariant, and bit-exact per-tenant ledgers from
/// both the naive replay and the event-log replay.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("cluster-arbiter");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC1A5_7E12);
    for case in 0..config.cluster_cases {
        report.count_case();
        let scenario = generate_scenario(&mut rng);
        let mut arbiter = ClusterArbiter::new(
            scenario.model.clone(),
            scenario.policy,
            scenario.budget,
            scenario.tenants,
        );
        let mut naive = NaiveCluster::new(
            scenario.model.clone(),
            scenario.policy,
            scenario.budget,
            scenario.tenants,
        );
        let mut log: Vec<ClusterEvent> = Vec::new();
        let mut last_now = 0.0;
        let mut clean = true;
        for (cycle_index, cycle) in scenario.cycles.iter().enumerate() {
            let impl_verdicts = arbiter.arbitrate(cycle.now, &cycle.proposals);
            let naive_verdicts = naive.arbitrate(cycle.now, &cycle.proposals);
            log.extend(arbiter.take_events());
            last_now = cycle.now;
            if impl_verdicts != naive_verdicts {
                report.mismatch(format!(
                    "case {case} cycle {cycle_index} ({}, {}): verdicts diverge: \
                     impl {impl_verdicts:?}, naive {naive_verdicts:?}",
                    scenario.model.name,
                    scenario.policy.name()
                ));
                clean = false;
                break;
            }
            if arbiter.in_use() > arbiter.budget() {
                report.mismatch(format!(
                    "case {case} cycle {cycle_index}: {} in use exceeds budget {}",
                    arbiter.in_use(),
                    arbiter.budget()
                ));
                clean = false;
                break;
            }
            if arbiter.warm_count() != u32::try_from(naive.warm.len()).unwrap_or(u32::MAX) {
                report.mismatch(format!(
                    "case {case} cycle {cycle_index}: impl warm pool {} vs naive {}",
                    arbiter.warm_count(),
                    naive.warm.len()
                ));
                clean = false;
                break;
            }
            for tenant in 0..scenario.tenants {
                if arbiter.running(tenant) != naive.held(tenant) {
                    report.mismatch(format!(
                        "case {case} cycle {cycle_index}: tenant {tenant} runs {} \
                         (impl) vs {} (naive)",
                        arbiter.running(tenant),
                        naive.held(tenant)
                    ));
                    clean = false;
                    break;
                }
            }
            if !clean {
                break;
            }
        }
        if !clean {
            continue;
        }
        // Final ledgers: naive replay must agree bit-exactly.
        for tenant in 0..scenario.tenants {
            let impl_billed = arbiter.billed_instance_seconds(tenant, last_now);
            let naive_billed = naive.billed_instance_seconds(tenant, last_now);
            if impl_billed.to_bits() != naive_billed.to_bits() {
                report.mismatch(format!(
                    "case {case}: tenant {tenant} ledger {impl_billed} s (impl) \
                     vs {naive_billed} s (naive)"
                ));
                clean = false;
            }
        }
        if !clean {
            continue;
        }
        // Event-log replay: budget invariant at every event, then the
        // same bit-exact ledger agreement from the raw provenance alone.
        match replay_events(
            &scenario.model,
            scenario.budget,
            scenario.tenants,
            &log,
            last_now,
        ) {
            Ok(replayed) => {
                for tenant in 0..scenario.tenants {
                    let impl_billed = arbiter.billed_instance_seconds(tenant, last_now);
                    let from_log = replayed.get(tenant).copied().unwrap_or(0.0);
                    if impl_billed.to_bits() != from_log.to_bits() {
                        report.mismatch(format!(
                            "case {case}: tenant {tenant} ledger {impl_billed} s (impl) \
                             vs {from_log} s (event-log replay)"
                        ));
                    }
                }
            }
            Err(message) => {
                report.mismatch(format!("case {case}: event log replay failed: {message}"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposal(tenant: TenantId, desired: u32, weight: f64, gain: f64) -> TenantProposal {
        TenantProposal {
            tenant,
            desired,
            weight,
            slo_gain: gain,
        }
    }

    #[test]
    fn naive_agrees_on_the_warm_transfer_scenario() {
        // Mirror of cluster::tests::still_paid_release_parks_warm_...
        let model = ChargingModel::ec2_hourly();
        let mut arbiter =
            ClusterArbiter::new(model.clone(), ArbitrationPolicy::StrictPriority, 10, 2);
        let mut naive = NaiveCluster::new(model, ArbitrationPolicy::StrictPriority, 10, 2);
        let script = [
            (0.0, vec![proposal(0, 3, 1.0, 0.0)]),
            (600.0, vec![proposal(0, 1, 1.0, 0.0)]),
            (1200.0, vec![proposal(1, 3, 1.0, 0.0)]),
        ];
        for (now, proposals) in script {
            assert_eq!(
                arbiter.arbitrate(now, &proposals),
                naive.arbitrate(now, &proposals),
                "t={now}"
            );
        }
        for tenant in 0..2 {
            assert_eq!(
                arbiter.billed_instance_seconds(tenant, 1800.0).to_bits(),
                naive.billed_instance_seconds(tenant, 1800.0).to_bits(),
                "tenant {tenant}"
            );
        }
    }

    #[test]
    fn event_replay_rejects_an_over_budget_log() {
        let model = ChargingModel::ec2_hourly();
        let log = vec![
            ClusterEvent::Open {
                time: 0.0,
                tenant: 0,
            },
            ClusterEvent::Open {
                time: 0.0,
                tenant: 0,
            },
        ];
        assert!(replay_events(&model, 1, 1, &log, 100.0).is_err());
        assert!(replay_events(&model, 2, 1, &log, 100.0).is_ok());
    }

    #[test]
    fn small_scenario_batch_is_clean() {
        let config = ConformanceConfig {
            cluster_cases: 25,
            ..ConformanceConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.cases, 25);
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
