//! Crash-recovery equivalence oracle.
//!
//! Generates controller scenarios — every configuration flavor (both
//! cycles, reactive-only, proactive-only), every FOX charging model
//! (none, EC2 hourly, GCP per-minute), and degraded observation streams
//! mixing monitoring dropouts, NaN-corrupt utilizations and implausible
//! rate spikes — and, for a seeded grid of crash points inside each
//! scenario, asserts that a controller which crashes, is rebuilt from its
//! encoded snapshot and continues, is *bit-identical* to the
//! uninterrupted reference run:
//!
//! * every subsequent per-service target vector must match exactly,
//! * the final FOX-billed instance-seconds must match to the bit
//!   ([`f64::to_bits`]),
//! * the forecast counters and the full degradation-event log must match,
//! * and the snapshot text itself must be byte-stable
//!   (`encode ∘ decode ∘ encode = encode`).
//!
//! Crash points deliberately include cycles immediately after a
//! degraded/held cycle (dropout or quarantine just happened) and — under
//! the EC2 hourly model, where almost every 60 s cycle boundary falls
//! inside an open billing hour — crashes landing mid-billing-interval
//! with open leases in the ledger.

use crate::config::ConformanceConfig;
use crate::report::OracleReport;
use chamulteon::{Chamulteon, ChamulteonConfig, ChargingModel, ControllerSnapshot, Observation};
use chamulteon_perfmodel::ApplicationModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scaling/monitoring interval of the generated scenarios, in seconds.
const INTERVAL: f64 = 60.0;

/// One generated crash-recovery scenario: a controller flavor plus a
/// degraded observation stream, `observations[cycle][service]`.
struct Scenario {
    config: ChamulteonConfig,
    fox: Option<ChargingModel>,
    observations: Vec<Vec<Observation>>,
    /// Cycles in which at least one service's observation was dropped,
    /// corrupted or implausible — crash points right after these cover
    /// the held/degraded-state paths.
    degraded_cycles: Vec<usize>,
}

/// Draws one scenario. `force_ec2` pins the first scenario to the EC2
/// hourly model so mid-billing-interval crashes are guaranteed to appear
/// in every run, regardless of the seed.
fn generate_scenario(rng: &mut StdRng, services: usize, force_ec2: bool) -> Scenario {
    let config = match rng.gen_range(0..3u32) {
        0 => ChamulteonConfig::default(),
        1 => ChamulteonConfig::reactive_only(),
        _ => ChamulteonConfig::proactive_only(),
    };
    let fox = if force_ec2 {
        Some(ChargingModel::ec2_hourly())
    } else {
        match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(ChargingModel::ec2_hourly()),
            _ => Some(ChargingModel::gcp_per_minute()),
        }
    };
    let cycles = rng.gen_range(48..=72usize);
    let base = rng.gen_range(8.0..40.0f64);
    let amp = rng.gen_range(0.0..30.0f64);
    let period = rng.gen_range(5..=16usize);
    let mut observations = Vec::with_capacity(cycles);
    let mut degraded_cycles = Vec::new();
    for k in 0..cycles {
        let mut degraded = false;
        let row: Vec<Observation> = (0..services)
            .map(|s| {
                let roll = rng.gen_range(0..100u32);
                if roll < 8 {
                    degraded = true;
                    return Observation::Missing;
                }
                let phase = ((k + s) % period) as f64;
                let mut rate = base + amp * phase / period as f64;
                if roll < 12 {
                    // An implausible monitoring spike the gate rejects.
                    rate *= 50.0;
                    degraded = true;
                }
                let utilization = if roll < 16 {
                    degraded = true;
                    f64::NAN
                } else {
                    rng.gen_range(0.2..0.95)
                };
                Observation::Raw {
                    duration: INTERVAL,
                    arrivals: (rate * INTERVAL).round(),
                    completions: (rate * INTERVAL).round(),
                    utilization,
                    instances: rng.gen_range(1..=6u32),
                    mean_response_time: if roll % 2 == 0 {
                        Some(rng.gen_range(0.01..0.4))
                    } else {
                        None
                    },
                }
            })
            .collect();
        if degraded {
            degraded_cycles.push(k);
        }
        observations.push(row);
    }
    Scenario {
        config,
        fox,
        observations,
        degraded_cycles,
    }
}

/// Builds the scenario's controller flavor on a fresh model instance.
fn build(model: &ApplicationModel, scenario: &Scenario) -> Chamulteon {
    let controller = Chamulteon::new(model.clone(), scenario.config.clone());
    match &scenario.fox {
        Some(charging) => controller.with_fox(charging.clone()),
        None => controller,
    }
}

/// The crash points exercised within one scenario: every cycle right
/// after an early degraded cycle, padded with seeded draws across the
/// whole run. Sorted and deduplicated so each point is a distinct case.
fn crash_points(rng: &mut StdRng, scenario: &Scenario, per_scenario: usize) -> Vec<usize> {
    let cycles = scenario.observations.len();
    let mut points: Vec<usize> = scenario
        .degraded_cycles
        .iter()
        .take(3)
        .map(|&d| d + 1)
        .filter(|&p| p < cycles)
        .collect();
    while points.len() < per_scenario {
        points.push(rng.gen_range(1..cycles));
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Runs one crash point: drive a fresh controller to `crash`, snapshot,
/// encode → decode → re-encode (byte-stability), restore, and continue
/// both it and the uninterrupted reference to the end of the scenario.
#[allow(clippy::too_many_lines)]
fn run_case(
    report: &mut OracleReport,
    model: &ApplicationModel,
    scenario: &Scenario,
    scenario_index: usize,
    crash: usize,
) {
    report.count_case();
    let label = format!("scenario {scenario_index}, crash at cycle {crash}");
    let mut reference = build(model, scenario);
    let mut crashed = build(model, scenario);
    for (k, row) in scenario.observations.iter().take(crash).enumerate() {
        let t = INTERVAL * (k + 1) as f64;
        let a = reference.tick_observed(t, row);
        let b = crashed.tick_observed(t, row);
        if a != b {
            report.mismatch(format!("{label}: pre-crash divergence at cycle {k}"));
            return;
        }
    }
    let text = crashed.snapshot().encode();
    drop(crashed); // the crash: only the encoded snapshot survives
    let snapshot = match ControllerSnapshot::decode(&text) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            report.mismatch(format!("{label}: snapshot failed to decode: {e}"));
            return;
        }
    };
    if snapshot.encode() != text {
        report.mismatch(format!("{label}: snapshot encoding is not byte-stable"));
        return;
    }
    let mut restored = match Chamulteon::restore(model.clone(), scenario.config.clone(), &snapshot)
    {
        Ok(restored) => restored,
        Err(e) => {
            report.mismatch(format!("{label}: restore rejected its own snapshot: {e}"));
            return;
        }
    };
    let mut last = INTERVAL * crash as f64;
    for (k, row) in scenario.observations.iter().enumerate().skip(crash) {
        let t = INTERVAL * (k + 1) as f64;
        last = t;
        let want = reference.tick_observed(t, row);
        let got = restored.tick_observed(t, row);
        if want != got {
            report.mismatch(format!(
                "{label}: cycle {k} diverged after restore: expected {want:?}, got {got:?}"
            ));
            return;
        }
    }
    let billed_want = reference.billed_instance_seconds(last);
    let billed_got = restored.billed_instance_seconds(last);
    if billed_want.map(f64::to_bits) != billed_got.map(f64::to_bits) {
        report.mismatch(format!(
            "{label}: FOX ledgers diverged: expected {billed_want:?}, got {billed_got:?}"
        ));
        return;
    }
    if reference.forecasts_made() != restored.forecasts_made() {
        report.mismatch(format!(
            "{label}: forecast counters diverged: {} vs {}",
            reference.forecasts_made(),
            restored.forecasts_made()
        ));
        return;
    }
    if reference.degradation().events() != restored.degradation().events() {
        report.mismatch(format!("{label}: degradation logs diverged"));
    }
}

/// Runs the crash-recovery differential over a seeded grid of
/// [`ConformanceConfig::recovery_crash_points`] crash points.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("crash-recovery");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EC0_4E4F);
    let model = ApplicationModel::paper_benchmark();
    let services = model.service_count();
    let target = u64::try_from(config.recovery_crash_points).unwrap_or(u64::MAX);
    let mut scenario_index = 0usize;
    while report.cases < target {
        let scenario = generate_scenario(&mut rng, services, scenario_index == 0);
        for crash in crash_points(&mut rng, &scenario, 8) {
            if report.cases >= target {
                break;
            }
            run_case(&mut report, &model, &scenario, scenario_index, crash);
        }
        scenario_index += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_recovery_grid_is_clean() {
        let config = ConformanceConfig::quick();
        let report = run(&config);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert_eq!(report.cases, config.recovery_crash_points as u64);
    }

    #[test]
    fn scenarios_cover_degraded_cycles_and_fox_models() {
        let mut rng = StdRng::seed_from_u64(0x5EC0_4E4F);
        let forced = generate_scenario(&mut rng, 3, true);
        assert_eq!(forced.fox, Some(ChargingModel::ec2_hourly()));
        let mut saw_degraded = false;
        let mut saw_gcp = false;
        for _ in 0..20 {
            let s = generate_scenario(&mut rng, 3, false);
            saw_degraded |= !s.degraded_cycles.is_empty();
            saw_gcp |= s.fox == Some(ChargingModel::gcp_per_minute());
        }
        assert!(saw_degraded, "no degraded cycles in 20 scenarios");
        assert!(saw_gcp, "no GCP scenarios in 20 draws");
    }
}
