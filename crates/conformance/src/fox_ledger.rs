//! Ledger-replay FOX oracle.
//!
//! Generates randomized decision logs — time advances that deliberately
//! include exact charging-interval multiples and float-drifted starts,
//! external fleet growth/shrinkage, and arbitrary proposed targets — and
//! replays each log twice: once through [`Fox`] and once through an
//! independent re-implementation of the published policy that derives
//! billed durations by *counting* started intervals instead of `ceil`,
//! and keeps its lease book with plain selection loops instead of
//! sort-and-pop.
//!
//! Per step, the allowed target and per-service lease counts must agree
//! exactly; at the end of the replay the total billed instance-seconds
//! must agree exactly (billed durations are integer multiples of the
//! charging interval, so float addition is exact and bit-level equality
//! is the correct comparison).

use crate::config::ConformanceConfig;
use crate::report::OracleReport;
use chamulteon::{ChargingModel, Fox};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Billed duration derived by counting started intervals: the smallest
/// `k` with `k ≥ elapsed/interval` (up to the documented relative `1e-9`
/// boundary snap), times the interval. Deliberately avoids `ceil`/`round`
/// so it cannot share a bug with [`ChargingModel::billed_duration`].
pub fn naive_billed_duration(model: &ChargingModel, elapsed: f64) -> f64 {
    let elapsed = elapsed.max(0.0).max(model.minimum);
    let ratio = elapsed / model.interval;
    let tolerance = 1e-9 * ratio.max(1.0);
    let mut k: u32 = 0;
    while f64::from(k) < ratio - tolerance {
        if k == u32::MAX {
            break;
        }
        k = k.saturating_add(1);
    }
    f64::from(k) * model.interval
}

/// Paid time remaining under the naive billing rule, never negative.
fn naive_remaining(model: &ChargingModel, start: f64, now: f64) -> f64 {
    let elapsed = (now - start).max(0.0);
    (naive_billed_duration(model, elapsed) - elapsed).max(0.0)
}

/// Independent replay of FOX's lease policy from the raw decision log.
struct LedgerOracle {
    model: ChargingModel,
    leases: Vec<Vec<f64>>,
    billed_released: f64,
}

impl LedgerOracle {
    fn new(model: ChargingModel, services: usize) -> Self {
        LedgerOracle {
            model,
            leases: vec![Vec::new(); services],
            billed_released: 0.0,
        }
    }

    /// Index of the lease cheapest to close: least remaining paid time,
    /// ties broken towards the earliest start. Plain selection loop — no
    /// sorting, no comparator chaining.
    fn cheapest(&self, service: usize, now: f64) -> Option<usize> {
        let leases = self.leases.get(service)?;
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, &start) in leases.iter().enumerate() {
            let remaining = naive_remaining(&self.model, start, now);
            let better = match best {
                None => true,
                Some((_, r, s)) => remaining < r || (remaining == r && start < s),
            };
            if better {
                best = Some((i, remaining, start));
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Replays one review step and returns the allowed target.
    fn review(&mut self, service: usize, now: f64, current: u32, proposed: u32) -> u32 {
        if service >= self.leases.len() {
            self.leases.resize(service + 1, Vec::new());
        }
        let current_len = usize::try_from(current).unwrap_or(usize::MAX);
        while self.leases[service].len() < current_len {
            self.leases[service].push(now);
        }
        while self.leases[service].len() > current_len {
            let Some(idx) = self.cheapest(service, now) else {
                break;
            };
            let start = self.leases[service].remove(idx);
            self.billed_released += naive_billed_duration(&self.model, now - start);
        }
        if proposed >= current {
            return proposed;
        }
        let window = self.model.interval * 0.1;
        let want_release = current - proposed;
        let mut released = 0u32;
        while released < want_release {
            let Some(idx) = self.cheapest(service, now) else {
                break;
            };
            let start = self.leases[service][idx];
            if naive_remaining(&self.model, start, now) <= window {
                self.leases[service].remove(idx);
                self.billed_released += naive_billed_duration(&self.model, now - start);
                released += 1;
            } else {
                break;
            }
        }
        current - released
    }

    /// Total billed instance-seconds: released leases plus running leases
    /// as of `now`.
    fn billed_instance_seconds(&self, now: f64) -> f64 {
        let running: f64 = self
            .leases
            .iter()
            .flatten()
            .map(|&start| naive_billed_duration(&self.model, now - start))
            .sum();
        self.billed_released + running
    }
}

/// One review step of a generated decision log.
struct Step {
    service: usize,
    now: f64,
    current: u32,
    proposed: u32,
}

/// Draws one decision log: a charging model, 1–2 services, 20–60 steps
/// whose time advances mix exact interval multiples, half-intervals, the
/// billing minimum, zero (same-instant reviews), and arbitrary drift, and
/// whose fleet sizes mix FOX-honoring evolution with external changes.
fn generate_replay(rng: &mut StdRng) -> (ChargingModel, usize, Vec<Step>) {
    let model = if rng.gen_bool(0.5) {
        ChargingModel::ec2_hourly()
    } else {
        ChargingModel::gcp_per_minute()
    };
    let services = rng.gen_range(1..=2usize);
    let steps = rng.gen_range(20..=60usize);
    // A drifted epoch start exercises the float-boundary snap: reviews at
    // `0.1 + k·interval` land ulps past exact interval boundaries.
    let mut now = if rng.gen_bool(0.5) { 0.0 } else { 0.1 };
    let mut fleet = vec![0u32; services];
    let mut log = Vec::with_capacity(steps);
    for _ in 0..steps {
        now += match rng.gen_range(0..6u32) {
            0 => model.interval,
            1 => 2.0 * model.interval,
            2 => model.interval / 2.0,
            3 => model.minimum,
            4 => 0.0,
            _ => rng.gen_range(1.0..1.5 * model.interval),
        };
        for (service, slot) in fleet.iter_mut().enumerate().take(services) {
            // Most steps the observed fleet honors the previous allowed
            // target; some steps it changes externally (drain, failure,
            // manual intervention).
            let current = if rng.gen_bool(0.25) {
                rng.gen_range(0..=12u32)
            } else {
                *slot
            };
            let proposed = rng.gen_range(0..=current.saturating_add(3));
            log.push(Step {
                service,
                now,
                current,
                proposed,
            });
            // The generated fleet follows the *proposed* target even when
            // FOX would veto it — that is exactly the externally-shrunk
            // fleet the sync path must bill correctly, and both replays
            // observe the same `current` either way.
            *slot = proposed;
        }
    }
    (model, services, log)
}

/// Runs the ledger differential: every generated log is replayed through
/// [`Fox`] and the naive oracle; allowed targets, lease counts, and total
/// billed instance-seconds must match exactly.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("fox-ledger");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF0F0_F0F0);
    for replay_index in 0..config.ledger_replays {
        report.count_case();
        let (model, services, log) = generate_replay(&mut rng);
        let mut fox = Fox::new(model.clone(), services);
        let mut oracle = LedgerOracle::new(model.clone(), services);
        let mut last_now = 0.0;
        let mut clean = true;
        for (step_index, step) in log.iter().enumerate() {
            let allowed_fox = fox.review(step.service, step.now, step.current, step.proposed);
            let allowed_oracle = oracle.review(step.service, step.now, step.current, step.proposed);
            if allowed_fox != allowed_oracle {
                report.mismatch(format!(
                    "replay {replay_index} step {step_index} ({}): fox allowed {allowed_fox}, \
                     oracle allowed {allowed_oracle} (now {:.3}, current {}, proposed {})",
                    model.name, step.now, step.current, step.proposed
                ));
                clean = false;
                break;
            }
            let fox_leased = fox.leased(step.service);
            let oracle_leased = oracle.leases.get(step.service).map_or(0, Vec::len);
            if fox_leased != oracle_leased {
                report.mismatch(format!(
                    "replay {replay_index} step {step_index} ({}): fox holds {fox_leased} \
                     leases, oracle {oracle_leased} (now {:.3})",
                    model.name, step.now
                ));
                clean = false;
                break;
            }
            last_now = step.now;
        }
        if !clean {
            continue;
        }
        let fox_billed = fox.billed_instance_seconds(last_now);
        let oracle_billed = oracle.billed_instance_seconds(last_now);
        // Billed durations are integer multiples of the interval; their sums
        // are exact, so any difference at all is a real divergence.
        if fox_billed != oracle_billed {
            report.mismatch(format!(
                "replay {replay_index} ({}): fox billed {fox_billed} s, oracle {oracle_billed} s",
                model.name
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_billing_matches_charging_model_everywhere_probed() {
        for model in [ChargingModel::ec2_hourly(), ChargingModel::gcp_per_minute()] {
            for k in 0..500u32 {
                let elapsed = f64::from(k) * 37.3;
                assert_eq!(
                    naive_billed_duration(&model, elapsed),
                    model.billed_duration(elapsed),
                    "{} elapsed {elapsed}",
                    model.name
                );
            }
            // Exact boundaries and drifted boundaries.
            for k in 1..10u32 {
                let exact = f64::from(k) * model.interval;
                assert_eq!(
                    naive_billed_duration(&model, exact),
                    model.billed_duration(exact)
                );
                let drifted = (0.1 + exact) - 0.1;
                assert_eq!(
                    naive_billed_duration(&model, drifted),
                    model.billed_duration(drifted)
                );
            }
        }
    }

    #[test]
    fn oracle_agrees_on_the_partial_release_scenario() {
        // Mirror of fox::tests::partial_release_when_leases_differ.
        let model = ChargingModel::ec2_hourly();
        let mut fox = Fox::new(model.clone(), 1);
        let mut oracle = LedgerOracle::new(model, 1);
        for (now, current, proposed) in [(0.0, 2, 2), (1800.0, 3, 3), (3550.0, 3, 0)] {
            assert_eq!(
                fox.review(0, now, current, proposed),
                oracle.review(0, now, current, proposed),
                "t={now}"
            );
        }
        assert_eq!(
            fox.billed_instance_seconds(3550.0),
            oracle.billed_instance_seconds(3550.0)
        );
    }

    #[test]
    fn small_replay_batch_is_clean() {
        let config = ConformanceConfig {
            ledger_replays: 10,
            ..ConformanceConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.cases, 10);
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
