//! Machine-readable verdicts for the conformance oracles.

/// The outcome of one oracle's differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Stable oracle identifier (`"algorithm1"`, `"fox-ledger"`,
    /// `"mmn-microsim"`).
    pub oracle: String,
    /// Number of differential cases executed.
    pub cases: u64,
    /// One human-readable line per disagreement; empty means conformance.
    pub mismatches: Vec<String>,
}

impl OracleReport {
    /// Creates an empty report for `oracle`.
    pub fn new(oracle: &str) -> Self {
        OracleReport {
            oracle: oracle.to_string(),
            cases: 0,
            mismatches: Vec::new(),
        }
    }

    /// Whether the oracle found no disagreement.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Records one executed case.
    pub fn count_case(&mut self) {
        self.cases = self.cases.saturating_add(1);
    }

    /// Records a disagreement.
    pub fn mismatch(&mut self, description: String) {
        self.mismatches.push(description);
    }
}

/// The combined verdict of all oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Per-oracle outcomes, in execution order.
    pub oracles: Vec<OracleReport>,
}

impl ConformanceReport {
    /// Whether every oracle agreed with the implementation everywhere.
    pub fn passed(&self) -> bool {
        self.oracles.iter().all(OracleReport::passed)
    }

    /// Total cases across all oracles.
    pub fn total_cases(&self) -> u64 {
        self.oracles.iter().map(|o| o.cases).sum()
    }

    /// Total disagreements across all oracles.
    pub fn total_mismatches(&self) -> usize {
        self.oracles.iter().map(|o| o.mismatches.len()).sum()
    }

    /// Serializes the verdict as a small JSON document (hand-rolled — the
    /// workspace is offline and carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"passed\": ");
        out.push_str(if self.passed() { "true" } else { "false" });
        out.push_str(",\n  \"total_cases\": ");
        out.push_str(&self.total_cases().to_string());
        out.push_str(",\n  \"total_mismatches\": ");
        out.push_str(&self.total_mismatches().to_string());
        out.push_str(",\n  \"oracles\": [\n");
        for (i, oracle) in self.oracles.iter().enumerate() {
            out.push_str("    {\"oracle\": ");
            push_json_string(&mut out, &oracle.oracle);
            out.push_str(", \"cases\": ");
            out.push_str(&oracle.cases.to_string());
            out.push_str(", \"passed\": ");
            out.push_str(if oracle.passed() { "true" } else { "false" });
            out.push_str(", \"mismatches\": [");
            for (j, m) in oracle.mismatches.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, m);
            }
            out.push_str("]}");
            if i + 1 < self.oracles.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Appends `value` as a JSON string literal (quotes, backslashes, and
/// control characters escaped).
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let digit = (b >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_pass() {
        let report = ConformanceReport {
            oracles: vec![OracleReport::new("a"), OracleReport::new("b")],
        };
        assert!(report.passed());
        assert_eq!(report.total_cases(), 0);
        assert_eq!(report.total_mismatches(), 0);
    }

    #[test]
    fn mismatches_fail_the_run_and_serialize() {
        let mut oracle = OracleReport::new("algorithm1");
        oracle.count_case();
        oracle.mismatch("case 7: expected [2], got [3] \"quoted\"".to_string());
        let report = ConformanceReport {
            oracles: vec![oracle],
        };
        assert!(!report.passed());
        let json = report.to_json();
        assert!(json.contains("\"passed\": false"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"total_cases\": 1"), "{json}");
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\u{1}b\tc");
        assert_eq!(out, "\"a\\u0001b\\tc\"");
    }
}
