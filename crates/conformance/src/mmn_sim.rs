//! Discrete-event M/M/n micro-simulator oracle.
//!
//! A seeded continuous-time Markov-chain simulation of a single M/M/n/∞
//! station, independent of every analytic formula in `queueing`: the wait
//! probability is estimated by PASTA (fraction of arrivals that find all
//! servers busy), the mean queue length by time-weighting `(k − n)⁺`, and
//! the mean waiting time by sampling each waiting arrival's delay as a
//! sum of exponential service-completion stages.
//!
//! Each analytic quantity ([`MmnQueue::wait_probability`],
//! [`MmnQueue::mean_queue_length`], [`MmnQueue::mean_waiting_time`]) must
//! fall inside a batch-means confidence band around the simulated value;
//! the capacity solver's answers are additionally cross-checked by
//! simulating at `n*` (must meet the response-time target) and at
//! `n* − 1` (must miss it whenever the analytic gap is wide enough to
//! resolve statistically).

use crate::config::ConformanceConfig;
use crate::report::OracleReport;
use chamulteon_queueing::capacity::min_instances_for_response_time;
use chamulteon_queueing::MmnQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of batches for the batch-means variance estimate.
const BATCHES: u64 = 32;

/// A simulated point estimate with its batch-means standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (mean of batch means).
    pub value: f64,
    /// Standard error of the batch means.
    pub se: f64,
}

/// The three station measures one simulation run produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimMeasures {
    /// PASTA estimate of the Erlang-C wait probability.
    pub wait_probability: Estimate,
    /// Time-average of `(k − n)⁺`.
    pub mean_queue_length: Estimate,
    /// Mean sampled queueing delay (zero for non-waiting arrivals).
    pub mean_waiting_time: Estimate,
}

/// Per-batch accumulator for arrival-indexed statistics.
struct Batcher {
    batch_size: u64,
    in_batch: u64,
    sum: f64,
    means: Vec<f64>,
}

impl Batcher {
    fn new(batch_size: u64) -> Self {
        Batcher {
            batch_size: batch_size.max(1),
            in_batch: 0,
            sum: 0.0,
            means: Vec::new(),
        }
    }

    fn push(&mut self, value: f64) {
        self.sum += value;
        self.in_batch += 1;
        if self.in_batch >= self.batch_size {
            self.means.push(self.sum / u64_to_f64(self.in_batch));
            self.sum = 0.0;
            self.in_batch = 0;
        }
    }

    fn estimate(&self) -> Option<Estimate> {
        mean_and_se(&self.means)
    }
}

/// Lossless-enough `u64 → f64` for event counts (all values here are far
/// below 2⁵³).
fn u64_to_f64(value: u64) -> f64 {
    let high = u32::try_from(value >> 32).unwrap_or(u32::MAX);
    let low = u32::try_from(value & 0xFFFF_FFFF).unwrap_or(u32::MAX);
    f64::from(high) * 4_294_967_296.0 + f64::from(low)
}

/// Mean of batch means and its standard error; `None` below two batches.
fn mean_and_se(batch_means: &[f64]) -> Option<Estimate> {
    if batch_means.len() < 2 {
        return None;
    }
    let b = u64_to_f64(u64::try_from(batch_means.len()).unwrap_or(u64::MAX));
    let mean = batch_means.iter().sum::<f64>() / b;
    let var = batch_means
        .iter()
        .map(|m| (m - mean) * (m - mean))
        .sum::<f64>()
        / (b - 1.0);
    Some(Estimate {
        value: mean,
        se: (var / b).sqrt(),
    })
}

/// Simulates an M/M/n/∞ station and returns the measured statistics, or
/// `None` when the run is too short to form confidence intervals.
pub fn simulate(
    arrival_rate: f64,
    service_demand: f64,
    servers: u32,
    total_arrivals: u64,
    rng: &mut StdRng,
) -> Option<SimMeasures> {
    if !(arrival_rate > 0.0) || !(service_demand > 0.0) || servers == 0 {
        return None;
    }
    let mu = 1.0 / service_demand;
    let warmup = total_arrivals / 10;
    let measured = total_arrivals.saturating_sub(warmup);
    if measured < BATCHES * 8 {
        return None; // too short for a meaningful batch-means band
    }
    let batch_size = (measured / BATCHES).max(1);

    let mut wait_flags = Batcher::new(batch_size);
    let mut waits = Batcher::new(batch_size);
    // Queue-length batches are time-weighted, segmented by arrival count.
    let mut lq_means = Vec::new();
    let mut lq_area = 0.0;
    let mut lq_duration = 0.0;
    let mut lq_in_batch: u64 = 0;

    let mut in_system: u32 = 0;
    let mut arrivals_seen: u64 = 0;
    while arrivals_seen < total_arrivals {
        let busy = f64::from(in_system.min(servers));
        let total_rate = arrival_rate + busy * mu;
        let dt = -(1.0 - rng.gen::<f64>()).ln() / total_rate;
        if arrivals_seen >= warmup {
            lq_area += f64::from(in_system.saturating_sub(servers)) * dt;
            lq_duration += dt;
        }
        let is_arrival = rng.gen::<f64>() * total_rate < arrival_rate;
        if is_arrival {
            arrivals_seen += 1;
            let waiting = in_system >= servers;
            if arrivals_seen > warmup {
                wait_flags.push(if waiting { 1.0 } else { 0.0 });
                let wait = if waiting {
                    // The arrival leaves the queue after `in_system − n + 1`
                    // service completions, each Exp(n·μ).
                    let stages = in_system - servers + 1;
                    let drain = f64::from(servers) * mu;
                    let mut w = 0.0;
                    for _ in 0..stages.min(100_000) {
                        w += -(1.0 - rng.gen::<f64>()).ln() / drain;
                    }
                    w
                } else {
                    0.0
                };
                waits.push(wait);
                lq_in_batch += 1;
                if lq_in_batch >= batch_size && lq_duration > 0.0 {
                    lq_means.push(lq_area / lq_duration);
                    lq_area = 0.0;
                    lq_duration = 0.0;
                    lq_in_batch = 0;
                }
            }
            in_system = in_system.saturating_add(1);
        } else {
            in_system = in_system.saturating_sub(1);
        }
    }

    Some(SimMeasures {
        wait_probability: wait_flags.estimate()?,
        mean_queue_length: mean_and_se(&lq_means)?,
        mean_waiting_time: waits.estimate()?,
    })
}

/// Acceptance band half-width for one comparison: `σ`-scaled standard
/// error plus a small slack for the deliberate discreteness of batching.
fn band(analytic: f64, estimate: Estimate, sigmas: f64) -> f64 {
    sigmas * estimate.se + 1e-3 + 0.005 * analytic.abs()
}

/// Stations the statistical validation sweeps: `(λ, s, n)`, all stable,
/// spanning light to heavy traffic and the paper's service demands.
const QUEUE_SCENARIOS: &[(f64, f64, u32)] = &[
    (8.0, 1.0, 10),
    (50.0, 0.1, 7),
    (100.0, 0.059, 9),
    (20.0, 0.2, 5),
    (3.0, 0.5, 2),
];

/// Capacity-solver scenarios: `(λ, s, mean-response-time target)`.
const CAPACITY_SCENARIOS: &[(f64, f64, f64)] = &[
    (100.0, 0.1, 0.15),
    (50.0, 0.2, 0.30),
    (200.0, 0.05, 0.06),
    (30.0, 0.3, 0.5),
];

/// Validates one station's analytic measures against a simulation run.
fn check_station(
    report: &mut OracleReport,
    rng: &mut StdRng,
    config: &ConformanceConfig,
    arrival_rate: f64,
    service_demand: f64,
    servers: u32,
) {
    report.count_case();
    let label = format!("λ={arrival_rate} s={service_demand} n={servers}");
    let queue = match MmnQueue::new(arrival_rate, service_demand, servers) {
        Ok(q) => q,
        Err(e) => {
            report.mismatch(format!("{label}: analytic model rejected inputs: {e}"));
            return;
        }
    };
    let analytic = (
        queue.wait_probability(),
        queue.mean_queue_length(),
        queue.mean_waiting_time(),
    );
    let (Ok(c), Ok(lq), Ok(wq)) = analytic else {
        report.mismatch(format!(
            "{label}: analytic measures unavailable for a stable station"
        ));
        return;
    };
    let Some(sim) = simulate(
        arrival_rate,
        service_demand,
        servers,
        config.sim_arrivals,
        rng,
    ) else {
        report.mismatch(format!("{label}: simulation produced no estimate"));
        return;
    };
    let sigmas = config.tolerance_sigmas;
    for (name, analytic_value, estimate) in [
        ("wait probability", c, sim.wait_probability),
        ("mean queue length", lq, sim.mean_queue_length),
        ("mean waiting time", wq, sim.mean_waiting_time),
    ] {
        let delta = (estimate.value - analytic_value).abs();
        let tolerance = band(analytic_value, estimate, sigmas);
        if delta > tolerance {
            report.mismatch(format!(
                "{label}: {name} analytic {analytic_value:.6} vs simulated {:.6} \
                 (se {:.6}, band {tolerance:.6})",
                estimate.value, estimate.se
            ));
        }
    }
}

/// Validates one capacity answer: at `n*` the simulated mean wait meets
/// the target; at `n* − 1` it misses it when the analytic gap is wide
/// enough to resolve.
fn check_capacity(
    report: &mut OracleReport,
    rng: &mut StdRng,
    config: &ConformanceConfig,
    arrival_rate: f64,
    service_demand: f64,
    target: f64,
) {
    report.count_case();
    let label = format!("λ={arrival_rate} s={service_demand} R≤{target}");
    let n_star = match min_instances_for_response_time(arrival_rate, service_demand, target, 10_000)
    {
        Ok(n) => n,
        Err(e) => {
            report.mismatch(format!(
                "{label}: solver failed on a feasible scenario: {e}"
            ));
            return;
        }
    };
    let wait_target = target - service_demand;
    let sigmas = config.tolerance_sigmas;
    let Some(at_star) = simulate(
        arrival_rate,
        service_demand,
        n_star,
        config.sim_arrivals,
        rng,
    ) else {
        report.mismatch(format!(
            "{label}: simulation at n*={n_star} produced no estimate"
        ));
        return;
    };
    let est = at_star.mean_waiting_time;
    if est.value > wait_target + band(wait_target, est, sigmas) {
        report.mismatch(format!(
            "{label}: solver says n*={n_star} meets the target, but simulated mean wait \
             {:.6} exceeds {wait_target:.6} (se {:.6})",
            est.value, est.se
        ));
    }
    // Minimality: n* − 1 must violate the target. An unstable station
    // violates it trivially; a stable one is simulated, and only gaps the
    // run can statistically resolve are asserted.
    if n_star <= 1 {
        return;
    }
    let below = n_star - 1;
    let analytic_wait =
        MmnQueue::new(arrival_rate, service_demand, below).and_then(|q| q.mean_waiting_time());
    let Ok(analytic_wait) = analytic_wait else {
        return; // unstable at n* − 1: target unboundedly missed
    };
    if analytic_wait <= wait_target {
        report.mismatch(format!(
            "{label}: n*−1={below} already meets the target analytically \
             (wait {analytic_wait:.6} ≤ {wait_target:.6}) — n* is not minimal"
        ));
        return;
    }
    let Some(at_below) = simulate(
        arrival_rate,
        service_demand,
        below,
        config.sim_arrivals,
        rng,
    ) else {
        return;
    };
    let est = at_below.mean_waiting_time;
    let tolerance = band(wait_target, est, sigmas);
    if analytic_wait - wait_target > tolerance && est.value < wait_target - tolerance {
        report.mismatch(format!(
            "{label}: n*−1={below} should miss the target, but simulated mean wait \
             {:.6} is below {wait_target:.6} (se {:.6})",
            est.value, est.se
        ));
    }
}

/// Runs the statistical differential: every queue scenario and every
/// capacity scenario must agree with the simulator within its confidence
/// band.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("mmn-microsim");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5111_0000);
    for &(rate, demand, servers) in QUEUE_SCENARIOS {
        check_station(&mut report, &mut rng, config, rate, demand, servers);
    }
    for &(rate, demand, target) in CAPACITY_SCENARIOS {
        check_capacity(&mut report, &mut rng, config, rate, demand, target);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_mm1_closed_form() {
        let mut rng = StdRng::seed_from_u64(7);
        let sim = simulate(8.0, 0.1, 1, 60_000, &mut rng).expect("estimate");
        // M/M/1 at ρ = 0.8: P(wait) = 0.8, Lq = 3.2, Wq = 0.4.
        assert!((sim.wait_probability.value - 0.8).abs() < 0.02, "{sim:?}");
        assert!((sim.mean_queue_length.value - 3.2).abs() < 0.5, "{sim:?}");
        assert!((sim.mean_waiting_time.value - 0.4).abs() < 0.06, "{sim:?}");
    }

    #[test]
    fn degenerate_inputs_yield_no_estimate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate(0.0, 0.1, 1, 1000, &mut rng).is_none());
        assert!(simulate(1.0, 0.0, 1, 1000, &mut rng).is_none());
        assert!(simulate(1.0, 0.1, 0, 1000, &mut rng).is_none());
        assert!(simulate(1.0, 0.1, 1, 10, &mut rng).is_none(), "too short");
    }

    #[test]
    fn quick_profile_run_is_clean() {
        let report = run(&ConformanceConfig::quick());
        assert_eq!(report.cases, 9);
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn batch_means_standard_error_shrinks_with_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let short = simulate(8.0, 1.0, 10, 20_000, &mut rng).expect("short");
        let long = simulate(8.0, 1.0, 10, 200_000, &mut rng).expect("long");
        assert!(long.wait_probability.se < short.wait_probability.se);
    }
}
