//! Knobs for a conformance run.

/// Configuration for a full differential run ([`crate::run_all`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceConfig {
    /// Base seed; each oracle derives its own stream by XORing a constant.
    pub seed: u64,
    /// Number of generated Algorithm 1 grid cases.
    pub algorithm1_cases: usize,
    /// Number of generated FOX ledger replays.
    pub ledger_replays: usize,
    /// Arrivals simulated per M/M/n scenario (before warmup removal).
    pub sim_arrivals: u64,
    /// Width of the micro-simulator's acceptance band, in standard errors.
    pub tolerance_sigmas: f64,
    /// Number of controller crash points in the recovery-equivalence grid.
    pub recovery_crash_points: usize,
    /// Number of generated multi-tenant cluster arbitration histories.
    pub cluster_cases: usize,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            seed: 0x00C0_FFEE,
            algorithm1_cases: 600,
            ledger_replays: 60,
            sim_arrivals: 200_000,
            tolerance_sigmas: 4.0,
            recovery_crash_points: 240,
            cluster_cases: 240,
        }
    }
}

impl ConformanceConfig {
    /// A cheaper profile for CI smoke runs: fewer cases, shorter
    /// simulations, a slightly wider band to keep the false-positive rate
    /// comparable.
    pub fn quick() -> Self {
        ConformanceConfig {
            algorithm1_cases: 120,
            ledger_replays: 20,
            sim_arrivals: 30_000,
            tolerance_sigmas: 5.0,
            recovery_crash_points: 60,
            cluster_cases: 60,
            ..ConformanceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_strictly_cheaper() {
        let full = ConformanceConfig::default();
        let quick = ConformanceConfig::quick();
        assert!(quick.algorithm1_cases < full.algorithm1_cases);
        assert!(quick.ledger_replays < full.ledger_replays);
        assert!(quick.sim_arrivals < full.sim_arrivals);
        assert!(quick.recovery_crash_points < full.recovery_crash_points);
        assert!(quick.cluster_cases < full.cluster_cases);
        assert_eq!(quick.seed, full.seed);
    }
}
