//! Differential-oracle conformance suite for the Chamulteon reproduction.
//!
//! The analytic spine of this codebase — Erlang-C, the Algorithm 1
//! capacity walk, chain-rate propagation, and FOX's billing ledger — is
//! exactly the kind of code whose bugs survive unit tests: every test
//! that encodes the implementation's own arithmetic re-blesses its
//! mistakes. This crate cross-checks the spine against six *independent*
//! oracles that share no code (and deliberately no numerical technique)
//! with the implementation:
//!
//! * [`mmn_sim`] — a seeded discrete-event M/M/n simulator validating the
//!   Erlang-C wait probability, mean queue length, mean waiting time, and
//!   the capacity solver's answers within batch-means confidence bands;
//! * [`algorithm1`] — a brute-force re-derivation of the Algorithm 1
//!   decision pass by naive linear search, asserting bit-level agreement
//!   with both the exact and the cached/incremental decision paths over a
//!   seeded grid of generated applications;
//! * [`fox_ledger`] — a replay of randomized scaling-decision logs
//!   through an independent re-implementation of the FOX policy that
//!   counts billing intervals instead of rounding, asserting exact
//!   agreement on vetoes, lease books, and billed instance-seconds;
//! * [`recovery`] — a crash-recovery differential: over a seeded grid of
//!   crash points inside generated controller scenarios, a controller
//!   restored from its encoded snapshot must continue bit-identically to
//!   the uninterrupted run (targets, FOX billing, degradation log);
//! * [`des_core`] — a statistical differential for the event-driven
//!   simulation core: the DES's measured waiting times, queue lengths and
//!   utilizations must sit inside the micro-simulator's batch-means
//!   confidence bands, and the hybrid fluid regime must reproduce the
//!   analytic M/M/n response-time law while conserving requests exactly;
//! * [`cluster`] — a multi-tenant arbitration differential: randomized
//!   arbitration histories replayed through an independent naive arbiter
//!   (selection loops, counting billing) and through a policy-blind
//!   replay of the raw event log, asserting verdict agreement, the
//!   budget invariant at every event, and bit-exact per-tenant billed
//!   ledgers with warm-pool transfers attributed to their origin.
//!
//! `chamulteon-exp conformance` runs all six and emits the verdict as
//! JSON (see [`report::ConformanceReport::to_json`]).

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod algorithm1;
pub mod cluster;
pub mod config;
pub mod des_core;
pub mod fox_ledger;
pub mod mmn_sim;
pub mod recovery;
pub mod report;

pub use config::ConformanceConfig;
pub use report::{ConformanceReport, OracleReport};

/// Runs every oracle and collects the combined verdict.
pub fn run_all(config: &ConformanceConfig) -> ConformanceReport {
    ConformanceReport {
        oracles: vec![
            algorithm1::run(config),
            fox_ledger::run(config),
            mmn_sim::run(config),
            recovery::run(config),
            des_core::run(config),
            cluster::run(config),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_is_clean_and_counts_every_oracle() {
        let report = run_all(&ConformanceConfig::quick());
        assert_eq!(report.oracles.len(), 6);
        assert!(report.passed(), "{}", report.to_json());
        assert!(report.total_cases() >= 120, "{}", report.total_cases());
    }
}
