//! Brute-force Algorithm 1 oracle.
//!
//! Re-derives the paper's per-service capacity decision by naive linear
//! search over `n` straight from the formulas — no [`ErlangSweep`],
//! no [`CapacityCache`], no closed-form `ceil` — and asserts **bit-level
//! agreement** with `core`'s exact and cached decision paths across a
//! seeded grid of generated topologies, demands, SLAs, and band
//! configurations.
//!
//! The only tolerance the oracle shares with the implementation is the
//! *documented* `1e-9` integer-boundary snap of the utilization solver
//! (`ceil(λ·D/ρ)` with values within `1e-9` of an integer treated as that
//! integer); everything else is independently re-expressed.
//!
//! [`ErlangSweep`]: chamulteon_queueing::ErlangSweep
//! [`CapacityCache`]: chamulteon_queueing::CapacityCache

use crate::config::ConformanceConfig;
use crate::report::OracleReport;
use chamulteon::algorithm::{proactive_decisions, proactive_decisions_cached};
use chamulteon::ChamulteonConfig;
use chamulteon_perfmodel::{ApplicationModel, ApplicationModelBuilder, TopologyFamily};
use chamulteon_queueing::CapacityCache;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The paper's while-loop, literally: grow `n` from 1 until the
/// utilization `ρ = λ·D/n` no longer exceeds the target, honoring the
/// solver's documented `1e-9` integer-boundary snap. Degenerate-input
/// policy mirrors the spec: non-positive load needs one instance, an
/// invalid target means full utilization.
pub fn naive_min_instances_for_utilization(
    arrival_rate: f64,
    service_demand: f64,
    target_utilization: f64,
) -> u32 {
    if !(arrival_rate > 0.0) || !(service_demand > 0.0) {
        return 1;
    }
    let target = if target_utilization.is_finite() && target_utilization > 0.0 {
        target_utilization.min(1.0)
    } else {
        1.0
    };
    let raw = arrival_rate * service_demand / target;
    let mut n: u32 = 1;
    while f64::from(n) < raw - 1e-9 {
        if n == u32::MAX {
            break;
        }
        n = n.saturating_add(1);
    }
    n
}

/// Naive re-derivation of the full Algorithm 1 pass
/// ([`proactive_decisions`]) for one point in time: walk the services in
/// index order (the generated topologies are index-topological by
/// construction), apply the band check and the naive sizing loop, clamp
/// into the model bounds, and forward the capacity-throttled rate.
pub fn oracle_decisions(
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    let n = model.service_count();
    let demands: Vec<f64> = (0..n)
        .map(|i| {
            estimated_demands
                .get(i)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| model.service(i).nominal_demand())
        })
        .collect();
    let mut targets: Vec<u32> = (0..n)
        .map(|i| {
            current_instances
                .get(i)
                .copied()
                .unwrap_or_else(|| model.service(i).initial_instances())
                .max(1)
        })
        .collect();
    let mut offered = vec![0.0; n];
    if let Some(slot) = offered.get_mut(model.entry()) {
        *slot = forecast_entry_rate.max(0.0);
    }
    for node in 0..n {
        let spec = model.service(node);
        let rate = offered[node].max(0.0);
        let demand = demands[node].max(0.0);
        let rho = rate * demand / f64::from(targets[node]);
        let desired = if rho >= config.rho_upper || rho < config.rho_lower {
            naive_min_instances_for_utilization(rate, demand, config.rho_target)
        } else {
            targets[node]
        };
        targets[node] = desired.clamp(spec.min_instances(), spec.max_instances());
        let capacity = f64::from(targets[node]) / demands[node];
        let completed = offered[node].min(capacity);
        for &(to, multiplicity) in model.graph().calls_from(node) {
            offered[to] += completed * multiplicity;
        }
    }
    targets
}

/// One generated differential case.
struct Case {
    model: ApplicationModel,
    entry_rate: f64,
    estimated_demands: Vec<f64>,
    current: Vec<u32>,
    config: ChamulteonConfig,
}

/// Draws one case. Half the grid uses the original ad-hoc shape (a 1–5
/// service chain spine plus random skip edges); the other half draws one
/// of the perfmodel [`TopologyFamily`] generators (chain, fan, diamond,
/// scale-free) at 2–8 services, so every structural family the graph-scale
/// work targets is oracle-covered. Both kinds are index-topological by
/// construction, which is what lets [`oracle_decisions`] walk plain index
/// order. The rest of the case is random demands/bounds/current counts, a
/// valid `ρ_lower < ρ_target < ρ_upper` band, and an entry rate that every
/// few cases is crafted to land `λ·D/ρ_target` exactly on an integer — the
/// float boundary where a naive search and a `ceil` most easily diverge.
fn generate_case(rng: &mut StdRng) -> Option<Case> {
    let model = if rng.gen_bool(0.5) {
        let family = TopologyFamily::ALL[rng.gen_range(0..TopologyFamily::ALL.len())];
        let n = rng.gen_range(2..=8usize);
        let topology_seed = rng.next_u64();
        chamulteon_perfmodel::topology::model(family, n, topology_seed).ok()?
    } else {
        let services = rng.gen_range(1..=5usize);
        let mut builder = ApplicationModelBuilder::new();
        for i in 0..services {
            let demand = rng.gen_range(0.01..0.4);
            let max = rng.gen_range(50..=400u32);
            let initial = rng.gen_range(1..=10u32);
            builder = builder.service(format!("s{i}"), demand, 1, max, initial);
        }
        // Chain spine keeps every service reachable; skip edges add fan-out.
        for i in 1..services {
            let multiplicity = [0.5, 1.0, 1.0, 1.5, 2.0][rng.gen_range(0..5usize)];
            builder = builder.call(format!("s{}", i - 1), format!("s{i}"), multiplicity);
            if i >= 2 && rng.gen_bool(0.3) {
                let from = rng.gen_range(0..i - 1);
                builder = builder.call(format!("s{from}"), format!("s{i}"), 0.5);
            }
        }
        builder.entry("s0").build().ok()?
    };
    let services = model.service_count();
    let demands: Vec<f64> = model
        .services()
        .iter()
        .map(chamulteon_perfmodel::ServiceSpec::nominal_demand)
        .collect();

    let rho_target = rng.gen_range(0.35..0.9);
    let config = ChamulteonConfig {
        rho_target,
        rho_upper: (rho_target + rng.gen_range(0.05..0.3)).min(0.99),
        rho_lower: rho_target * rng.gen_range(0.3..0.9),
        ..ChamulteonConfig::default()
    };

    let entry_rate = match rng.gen_range(0..10u32) {
        0 => 0.0,
        1 => {
            // Exact-boundary craft: make raw = λ·D/ρ_target an integer.
            let k = f64::from(rng.gen_range(1..=50u32));
            k * rho_target / demands[0]
        }
        _ => rng.gen_range(0.0..500.0),
    };

    let estimated_demands = match rng.gen_range(0..3u32) {
        0 => Vec::new(), // fall back to nominal demands
        1 => demands
            .iter()
            .map(|d| d * rng.gen_range(0.5..1.5))
            .collect(),
        _ => demands
            .iter()
            .map(|d| {
                // Some estimates are garbage; both paths must fall back.
                if rng.gen_bool(0.2) {
                    [f64::NAN, 0.0, -1.0][rng.gen_range(0..3usize)]
                } else {
                    *d
                }
            })
            .collect(),
    };

    let current = (0..services).map(|_| rng.gen_range(1..=40u32)).collect();
    Some(Case {
        model,
        entry_rate,
        estimated_demands,
        current,
        config,
    })
}

/// Runs the differential grid: for every generated case the naive oracle,
/// the exact solver path, and the cached solver path (one shared cache
/// across the whole grid, so memoized answers are cross-checked too) must
/// return identical target vectors.
pub fn run(config: &ConformanceConfig) -> OracleReport {
    let mut report = OracleReport::new("algorithm1");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA160_0001);
    let cache = CapacityCache::new();
    for case_index in 0..config.algorithm1_cases {
        let Some(case) = generate_case(&mut rng) else {
            report.mismatch(format!("case {case_index}: model generation failed"));
            continue;
        };
        report.count_case();
        let expected = oracle_decisions(
            &case.model,
            case.entry_rate,
            &case.estimated_demands,
            &case.current,
            &case.config,
        );
        let exact = proactive_decisions(
            &case.model,
            case.entry_rate,
            &case.estimated_demands,
            &case.current,
            &case.config,
        );
        let cached = proactive_decisions_cached(
            &cache,
            &case.model,
            case.entry_rate,
            &case.estimated_demands,
            &case.current,
            &case.config,
        );
        if exact != expected {
            report.mismatch(format!(
                "case {case_index}: exact path {exact:?} != oracle {expected:?} \
                 (rate {:.6}, services {}, rho_target {:.4})",
                case.entry_rate,
                case.model.service_count(),
                case.config.rho_target
            ));
        }
        if cached != expected {
            report.mismatch(format!(
                "case {case_index}: cached path {cached:?} != oracle {expected:?} \
                 (rate {:.6}, services {}, rho_target {:.4})",
                case.entry_rate,
                case.model.service_count(),
                case.config.rho_target
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_solver_matches_closed_form_on_known_points() {
        use chamulteon_queueing::capacity::min_instances_for_utilization;
        for &(rate, demand, target) in &[
            (200.0, 0.1, 0.8),
            (80.0, 0.1, 0.8), // exact boundary: 10 instances
            (85.0, 0.1, 0.8),
            (17.0, 0.059, 0.85),
            (0.0, 0.1, 0.8),
            (100.0, 0.1, -0.5), // invalid target => full utilization
            (100.0, 0.1, f64::NAN),
        ] {
            assert_eq!(
                naive_min_instances_for_utilization(rate, demand, target),
                min_instances_for_utilization(rate, demand, target),
                "λ={rate} D={demand} ρ={target}"
            );
        }
    }

    #[test]
    fn oracle_matches_paper_benchmark_decision() {
        let model = ApplicationModel::paper_benchmark();
        let config = ChamulteonConfig::default();
        let oracle = oracle_decisions(&model, 100.0, &[0.059, 0.1, 0.04], &[1, 1, 1], &config);
        assert_eq!(oracle, vec![10, 17, 7]);
    }

    #[test]
    fn small_grid_is_clean() {
        let config = ConformanceConfig {
            algorithm1_cases: 100,
            ..ConformanceConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.cases, 100);
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
