//! Property-based tests for the forecasting crate.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_forecast::{
    decompose_additive, mase, ArForecaster, DriftForecaster, Forecaster, HoltForecaster,
    HoltWintersForecaster, MeanForecaster, NaiveForecaster, SeasonalNaiveForecaster, SesForecaster,
    TelescopeForecaster, TimeSeries,
};
use proptest::prelude::*;

fn finite_series(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10_000.0, min_len..max_len)
}

fn all_methods() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(NaiveForecaster),
        Box::new(SeasonalNaiveForecaster::new(4)),
        Box::new(DriftForecaster),
        Box::new(MeanForecaster::new()),
        Box::new(SesForecaster::default()),
        Box::new(HoltForecaster::default()),
        Box::new(HoltWintersForecaster::with_period(4).unwrap()),
        Box::new(ArForecaster::default()),
        Box::new(TelescopeForecaster::default()),
    ]
}

proptest! {
    /// Every method returns exactly `horizon` finite, non-negative values
    /// on any sufficiently long non-negative history.
    #[test]
    fn forecasts_have_requested_length_and_are_nonnegative(
        values in finite_series(20, 120),
        horizon in 1usize..30,
    ) {
        let ts = TimeSeries::from_values(60.0, values).unwrap();
        for method in all_methods() {
            let fc = method
                .forecast(&ts, horizon)
                .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
            prop_assert_eq!(fc.values().len(), horizon, "{}", method.name());
            for &v in fc.values() {
                prop_assert!(v.is_finite(), "{} produced non-finite", method.name());
                prop_assert!(v >= 0.0, "{} produced negative", method.name());
            }
        }
    }

    /// Decomposition reconstructs the input exactly.
    #[test]
    fn decomposition_reconstructs(values in finite_series(24, 100), period in 2usize..6) {
        prop_assume!(values.len() >= 2 * period);
        let ts = TimeSeries::from_values(1.0, values.clone()).unwrap();
        let d = decompose_additive(&ts, period).unwrap();
        let rec = d.reconstruct();
        for (a, b) in rec.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// MASE is non-negative whenever it is defined.
    #[test]
    fn mase_nonnegative(
        history in finite_series(3, 50),
        actual in finite_series(1, 20),
        forecast in finite_series(1, 20),
    ) {
        let m = mase(&history, &actual, &forecast, 1);
        if m.is_finite() {
            prop_assert!(m >= 0.0);
        }
    }

    /// Splitting a series and rejoining the values loses nothing.
    #[test]
    fn split_preserves_values(values in finite_series(2, 60), frac in 0.0f64..1.0) {
        let ts = TimeSeries::from_values(1.0, values.clone()).unwrap();
        let at = ((values.len() as f64) * frac) as usize;
        let (head, tail) = ts.split_at(at);
        let mut joined = head.values().to_vec();
        joined.extend_from_slice(tail.values());
        prop_assert_eq!(joined, values);
        // Tail timestamps continue seamlessly.
        prop_assert_eq!(tail.start(), head.end());
    }

    /// Seasonal naive on an exactly periodic series is exact.
    #[test]
    fn seasonal_naive_exact_on_periodic(period in 2usize..8, reps in 3usize..8, horizon in 1usize..16) {
        let pattern: Vec<f64> = (0..period).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let values: Vec<f64> = (0..period * reps).map(|t| pattern[t % period]).collect();
        let ts = TimeSeries::from_values(1.0, values).unwrap();
        let fc = SeasonalNaiveForecaster::new(period).forecast(&ts, horizon).unwrap();
        for (h, &v) in fc.values().iter().enumerate() {
            prop_assert_eq!(v, pattern[(period * reps + h) % period]);
        }
    }
}
