//! Forecast accuracy measures.
//!
//! The paper's drift detection and the "trustable" test of the conflict
//! resolution both use the **mean absolute scaled error** (MASE, Hyndman &
//! Koehler 2006): the mean absolute forecast error scaled by the in-sample
//! mean absolute error of the one-step naive forecast. MASE < 1 means the
//! forecast beats the naive method.

/// Mean absolute error between `actual` and `forecast`, over the common
/// prefix length. Returns NaN if either slice is empty.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    let n = actual.len().min(forecast.len());
    if n == 0 {
        return f64::NAN;
    }
    actual
        .iter()
        .zip(forecast)
        .take(n)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / n as f64
}

/// Root mean squared error over the common prefix length. NaN if empty.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    let n = actual.len().min(forecast.len());
    if n == 0 {
        return f64::NAN;
    }
    (actual
        .iter()
        .zip(forecast)
        .take(n)
        .map(|(a, f)| (a - f) * (a - f))
        .sum::<f64>()
        / n as f64)
        .sqrt()
}

/// Symmetric mean absolute percentage error in percent (0–200). Pairs where
/// both values are zero contribute zero error. NaN if empty.
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    let n = actual.len().min(forecast.len());
    if n == 0 {
        return f64::NAN;
    }
    let sum: f64 = actual
        .iter()
        .zip(forecast)
        .take(n)
        .map(|(a, f)| {
            let denom = a.abs() + f.abs();
            if denom <= f64::EPSILON {
                0.0
            } else {
                2.0 * (a - f).abs() / denom
            }
        })
        .sum();
    100.0 * sum / n as f64
}

/// Mean absolute scaled error.
///
/// `history` is the training series used to compute the scaling factor: the
/// in-sample MAE of the seasonal-naive forecast at lag `season` (use
/// `season = 1` for the plain naive scaling). `actual` and `forecast` are
/// the out-of-sample observations and predictions.
///
/// Returns NaN when any input is empty or the history is shorter than
/// `season + 1`; returns infinity when the history is constant (naive error
/// zero) but the forecast errs.
///
/// # Examples
///
/// ```
/// use chamulteon_forecast::mase;
///
/// let history = [1.0, 2.0, 3.0, 4.0];
/// // Perfect forecast => MASE 0.
/// assert_eq!(mase(&history, &[5.0, 6.0], &[5.0, 6.0], 1), 0.0);
/// ```
pub fn mase(history: &[f64], actual: &[f64], forecast: &[f64], season: usize) -> f64 {
    let n = actual.len().min(forecast.len());
    let season = season.max(1);
    if n == 0 || history.len() <= season {
        return f64::NAN;
    }
    let scale: f64 = history
        .windows(season + 1)
        .map(|w| (w[season] - w[0]).abs())
        .sum::<f64>()
        / (history.len() - season) as f64;
    let err = mae(actual, forecast);
    if scale <= f64::EPSILON {
        return if err <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        };
    }
    err / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse_basic() {
        assert_eq!(mae(&[1.0, 2.0], &[1.0, 4.0]), 1.0);
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
        assert!(mae(&[], &[]).is_nan());
        assert!(rmse(&[1.0], &[]).is_nan());
    }

    #[test]
    fn mae_uses_common_prefix() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[2.0]), 1.0);
    }

    #[test]
    fn smape_bounds_and_zero_handling() {
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
        // Maximal disagreement hits 200%.
        assert!((smape(&[1.0], &[-1.0]) - 200.0).abs() < 1e-9);
        let s = smape(&[10.0, 20.0], &[11.0, 19.0]);
        assert!(s > 0.0 && s < 20.0);
    }

    #[test]
    fn mase_perfect_forecast_is_zero() {
        assert_eq!(mase(&[1.0, 3.0, 2.0, 5.0], &[4.0], &[4.0], 1), 0.0);
    }

    #[test]
    fn mase_equals_one_for_naive_level_error() {
        // History walks by 1 each step => naive in-sample MAE = 1.
        let history = [0.0, 1.0, 2.0, 3.0, 4.0];
        // Forecast off by exactly 1 on average => MASE = 1.
        let m = mase(&history, &[10.0, 10.0], &[9.0, 11.0], 1);
        assert!((m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mase_seasonal_scaling() {
        // Period-2 history that repeats exactly => seasonal naive error 0,
        // so any forecast error gives infinite MASE.
        let history = [1.0, 9.0, 1.0, 9.0, 1.0, 9.0];
        assert_eq!(mase(&history, &[1.0], &[2.0], 2), f64::INFINITY);
        assert_eq!(mase(&history, &[1.0], &[1.0], 2), 0.0);
    }

    #[test]
    fn mase_degenerate_inputs() {
        assert!(mase(&[1.0], &[1.0], &[1.0], 1).is_nan());
        assert!(mase(&[1.0, 2.0], &[], &[], 1).is_nan());
    }

    #[test]
    fn mase_season_zero_treated_as_one() {
        let history = [0.0, 1.0, 2.0, 3.0];
        let a = mase(&history, &[5.0], &[6.0], 0);
        let b = mase(&history, &[5.0], &[6.0], 1);
        assert_eq!(a, b);
    }
}
