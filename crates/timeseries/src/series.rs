//! The equidistant [`TimeSeries`] container.

use crate::error::ForecastError;

/// An equidistantly sampled time series: a sampling step in seconds, an
/// optional start offset, and a vector of finite values.
///
/// All forecasting in this crate operates on `TimeSeries`. The container
/// validates finiteness once at construction so downstream numerics never
/// have to re-check.
///
/// # Examples
///
/// ```
/// use chamulteon_forecast::TimeSeries;
///
/// let ts = TimeSeries::from_values(60.0, vec![1.0, 2.0, 3.0])?;
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.step(), 60.0);
/// assert_eq!(ts.time_at(2), 120.0);
/// # Ok::<(), chamulteon_forecast::ForecastError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    step: f64,
    start: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series starting at time 0 with the given sampling step in
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidStep`] for a non-positive or
    /// non-finite step, and [`ForecastError::NonFiniteValue`] if any value
    /// is NaN or infinite.
    pub fn from_values(step: f64, values: Vec<f64>) -> Result<Self, ForecastError> {
        Self::with_start(step, 0.0, values)
    }

    /// Creates a series whose first observation is at time `start` seconds.
    ///
    /// # Errors
    ///
    /// Same as [`TimeSeries::from_values`]; additionally the start must be
    /// finite.
    pub fn with_start(step: f64, start: f64, values: Vec<f64>) -> Result<Self, ForecastError> {
        if !(step > 0.0) || !step.is_finite() {
            return Err(ForecastError::InvalidStep { step });
        }
        if !start.is_finite() {
            return Err(ForecastError::InvalidStep { step: start });
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(ForecastError::NonFiniteValue { index });
        }
        Ok(TimeSeries {
            step,
            start,
            values,
        })
    }

    /// The sampling step in seconds.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The time of the first observation in seconds.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// The observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The timestamp of observation `index` in seconds.
    pub fn time_at(&self, index: usize) -> f64 {
        self.start + self.step * index as f64
    }

    /// The timestamp one step past the last observation — where the next
    /// appended value would land.
    pub fn end(&self) -> f64 {
        self.time_at(self.len())
    }

    /// The last observation, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Appends an observation.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::NonFiniteValue`] for NaN/infinite input.
    pub fn push(&mut self, value: f64) -> Result<(), ForecastError> {
        if !value.is_finite() {
            return Err(ForecastError::NonFiniteValue {
                index: self.values.len(),
            });
        }
        self.values.push(value);
        Ok(())
    }

    /// Returns the suffix of the series containing at most the last `n`
    /// observations (the whole series if it is shorter).
    pub fn tail(&self, n: usize) -> TimeSeries {
        let skip = self.values.len().saturating_sub(n);
        TimeSeries {
            step: self.step,
            start: self.time_at(skip),
            values: self.values[skip..].to_vec(),
        }
    }

    /// Splits the series at `index`, returning `(head, tail)`; the tail
    /// keeps correct timestamps. Useful for backtesting.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn split_at(&self, index: usize) -> (TimeSeries, TimeSeries) {
        assert!(index <= self.values.len(), "split index out of bounds");
        let head = TimeSeries {
            step: self.step,
            start: self.start,
            values: self.values[..index].to_vec(),
        };
        let tail = TimeSeries {
            step: self.step,
            start: self.time_at(index),
            values: self.values[index..].to_vec(),
        };
        (head, tail)
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_at(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let ts = TimeSeries::with_start(30.0, 100.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.step(), 30.0);
        assert_eq!(ts.start(), 100.0);
        assert_eq!(ts.time_at(0), 100.0);
        assert_eq!(ts.time_at(2), 160.0);
        assert_eq!(ts.end(), 190.0);
        assert_eq!(ts.last(), Some(3.0));
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(TimeSeries::from_values(0.0, vec![1.0]).is_err());
        assert!(TimeSeries::from_values(-1.0, vec![1.0]).is_err());
        assert!(TimeSeries::from_values(f64::NAN, vec![1.0]).is_err());
        assert!(matches!(
            TimeSeries::from_values(1.0, vec![1.0, f64::NAN]),
            Err(ForecastError::NonFiniteValue { index: 1 })
        ));
        assert!(TimeSeries::from_values(1.0, vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn empty_series_is_valid() {
        let ts = TimeSeries::from_values(1.0, vec![]).unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.last(), None);
        assert_eq!(ts.end(), 0.0);
    }

    #[test]
    fn push_appends_and_validates() {
        let mut ts = TimeSeries::from_values(1.0, vec![1.0]).unwrap();
        ts.push(2.0).unwrap();
        assert_eq!(ts.values(), &[1.0, 2.0]);
        assert!(ts.push(f64::NAN).is_err());
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn tail_keeps_timestamps() {
        let ts = TimeSeries::from_values(10.0, (0..5).map(f64::from).collect()).unwrap();
        let t = ts.tail(2);
        assert_eq!(t.values(), &[3.0, 4.0]);
        assert_eq!(t.start(), 30.0);
        // Longer than the series: the whole thing.
        assert_eq!(ts.tail(100).len(), 5);
    }

    #[test]
    fn split_at_partitions() {
        let ts = TimeSeries::from_values(10.0, (0..6).map(f64::from).collect()).unwrap();
        let (head, tail) = ts.split_at(4);
        assert_eq!(head.values(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tail.values(), &[4.0, 5.0]);
        assert_eq!(tail.start(), 40.0);
    }

    #[test]
    #[should_panic(expected = "split index out of bounds")]
    fn split_past_end_panics() {
        let ts = TimeSeries::from_values(1.0, vec![1.0]).unwrap();
        let _ = ts.split_at(2);
    }

    #[test]
    fn iter_yields_time_value_pairs() {
        let ts = TimeSeries::with_start(5.0, 10.0, vec![7.0, 8.0]).unwrap();
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs, vec![(10.0, 7.0), (15.0, 8.0)]);
    }
}
