//! Forecast drift detection (§III-A1).
//!
//! Chamulteon only re-runs the (relatively expensive) forecaster when the
//! previous forecast has run out of values *or* a configurable drift
//! between the forecast and the recent monitoring data is detected. The
//! drift is measured with MASE: the forecast's absolute error over the
//! elapsed steps, scaled by the in-sample naive error of the history.

use crate::accuracy::mase;

/// MASE-based drift detector comparing a stored forecast against the
/// observations that have arrived since.
///
/// # Examples
///
/// ```
/// use chamulteon_forecast::DriftDetector;
///
/// let detector = DriftDetector::new(1.5);
/// let history = vec![100.0, 102.0, 98.0, 101.0, 99.0, 100.0];
/// // Forecast tracked reality closely: no drift.
/// assert!(!detector.has_drifted(&history, &[100.0, 101.0], &[99.5, 100.5]));
/// // Forecast far off: drift.
/// assert!(detector.has_drifted(&history, &[100.0, 101.0], &[300.0, 320.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDetector {
    threshold: f64,
}

impl Default for DriftDetector {
    /// A threshold of 1.5: the forecast may be up to 50% worse than the
    /// naive method before a re-forecast is triggered.
    fn default() -> Self {
        DriftDetector::new(1.5)
    }
}

impl DriftDetector {
    /// Creates a detector that reports drift when the observed MASE exceeds
    /// `threshold`. Non-finite or non-positive thresholds are clamped to
    /// the default of 1.5.
    pub fn new(threshold: f64) -> Self {
        let threshold = if threshold.is_finite() && threshold > 0.0 {
            threshold
        } else {
            1.5
        };
        DriftDetector { threshold }
    }

    /// The MASE threshold above which drift is reported.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The observed MASE of `forecast` against `actual`, scaled on
    /// `history` (lag-1 naive scaling). NaN when there is not enough data.
    pub fn observed_mase(&self, history: &[f64], actual: &[f64], forecast: &[f64]) -> f64 {
        mase(history, actual, forecast, 1)
    }

    /// Whether the forecast has drifted from reality.
    ///
    /// Returns `false` when there is not enough data to judge (empty
    /// observations or too-short history) — no drift signal is better than
    /// a spurious one, and the time-based re-forecast still acts as a
    /// backstop.
    pub fn has_drifted(&self, history: &[f64], actual: &[f64], forecast: &[f64]) -> bool {
        let m = self.observed_mase(history, actual, forecast);
        m.is_finite() && m > self.threshold || m == f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_never_drifts() {
        let d = DriftDetector::default();
        let history = vec![10.0, 12.0, 9.0, 11.0, 10.0];
        assert!(!d.has_drifted(&history, &[10.5, 11.5], &[10.5, 11.5]));
    }

    #[test]
    fn gross_error_drifts() {
        let d = DriftDetector::default();
        let history = vec![10.0, 12.0, 9.0, 11.0, 10.0];
        assert!(d.has_drifted(&history, &[10.0], &[500.0]));
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let history = vec![10.0, 12.0, 9.0, 11.0, 10.0];
        // In-sample naive MAE = mean(|2|,|−3|,|2|,|−1|) = 2.
        // Forecast error of 3 => MASE 1.5.
        let strict = DriftDetector::new(1.0);
        let lenient = DriftDetector::new(2.0);
        assert!(strict.has_drifted(&history, &[10.0], &[13.0]));
        assert!(!lenient.has_drifted(&history, &[10.0], &[13.0]));
    }

    #[test]
    fn insufficient_data_is_not_drift() {
        let d = DriftDetector::default();
        assert!(!d.has_drifted(&[], &[1.0], &[2.0]));
        assert!(!d.has_drifted(&[1.0], &[1.0], &[2.0]));
        assert!(!d.has_drifted(&[1.0, 2.0, 3.0], &[], &[]));
    }

    #[test]
    fn constant_history_with_error_drifts() {
        // Naive error zero, forecast error nonzero => infinite MASE.
        let d = DriftDetector::default();
        assert!(d.has_drifted(&[5.0; 10], &[5.0], &[6.0]));
        assert!(!d.has_drifted(&[5.0; 10], &[5.0], &[5.0]));
    }

    #[test]
    fn invalid_threshold_clamped() {
        assert_eq!(DriftDetector::new(0.0).threshold(), 1.5);
        assert_eq!(DriftDetector::new(-3.0).threshold(), 1.5);
        assert_eq!(DriftDetector::new(f64::NAN).threshold(), 1.5);
        assert_eq!(DriftDetector::new(2.5).threshold(), 2.5);
    }
}
