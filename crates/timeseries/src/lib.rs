//! Time-series analysis and forecasting for the Chamulteon reproduction.
//!
//! Chamulteon's proactive cycle forecasts the request arrival rate at the
//! user-facing service with **Telescope** (Züfle et al., ITISE 2017), a
//! hybrid decomposition-based method designed for auto-scaling use cases.
//! This crate implements:
//!
//! * [`TimeSeries`] — an equidistant series with a sampling step,
//! * [`stats`] — descriptive statistics, autocorrelation, periodogram and
//!   least-squares helpers,
//! * [`season`] — dominant-frequency detection (periodogram peak confirmed
//!   by the autocorrelation function),
//! * [`decompose`] — additive season/trend/remainder decomposition,
//! * [`methods`] — classical baseline forecasters (naive, seasonal naive,
//!   drift, mean, simple/Holt/Holt-Winters exponential smoothing, AR(p)),
//! * [`telescope`] — the hybrid method used by Chamulteon,
//! * [`accuracy`] — forecast accuracy measures (MASE, sMAPE, RMSE, MAE),
//! * [`drift`] — the MASE-based forecast drift detector (§III-A1) that
//!   decides when a fresh forecast is needed.
//!
//! # Example
//!
//! ```
//! use chamulteon_forecast::{Forecaster, TelescopeForecaster, TimeSeries};
//!
//! // Two days of hourly observations with a daily pattern.
//! let values: Vec<f64> = (0..48)
//!     .map(|h| 100.0 + 40.0 * (h as f64 * std::f64::consts::TAU / 24.0).sin())
//!     .collect();
//! let history = TimeSeries::from_values(3600.0, values)?;
//! let forecast = TelescopeForecaster::default().forecast(&history, 6)?;
//! assert_eq!(forecast.values().len(), 6);
//! # Ok::<(), chamulteon_forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod accuracy;
pub mod decompose;
pub mod drift;
pub mod error;
pub mod methods;
pub mod season;
pub mod series;
pub mod stats;
pub mod telescope;

pub use accuracy::{mae, mase, rmse, smape};
pub use decompose::{decompose_additive, Decomposition};
pub use drift::DriftDetector;
pub use error::ForecastError;
pub use methods::{
    ArForecaster, DriftForecaster, Forecast, Forecaster, HoltForecaster, HoltWintersForecaster,
    MeanForecaster, NaiveForecaster, SeasonalNaiveForecaster, SesForecaster, ThetaForecaster,
};
pub use season::detect_season_length;
pub use series::TimeSeries;
pub use telescope::TelescopeForecaster;
