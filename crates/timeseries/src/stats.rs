//! Descriptive statistics and numeric helpers used by the forecasters.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; 0.0 for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Sample autocorrelation at the given lag, using the standard biased
/// estimator `r(k) = Σ (y_t − ȳ)(y_{t+k} − ȳ) / Σ (y_t − ȳ)²`.
///
/// Returns 0.0 for a constant series, an empty series, or a lag outside
/// `1..len`.
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    let n = values.len();
    if lag == 0 {
        return 1.0;
    }
    if lag >= n {
        return 0.0;
    }
    let m = mean(values);
    let denom: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|t| (values[t] - m) * (values[t + lag] - m))
        .sum();
    num / denom
}

/// Ordinary least-squares fit of `y = intercept + slope·x` over the index
/// axis `x = 0, 1, 2, …`. Returns `(intercept, slope)`.
///
/// A series shorter than 2 yields a flat fit through its mean.
pub fn linear_fit(values: &[f64]) -> (f64, f64) {
    let n = values.len();
    if n < 2 {
        return (mean(values), 0.0);
    }
    let n_f = n as f64;
    let x_mean = (n_f - 1.0) / 2.0;
    let y_mean = mean(values);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in values.iter().enumerate() {
        let dx = i as f64 - x_mean;
        sxy += dx * (y - y_mean);
        sxx += dx * dx;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    (y_mean - slope * x_mean, slope)
}

/// Raw periodogram power at integer frequencies `1..=max_freq` (cycles per
/// series length), computed by direct DFT projection.
///
/// Index `k` of the returned vector holds the power of frequency `k + 1`.
/// The mean is removed first so frequency 0 carries no power.
pub fn periodogram(values: &[f64], max_freq: usize) -> Vec<f64> {
    let n = values.len();
    if n < 4 || max_freq == 0 {
        return Vec::new();
    }
    let m = mean(values);
    let centered: Vec<f64> = values.iter().map(|v| v - m).collect();
    let mut powers = Vec::with_capacity(max_freq);
    for freq in 1..=max_freq {
        let omega = std::f64::consts::TAU * freq as f64 / n as f64;
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &y) in centered.iter().enumerate() {
            let phase = omega * t as f64;
            re += y * phase.cos();
            im += y * phase.sin();
        }
        powers.push((re * re + im * im) / n as f64);
    }
    powers
}

/// Solves the linear system `A·x = b` in place with Gaussian elimination and
/// partial pivoting. Returns `None` for singular (or near-singular) systems.
///
/// Used by the AR(p) least-squares fit; sizes here are tiny (p ≤ ~10), so a
/// dense O(n³) solve is appropriate.
// Index form reads clearer than iterator gymnastics over two rows of the
// same matrix.
#[allow(clippy::needless_range_loop)]
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return None;
    }
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for (k, &xk) in x.iter().enumerate().take(n).skip(row + 1) {
            sum -= a[row][k] * xk;
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < EPS);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < EPS);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 0), 1.0);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[5.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_of_period_two_alternation() {
        // Alternating series: strong negative lag-1, strong positive lag-2.
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&y, 1) < -0.9);
        assert!(autocorrelation(&y, 2) > 0.9);
    }

    #[test]
    fn autocorrelation_out_of_range_lag() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let y: Vec<f64> = (0..20).map(|i| 3.0 + 0.5 * i as f64).collect();
        let (intercept, slope) = linear_fit(&y);
        assert!((intercept - 3.0).abs() < EPS);
        assert!((slope - 0.5).abs() < EPS);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[]), (0.0, 0.0));
        assert_eq!(linear_fit(&[4.0]), (4.0, 0.0));
        let (i, s) = linear_fit(&[2.0, 2.0, 2.0]);
        assert!((i - 2.0).abs() < EPS && s.abs() < EPS);
    }

    #[test]
    fn periodogram_finds_planted_frequency() {
        // 4 cycles over 64 points.
        let y: Vec<f64> = (0..64)
            .map(|t| (std::f64::consts::TAU * 4.0 * t as f64 / 64.0).sin())
            .collect();
        let p = periodogram(&y, 16);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax + 1, 4);
    }

    #[test]
    fn periodogram_short_series_is_empty() {
        assert!(periodogram(&[1.0, 2.0], 4).is_empty());
        assert!(periodogram(&[1.0; 10], 0).is_empty());
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 3; x - y = 1 => x = 2, y = 1.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear_system(a, vec![3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < EPS);
        assert!((x[1] - 1.0).abs() < EPS);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear_system(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < EPS);
        assert!((x[1] - 5.0).abs() < EPS);
    }

    #[test]
    fn solve_rejects_shape_mismatch() {
        let a = vec![vec![1.0, 2.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }
}
