//! Error type shared by all forecasting operations.

use std::error::Error;
use std::fmt;

/// Error returned by time-series and forecasting operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ForecastError {
    /// The series does not contain enough observations for the requested
    /// operation.
    TooShort {
        /// Observations available.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// The sampling step must be strictly positive and finite.
    InvalidStep {
        /// The step value that was passed.
        step: f64,
    },
    /// A value in the series is NaN or infinite.
    NonFiniteValue {
        /// Index of the first offending observation.
        index: usize,
    },
    /// A method parameter is outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// The requested forecast horizon is zero.
    EmptyHorizon,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::TooShort { have, need } => {
                write!(f, "series too short: have {have} observations, need {need}")
            }
            ForecastError::InvalidStep { step } => {
                write!(f, "sampling step must be positive and finite, got {step}")
            }
            ForecastError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
            ForecastError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` out of range, got {value}")
            }
            ForecastError::EmptyHorizon => write!(f, "forecast horizon must be at least 1"),
        }
    }
}

impl Error for ForecastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ForecastError::TooShort { have: 1, need: 2 }
            .to_string()
            .contains("too short"));
        assert!(ForecastError::InvalidStep { step: 0.0 }
            .to_string()
            .contains("step"));
        assert!(ForecastError::EmptyHorizon.to_string().contains("horizon"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForecastError>();
    }
}
