//! Seasonality (dominant-frequency) detection.
//!
//! Telescope first estimates the dominant frequency of the input series and
//! then decomposes along it. We follow the same recipe: pick the strongest
//! periodogram peak whose period fits at least twice into the series, then
//! confirm it with the autocorrelation function so that pure noise is not
//! mistaken for seasonality.

use crate::series::TimeSeries;
use crate::stats::{autocorrelation, linear_fit, periodogram};

/// Minimum autocorrelation at the candidate period for it to count as a
/// real seasonal pattern.
const ACF_CONFIRMATION_THRESHOLD: f64 = 0.2;

/// Detects the dominant season length of a series, in observations.
///
/// Returns `None` when the series is too short (fewer than 8 observations),
/// constant, or shows no periodic structure that the autocorrelation
/// function confirms.
///
/// # Examples
///
/// ```
/// use chamulteon_forecast::{detect_season_length, TimeSeries};
///
/// let values: Vec<f64> = (0..96)
///     .map(|t| 10.0 + (std::f64::consts::TAU * t as f64 / 24.0).sin())
///     .collect();
/// let ts = TimeSeries::from_values(3600.0, values)?;
/// assert_eq!(detect_season_length(&ts), Some(24));
/// # Ok::<(), chamulteon_forecast::ForecastError>(())
/// ```
pub fn detect_season_length(series: &TimeSeries) -> Option<usize> {
    let raw = series.values();
    let n = raw.len();
    if n < 8 {
        return None;
    }
    // Detrend first: a trend concentrates periodogram power at the lowest
    // frequencies and inflates the ACF at every lag, producing spurious
    // season candidates.
    let (intercept, slope) = linear_fit(raw);
    let detrended: Vec<f64> = raw
        .iter()
        .enumerate()
        .map(|(t, &y)| y - intercept - slope * t as f64)
        .collect();
    let values: &[f64] = &detrended;
    // Candidate periods must repeat at least twice => frequency >= 2.
    // Cap the number of candidate frequencies to keep the DFT cheap.
    let max_freq = (n / 2).min(256);
    let powers = periodogram(values, max_freq);
    if powers.is_empty() {
        return None;
    }
    let total_power: f64 = powers.iter().sum();
    if total_power <= f64::EPSILON {
        return None; // constant series
    }
    // Rank frequencies by power, try the top few candidates.
    let mut ranked: Vec<(usize, f64)> = powers
        .iter()
        .copied()
        .enumerate()
        .map(|(i, p)| (i + 1, p))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    for &(freq, power) in ranked.iter().take(5) {
        if freq < 2 {
            continue; // a single cycle is a trend, not a season
        }
        // Require the peak to be meaningful relative to total power.
        if power / total_power < 0.05 {
            break;
        }
        let candidate = (n + freq / 2) / freq; // round(n / freq) in integers
        if candidate < 2 || candidate > n / 2 {
            continue;
        }
        // The integer-frequency periodogram quantizes the period when the
        // series does not span a whole number of cycles; refine by scanning
        // the ACF in a ±20% window around the candidate for its maximum.
        let lo = (candidate * 4 / 5).max(2); // floor(0.8 · candidate)
        let hi = (candidate * 6).div_ceil(5).min(n / 2); // ceil(1.2 · candidate)
        let refined = (lo..=hi)
            .max_by(|&a, &b| autocorrelation(values, a).total_cmp(&autocorrelation(values, b)))
            .unwrap_or(candidate);
        if autocorrelation(values, refined) >= ACF_CONFIRMATION_THRESHOLD {
            return Some(refined);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn detects_planted_period() {
        let values: Vec<f64> = (0..120)
            .map(|t| 50.0 + 10.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        assert_eq!(detect_season_length(&ts(values)), Some(12));
    }

    #[test]
    fn detects_daily_pattern_with_noise() {
        // Deterministic pseudo-noise via a fixed irrational stride.
        let values: Vec<f64> = (0..288)
            .map(|t| {
                let noise = ((t as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                100.0 + 30.0 * (std::f64::consts::TAU * t as f64 / 48.0).sin() + 3.0 * noise
            })
            .collect();
        assert_eq!(detect_season_length(&ts(values)), Some(48));
    }

    #[test]
    fn constant_series_has_no_season() {
        assert_eq!(detect_season_length(&ts(vec![5.0; 100])), None);
    }

    #[test]
    fn short_series_has_no_season() {
        assert_eq!(detect_season_length(&ts(vec![1.0, 2.0, 3.0])), None);
    }

    #[test]
    fn pure_trend_has_no_season() {
        let values: Vec<f64> = (0..100).map(|t| t as f64 * 2.0).collect();
        assert_eq!(detect_season_length(&ts(values)), None);
    }

    #[test]
    fn white_noise_usually_rejected() {
        // Deterministic pseudo-noise; ACF confirmation should reject it.
        let values: Vec<f64> = (0..200)
            .map(|t| ((t as f64 * 78.233).sin() * 43758.5453).fract())
            .collect();
        // No strong confirmation expected; allow None or a weak detection
        // only if ACF genuinely confirms (it should not for this sequence).
        if let Some(period) = detect_season_length(&ts(values.clone())) {
            assert!(autocorrelation(&values, period) >= ACF_CONFIRMATION_THRESHOLD);
        }
    }
}
