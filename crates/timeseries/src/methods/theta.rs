//! The Theta method (Assimakopoulos & Nikolopoulos 2000).
//!
//! Hyndman & Billah (2003) showed the classical Theta(0, 2) method is
//! equivalent to simple exponential smoothing with an added drift of half
//! the series' linear-regression slope — that formulation is implemented
//! here. Theta won the M3 competition and is the strongest *simple*
//! non-seasonal method in most comparisons, which makes it a valuable
//! reference point for the forecast ablation.

use super::{holdout_mase, Forecast, Forecaster};
use crate::error::ForecastError;
use crate::series::TimeSeries;
use crate::stats::linear_fit;

/// Theta(0, 2) forecaster: SES level plus half-slope drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaForecaster {
    /// SES smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
}

impl Default for ThetaForecaster {
    fn default() -> Self {
        ThetaForecaster { alpha: 0.4 }
    }
}

impl ThetaForecaster {
    /// Creates a Theta forecaster with the given SES smoothing factor.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless `0 < α ≤ 1`.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ForecastError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(ThetaForecaster { alpha })
    }
}

impl Forecaster for ThetaForecaster {
    fn name(&self) -> &str {
        "theta"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        let values = history.values();
        if values.len() < 3 {
            return Err(ForecastError::TooShort {
                have: values.len(),
                need: 3,
            });
        }
        // Long-run drift: half the linear-regression slope.
        let (_, slope) = linear_fit(values);
        let drift = slope / 2.0;
        // Short-run level: SES over the raw series.
        let mut level = values[0];
        for &y in &values[1..] {
            level = self.alpha * y + (1.0 - self.alpha) * level;
        }
        let out = (1..=horizon).map(|h| level + drift * h as f64).collect();
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), out, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn constant_series_flat_forecast() {
        let fc = ThetaForecaster::default()
            .forecast(&ts(vec![5.0; 20]), 4)
            .unwrap();
        for &v in fc.values() {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_series_continues_at_half_slope() {
        let line: Vec<f64> = (0..40).map(|t| 10.0 + 2.0 * t as f64).collect();
        let fc = ThetaForecaster::new(0.9)
            .unwrap()
            .forecast(&ts(line), 10)
            .unwrap();
        // Drift is slope/2 = 1 per step.
        let d = fc.values()[9] - fc.values()[0];
        assert!((d - 9.0).abs() < 1e-9, "drift over 9 steps: {d}");
    }

    #[test]
    fn level_tracks_recent_values() {
        // Level shift: the SES level dominates the forecast start.
        let mut values = vec![10.0; 20];
        values.extend(vec![50.0; 20]);
        let fc = ThetaForecaster::default().forecast(&ts(values), 1).unwrap();
        assert!(
            fc.values()[0] > 40.0,
            "level should be near 50, got {}",
            fc.values()[0]
        );
    }

    #[test]
    fn validation() {
        assert!(ThetaForecaster::new(0.0).is_err());
        assert!(ThetaForecaster::new(1.5).is_err());
        assert!(ThetaForecaster::new(f64::NAN).is_err());
        assert!(ThetaForecaster::default()
            .forecast(&ts(vec![1.0, 2.0]), 1)
            .is_err());
        assert!(ThetaForecaster::default()
            .forecast(&ts(vec![1.0, 2.0, 3.0]), 0)
            .is_err());
    }

    #[test]
    fn nonnegative_output() {
        let falling: Vec<f64> = (0..30).map(|t| 30.0 - t as f64).collect();
        let fc = ThetaForecaster::default()
            .forecast(&ts(falling), 40)
            .unwrap();
        assert!(fc.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn reports_holdout_accuracy() {
        let values: Vec<f64> = (0..40).map(|t| 10.0 + t as f64).collect();
        let fc = ThetaForecaster::default().forecast(&ts(values), 5).unwrap();
        assert!(fc.in_sample_mase().is_some());
    }
}
