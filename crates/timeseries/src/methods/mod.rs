//! Forecasting methods.
//!
//! All methods implement the [`Forecaster`] trait: given a history series
//! and a horizon, they return a [`Forecast`] with one value per future
//! step. Each method also reports an in-sample one-step MASE computed by a
//! holdout backtest, which Chamulteon's conflict resolution uses as the
//! *trust* measure for proactive decisions.

mod ar;
mod naive;
mod smoothing;
mod theta;

pub use ar::ArForecaster;
pub use naive::{DriftForecaster, MeanForecaster, NaiveForecaster, SeasonalNaiveForecaster};
pub use smoothing::{HoltForecaster, HoltWintersForecaster, SesForecaster};
pub use theta::ThetaForecaster;

use crate::accuracy::mase;
use crate::error::ForecastError;
use crate::series::TimeSeries;

/// A multi-step-ahead forecast produced by a [`Forecaster`].
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    method: String,
    values: Vec<f64>,
    in_sample_mase: Option<f64>,
}

impl Forecast {
    /// Creates a forecast result. Negative predictions are clamped to zero
    /// — arrival rates cannot be negative.
    pub fn new(method: impl Into<String>, values: Vec<f64>, in_sample_mase: Option<f64>) -> Self {
        let values = values
            .into_iter()
            .map(|v| if v.is_finite() { v.max(0.0) } else { 0.0 })
            .collect();
        Forecast {
            method: method.into(),
            values,
            in_sample_mase,
        }
    }

    /// Name of the method that produced this forecast.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The predicted values, one per future step.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The predicted value at step `h` (0-based), if within the horizon.
    pub fn value_at(&self, h: usize) -> Option<f64> {
        self.values.get(h).copied()
    }

    /// In-sample one-step MASE from a holdout backtest, when the method
    /// computed one. Lower is better; below 1 beats the naive forecast.
    pub fn in_sample_mase(&self) -> Option<f64> {
        self.in_sample_mase
    }
}

/// A forecasting method.
///
/// The trait is object-safe so heterogeneous collections of methods can be
/// evaluated side by side (the forecast-method ablation bench does this).
pub trait Forecaster {
    /// A short human-readable name, e.g. `"holt-winters"`.
    fn name(&self) -> &str;

    /// Produces `horizon` predictions following the end of `history`.
    ///
    /// # Errors
    ///
    /// Implementations return [`ForecastError::TooShort`] when the history
    /// cannot support the method and [`ForecastError::EmptyHorizon`] for a
    /// zero horizon.
    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError>;
}

/// Backtests a forecaster on the tail of `history`: the last
/// `max(1, len/5)` observations are held out, the method is fit on the rest
/// and its holdout MASE (scaled at `season`) is returned.
///
/// Returns `None` when the history is too short to split or the method
/// fails on the shortened series.
pub fn holdout_mase<F: Forecaster + ?Sized>(
    forecaster: &F,
    history: &TimeSeries,
    season: usize,
) -> Option<f64> {
    let n = history.len();
    if n < 8 {
        return None;
    }
    let holdout = (n / 5).max(1).min(n / 2);
    let (train, test) = history.split_at(n - holdout);
    let fc = forecaster.forecast(&train, holdout).ok()?;
    let m = mase(train.values(), test.values(), fc.values(), season.max(1));
    if m.is_nan() {
        None
    } else {
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_clamps_negative_and_nonfinite() {
        let fc = Forecast::new("test", vec![-1.0, 2.0, f64::NAN, f64::INFINITY], None);
        assert_eq!(fc.values(), &[0.0, 2.0, 0.0, 0.0]);
        assert_eq!(fc.method(), "test");
        assert_eq!(fc.value_at(1), Some(2.0));
        assert_eq!(fc.value_at(9), None);
    }

    #[test]
    fn holdout_mase_perfect_method_scores_zero() {
        // A "method" that predicts the exact linear continuation of a line
        // scores zero error on a linear series.
        struct Oracle;
        impl Forecaster for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn forecast(
                &self,
                history: &TimeSeries,
                horizon: usize,
            ) -> Result<Forecast, ForecastError> {
                let last = history.last().unwrap_or(0.0);
                let values = (1..=horizon).map(|h| last + h as f64).collect();
                Ok(Forecast::new("oracle", values, None))
            }
        }
        let line: Vec<f64> = (0..40).map(f64::from).collect();
        let ts = TimeSeries::from_values(1.0, line).unwrap();
        let m = holdout_mase(&Oracle, &ts, 1).unwrap();
        assert!(m < 1e-9);
    }

    #[test]
    fn holdout_mase_too_short_returns_none() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(holdout_mase(&NaiveForecaster, &ts, 1).is_none());
    }

    #[test]
    fn forecaster_trait_is_object_safe() {
        let methods: Vec<Box<dyn Forecaster>> = vec![
            Box::new(NaiveForecaster),
            Box::new(MeanForecaster::default()),
        ];
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        for m in &methods {
            assert!(m.forecast(&ts, 2).is_ok());
        }
    }
}
