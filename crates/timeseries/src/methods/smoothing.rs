//! Exponential-smoothing forecasters: simple (SES), Holt linear trend with
//! optional damping, and additive Holt-Winters.

use super::{holdout_mase, Forecast, Forecaster};
use crate::error::ForecastError;
use crate::series::TimeSeries;
use crate::stats::mean;

fn check_unit_param(name: &'static str, value: f64) -> Result<(), ForecastError> {
    if !(value > 0.0 && value <= 1.0) {
        Err(ForecastError::InvalidParameter { name, value })
    } else {
        Ok(())
    }
}

/// Simple exponential smoothing: flat forecast from the smoothed level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SesForecaster {
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
}

impl Default for SesForecaster {
    fn default() -> Self {
        SesForecaster { alpha: 0.3 }
    }
}

impl SesForecaster {
    /// Creates an SES forecaster with the given smoothing factor.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless `0 < α ≤ 1`.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        check_unit_param("alpha", alpha)?;
        Ok(SesForecaster { alpha })
    }
}

impl Forecaster for SesForecaster {
    fn name(&self) -> &str {
        "ses"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        let values = history.values();
        if values.is_empty() {
            return Err(ForecastError::TooShort { have: 0, need: 1 });
        }
        let mut level = values[0];
        for &y in &values[1..] {
            level = self.alpha * y + (1.0 - self.alpha) * level;
        }
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), vec![level; horizon], m))
    }
}

/// Holt's linear-trend method with optional damping.
///
/// `ŷ_{t+h} = l_t + (φ + φ² + … + φ^h)·b_t`; `φ = 1` gives the undamped
/// classic method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltForecaster {
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ (0, 1]`.
    pub beta: f64,
    /// Damping factor `φ ∈ (0, 1]`.
    pub phi: f64,
}

impl Default for HoltForecaster {
    fn default() -> Self {
        HoltForecaster {
            alpha: 0.4,
            beta: 0.2,
            phi: 0.9,
        }
    }
}

impl HoltForecaster {
    /// Creates a Holt forecaster. Use `phi = 1.0` for the undamped method.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless every factor lies
    /// in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64, phi: f64) -> Result<Self, ForecastError> {
        check_unit_param("alpha", alpha)?;
        check_unit_param("beta", beta)?;
        check_unit_param("phi", phi)?;
        Ok(HoltForecaster { alpha, beta, phi })
    }
}

impl Forecaster for HoltForecaster {
    fn name(&self) -> &str {
        "holt"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        let values = history.values();
        if values.len() < 2 {
            return Err(ForecastError::TooShort {
                have: values.len(),
                need: 2,
            });
        }
        let mut level = values[0];
        let mut trend = values[1] - values[0];
        for &y in &values[1..] {
            let prev_level = level;
            level = self.alpha * y + (1.0 - self.alpha) * (prev_level + self.phi * trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.phi * trend;
        }
        let mut out = Vec::with_capacity(horizon);
        let mut damp_sum = 0.0;
        let mut damp_pow = 1.0;
        for _ in 0..horizon {
            damp_pow *= self.phi;
            damp_sum += damp_pow;
            out.push(level + damp_sum * trend);
        }
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), out, m))
    }
}

/// Additive Holt-Winters: level + trend + additive seasonal component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltWintersForecaster {
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ (0, 1]`.
    pub beta: f64,
    /// Seasonal smoothing factor `γ ∈ (0, 1]`.
    pub gamma: f64,
    /// Season length in observations (≥ 2).
    pub period: usize,
}

impl HoltWintersForecaster {
    /// Creates an additive Holt-Winters forecaster.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless every factor lies
    /// in `(0, 1]` and `period ≥ 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Result<Self, ForecastError> {
        check_unit_param("alpha", alpha)?;
        check_unit_param("beta", beta)?;
        check_unit_param("gamma", gamma)?;
        if period < 2 {
            return Err(ForecastError::InvalidParameter {
                name: "period",
                value: period as f64,
            });
        }
        Ok(HoltWintersForecaster {
            alpha,
            beta,
            gamma,
            period,
        })
    }

    /// Reasonable defaults for a given season length.
    pub fn with_period(period: usize) -> Result<Self, ForecastError> {
        Self::new(0.3, 0.1, 0.2, period)
    }
}

impl Forecaster for HoltWintersForecaster {
    fn name(&self) -> &str {
        "holt-winters"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        let values = history.values();
        let m = self.period;
        if values.len() < 2 * m {
            return Err(ForecastError::TooShort {
                have: values.len(),
                need: 2 * m,
            });
        }
        // Initialization from the first two seasons.
        let first_season_mean = mean(&values[..m]);
        let second_season_mean = mean(&values[m..2 * m]);
        let mut level = first_season_mean;
        let mut trend = (second_season_mean - first_season_mean) / m as f64;
        let mut seasonal: Vec<f64> = values[..m].iter().map(|y| y - first_season_mean).collect();

        for (t, &y) in values.iter().enumerate() {
            let s_idx = t % m;
            let prev_level = level;
            level = self.alpha * (y - seasonal[s_idx]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[s_idx] = self.gamma * (y - level) + (1.0 - self.gamma) * seasonal[s_idx];
        }

        let n = values.len();
        let out: Vec<f64> = (1..=horizon)
            .map(|h| level + trend * h as f64 + seasonal[(n + h - 1) % m])
            .collect();
        let ms = holdout_mase(self, history, m);
        Ok(Forecast::new(self.name(), out, ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn ses_converges_to_constant_level() {
        let fc = SesForecaster::default()
            .forecast(&ts(vec![10.0; 30]), 3)
            .unwrap();
        for v in fc.values() {
            assert!((v - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ses_flat_forecast() {
        let fc = SesForecaster::default()
            .forecast(&ts(vec![1.0, 2.0, 3.0, 4.0]), 5)
            .unwrap();
        let first = fc.values()[0];
        assert!(fc.values().iter().all(|&v| (v - first).abs() < 1e-12));
    }

    #[test]
    fn ses_parameter_validation() {
        assert!(SesForecaster::new(0.0).is_err());
        assert!(SesForecaster::new(1.5).is_err());
        assert!(SesForecaster::new(f64::NAN).is_err());
        assert!(SesForecaster::new(1.0).is_ok());
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let line: Vec<f64> = (0..50).map(|t| 5.0 + 2.0 * t as f64).collect();
        let fc = HoltForecaster::new(0.5, 0.3, 1.0)
            .unwrap()
            .forecast(&ts(line), 3)
            .unwrap();
        // Undamped Holt on a clean line continues it closely.
        for (h, &v) in fc.values().iter().enumerate() {
            let expect = 5.0 + 2.0 * (49 + h + 1) as f64;
            assert!((v - expect).abs() < 1.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn damped_holt_flattens_eventually() {
        let line: Vec<f64> = (0..50).map(|t| 2.0 * t as f64).collect();
        let fc = HoltForecaster::new(0.5, 0.3, 0.8)
            .unwrap()
            .forecast(&ts(line), 50)
            .unwrap();
        let diffs_late = fc.values()[48] - fc.values()[47];
        let diffs_early = fc.values()[1] - fc.values()[0];
        assert!(diffs_late.abs() < diffs_early.abs());
    }

    #[test]
    fn holt_needs_two_points() {
        assert!(HoltForecaster::default()
            .forecast(&ts(vec![1.0]), 1)
            .is_err());
    }

    #[test]
    fn holt_winters_continues_seasonal_pattern() {
        let pattern = [10.0, 20.0, 30.0, 20.0];
        let values: Vec<f64> = (0..64).map(|t| pattern[t % 4]).collect();
        let fc = HoltWintersForecaster::with_period(4)
            .unwrap()
            .forecast(&ts(values), 8)
            .unwrap();
        for (h, &v) in fc.values().iter().enumerate() {
            let expect = pattern[(64 + h) % 4];
            assert!((v - expect).abs() < 2.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn holt_winters_with_trend_and_season() {
        let pattern = [0.0, 8.0, -8.0, 0.0];
        let values: Vec<f64> = (0..80)
            .map(|t| 100.0 + 0.5 * t as f64 + pattern[t % 4])
            .collect();
        let fc = HoltWintersForecaster::with_period(4)
            .unwrap()
            .forecast(&ts(values), 4)
            .unwrap();
        for (h, &v) in fc.values().iter().enumerate() {
            let expect = 100.0 + 0.5 * (80 + h) as f64 + pattern[(80 + h) % 4];
            assert!((v - expect).abs() < 4.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn holt_winters_validation() {
        assert!(HoltWintersForecaster::new(0.3, 0.1, 0.2, 1).is_err());
        assert!(HoltWintersForecaster::new(0.0, 0.1, 0.2, 4).is_err());
        assert!(HoltWintersForecaster::with_period(4)
            .unwrap()
            .forecast(&ts(vec![1.0; 7]), 1)
            .is_err());
    }
}
