//! The simple reference forecasters: naive, seasonal naive, drift, mean.

use super::{holdout_mase, Forecast, Forecaster};
use crate::error::ForecastError;
use crate::series::TimeSeries;
use crate::stats::mean;

fn require_nonempty_horizon(horizon: usize) -> Result<(), ForecastError> {
    if horizon == 0 {
        Err(ForecastError::EmptyHorizon)
    } else {
        Ok(())
    }
}

fn require_len(history: &TimeSeries, need: usize) -> Result<(), ForecastError> {
    if history.len() < need {
        Err(ForecastError::TooShort {
            have: history.len(),
            need,
        })
    } else {
        Ok(())
    }
}

/// Repeats the last observation: `ŷ_{t+h} = y_t`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveForecaster;

impl Forecaster for NaiveForecaster {
    fn name(&self) -> &str {
        "naive"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        require_nonempty_horizon(horizon)?;
        require_len(history, 1)?;
        let Some(last) = history.last() else {
            return Err(ForecastError::TooShort { have: 0, need: 1 });
        };
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), vec![last; horizon], m))
    }
}

/// Repeats the last full season: `ŷ_{t+h} = y_{t+h−m}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalNaiveForecaster {
    /// Season length in observations (≥ 1).
    pub period: usize,
}

impl SeasonalNaiveForecaster {
    /// Creates a seasonal-naive forecaster for the given season length.
    pub fn new(period: usize) -> Self {
        SeasonalNaiveForecaster {
            period: period.max(1),
        }
    }
}

impl Forecaster for SeasonalNaiveForecaster {
    fn name(&self) -> &str {
        "seasonal-naive"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        require_nonempty_horizon(horizon)?;
        require_len(history, self.period)?;
        let values = history.values();
        let n = values.len();
        let out: Vec<f64> = (0..horizon)
            .map(|h| values[n - self.period + (h % self.period)])
            .collect();
        let m = holdout_mase(self, history, self.period);
        Ok(Forecast::new(self.name(), out, m))
    }
}

/// Extrapolates the line through the first and last observation:
/// `ŷ_{t+h} = y_t + h·(y_t − y_1)/(t − 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftForecaster;

impl Forecaster for DriftForecaster {
    fn name(&self) -> &str {
        "drift"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        require_nonempty_horizon(horizon)?;
        require_len(history, 2)?;
        let values = history.values();
        let n = values.len();
        let slope = (values[n - 1] - values[0]) / (n - 1) as f64;
        let last = values[n - 1];
        let out = (1..=horizon).map(|h| last + slope * h as f64).collect();
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), out, m))
    }
}

/// Predicts the mean of a trailing window (the whole series by default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanForecaster {
    /// If set, only the last `window` observations are averaged.
    pub window: Option<usize>,
}

impl MeanForecaster {
    /// Mean of the entire history.
    pub fn new() -> Self {
        MeanForecaster { window: None }
    }

    /// Mean of the last `window` observations.
    pub fn with_window(window: usize) -> Self {
        MeanForecaster {
            window: Some(window.max(1)),
        }
    }
}

impl Forecaster for MeanForecaster {
    fn name(&self) -> &str {
        "mean"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        require_nonempty_horizon(horizon)?;
        require_len(history, 1)?;
        let values = history.values();
        let window = self.window.unwrap_or(values.len()).min(values.len());
        let level = mean(&values[values.len() - window..]);
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), vec![level; horizon], m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn naive_repeats_last() {
        let fc = NaiveForecaster
            .forecast(&ts(vec![1.0, 5.0, 3.0]), 4)
            .unwrap();
        assert_eq!(fc.values(), &[3.0; 4]);
    }

    #[test]
    fn naive_rejects_empty_history_and_horizon() {
        assert!(NaiveForecaster.forecast(&ts(vec![]), 1).is_err());
        assert!(NaiveForecaster.forecast(&ts(vec![1.0]), 0).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_season() {
        let fc = SeasonalNaiveForecaster::new(3)
            .forecast(&ts(vec![9.0, 9.0, 9.0, 1.0, 2.0, 3.0]), 5)
            .unwrap();
        assert_eq!(fc.values(), &[1.0, 2.0, 3.0, 1.0, 2.0]);
    }

    #[test]
    fn seasonal_naive_needs_full_season() {
        assert!(SeasonalNaiveForecaster::new(5)
            .forecast(&ts(vec![1.0, 2.0]), 1)
            .is_err());
    }

    #[test]
    fn seasonal_naive_period_zero_clamped_to_one() {
        let f = SeasonalNaiveForecaster::new(0);
        assert_eq!(f.period, 1);
        let fc = f.forecast(&ts(vec![1.0, 2.0]), 2).unwrap();
        assert_eq!(fc.values(), &[2.0, 2.0]);
    }

    #[test]
    fn drift_extrapolates_line() {
        let fc = DriftForecaster
            .forecast(&ts(vec![0.0, 1.0, 2.0, 3.0]), 3)
            .unwrap();
        assert_eq!(fc.values(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn drift_clamps_negative_projection() {
        // Strong downward drift runs into the zero clamp.
        let fc = DriftForecaster
            .forecast(&ts(vec![10.0, 5.0, 0.0]), 2)
            .unwrap();
        assert_eq!(fc.values(), &[0.0, 0.0]);
    }

    #[test]
    fn mean_uses_window() {
        let history = ts(vec![100.0, 100.0, 1.0, 3.0]);
        let all = MeanForecaster::new().forecast(&history, 1).unwrap();
        assert_eq!(all.values(), &[51.0]);
        let windowed = MeanForecaster::with_window(2)
            .forecast(&history, 1)
            .unwrap();
        assert_eq!(windowed.values(), &[2.0]);
    }

    #[test]
    fn mean_window_larger_than_history_is_fine() {
        let fc = MeanForecaster::with_window(100)
            .forecast(&ts(vec![2.0, 4.0]), 1)
            .unwrap();
        assert_eq!(fc.values(), &[3.0]);
    }

    #[test]
    fn in_sample_mase_populated_on_long_series() {
        let values: Vec<f64> = (0..40).map(|t| (t % 7) as f64).collect();
        let fc = SeasonalNaiveForecaster::new(7)
            .forecast(&ts(values), 3)
            .unwrap();
        assert!(fc.in_sample_mase().is_some());
        // A perfectly periodic series is predicted exactly.
        assert_eq!(fc.in_sample_mase().unwrap(), 0.0);
    }
}
