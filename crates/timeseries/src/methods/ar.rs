//! Autoregressive AR(p) forecaster fit by conditional least squares.
//!
//! Telescope models the decomposition *remainder* with a short
//! autoregression; this is that component. The design matrix is tiny
//! (p ≤ ~10 columns), so a dense normal-equations solve is appropriate.

use super::{holdout_mase, Forecast, Forecaster};
use crate::error::ForecastError;
use crate::series::TimeSeries;
use crate::stats::{mean, solve_linear_system};

/// AR(p) forecaster: `y_t = c + Σ φ_i · y_{t−i} + ε_t`, fit by least
/// squares, iterated forward for multi-step forecasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArForecaster {
    /// Model order `p ≥ 1`.
    pub order: usize,
}

impl Default for ArForecaster {
    fn default() -> Self {
        ArForecaster { order: 3 }
    }
}

impl ArForecaster {
    /// Creates an AR forecaster of the given order.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] for order 0.
    pub fn new(order: usize) -> Result<Self, ForecastError> {
        if order == 0 {
            return Err(ForecastError::InvalidParameter {
                name: "order",
                value: 0.0,
            });
        }
        Ok(ArForecaster { order })
    }

    /// Fits the coefficients `(c, φ_1..φ_p)` on the given values.
    /// Returns `None` when the normal equations are singular (e.g. constant
    /// series), in which case callers should fall back to the mean.
    fn fit(&self, values: &[f64]) -> Option<Vec<f64>> {
        let p = self.order;
        let rows = values.len().checked_sub(p)?;
        if rows < p + 1 {
            return None;
        }
        // Normal equations X'X beta = X'y with X = [1, y_{t-1}, ..., y_{t-p}].
        let dim = p + 1;
        let mut xtx = vec![vec![0.0; dim]; dim];
        let mut xty = vec![0.0; dim];
        for t in p..values.len() {
            let mut x = Vec::with_capacity(dim);
            x.push(1.0);
            for i in 1..=p {
                x.push(values[t - i]);
            }
            let y = values[t];
            for a in 0..dim {
                xty[a] += x[a] * y;
                for b in 0..dim {
                    xtx[a][b] += x[a] * x[b];
                }
            }
        }
        solve_linear_system(xtx, xty)
    }
}

impl Forecaster for ArForecaster {
    fn name(&self) -> &str {
        "ar"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        let values = history.values();
        let need = 2 * self.order + 1;
        if values.len() < need {
            return Err(ForecastError::TooShort {
                have: values.len(),
                need,
            });
        }
        let out = match self.fit(values) {
            Some(beta) => {
                let p = self.order;
                let mut window: Vec<f64> = values[values.len() - p..].to_vec();
                let mut out = Vec::with_capacity(horizon);
                for _ in 0..horizon {
                    let mut pred = beta[0];
                    for i in 1..=p {
                        pred += beta[i] * window[window.len() - i];
                    }
                    // Keep iterated forecasts from exploding on marginally
                    // unstable fits: clamp to a generous band around the
                    // observed range.
                    let hi = values.iter().cloned().fold(f64::MIN, f64::max);
                    let lo = values.iter().cloned().fold(f64::MAX, f64::min);
                    let span = (hi - lo).max(1.0);
                    pred = pred.clamp(lo - 2.0 * span, hi + 2.0 * span);
                    out.push(pred);
                    window.push(pred);
                }
                out
            }
            // Singular fit (constant series): predict the mean.
            None => vec![mean(values); horizon],
        };
        let m = holdout_mase(self, history, 1);
        Ok(Forecast::new(self.name(), out, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn recovers_ar1_process() {
        // y_t = 2 + 0.8 y_{t-1}, deterministic (no noise) converges to 10;
        // start away from the fixed point so the regression has signal.
        let mut values = vec![0.0];
        for _ in 0..60 {
            let prev = *values.last().unwrap();
            values.push(2.0 + 0.8 * prev);
        }
        let model = ArForecaster::new(1).unwrap();
        let beta = model.fit(&values).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6, "c = {}", beta[0]);
        assert!((beta[1] - 0.8).abs() < 1e-6, "phi = {}", beta[1]);
    }

    #[test]
    fn forecast_converges_to_fixed_point() {
        let mut values = vec![0.0];
        for _ in 0..60 {
            let prev = *values.last().unwrap();
            values.push(2.0 + 0.8 * prev);
        }
        let fc = ArForecaster::new(1)
            .unwrap()
            .forecast(&ts(values), 50)
            .unwrap();
        // Long-run forecast approaches 2 / (1 - 0.8) = 10.
        assert!((fc.values()[49] - 10.0).abs() < 0.5);
    }

    #[test]
    fn constant_series_falls_back_to_mean() {
        let fc = ArForecaster::default()
            .forecast(&ts(vec![7.0; 30]), 5)
            .unwrap();
        for &v in fc.values() {
            assert!((v - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_ar2_coefficients() {
        // y_t = 1 + 0.5 y_{t-1} − 0.3 y_{t-2}, seeded off equilibrium so the
        // regressors are not collinear.
        let mut values = vec![10.0, -4.0];
        for t in 2..80 {
            let y = 1.0 + 0.5 * values[t - 1] - 0.3 * values[t - 2];
            values.push(y);
        }
        let model = ArForecaster::new(2).unwrap();
        let beta = model.fit(&values).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-6, "c = {}", beta[0]);
        assert!((beta[1] - 0.5).abs() < 1e-6, "phi1 = {}", beta[1]);
        assert!((beta[2] + 0.3).abs() < 1e-6, "phi2 = {}", beta[2]);
    }

    #[test]
    fn collinear_alternating_series_falls_back_gracefully() {
        // A pure two-level alternation makes [1, y_{t-1}, y_{t-2}] linearly
        // dependent; the fit must not produce garbage — either a singular
        // fallback to the mean or a finite prediction is acceptable.
        let values: Vec<f64> = (0..40)
            .map(|t| if t % 2 == 0 { 5.0 } else { 15.0 })
            .collect();
        let fc = ArForecaster::new(2)
            .unwrap()
            .forecast(&ts(values), 4)
            .unwrap();
        for &v in fc.values() {
            assert!(v.is_finite());
            assert!((0.0..=25.0).contains(&v));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(ArForecaster::new(0).is_err());
        assert!(ArForecaster::new(3)
            .unwrap()
            .forecast(&ts(vec![1.0, 2.0, 3.0]), 1)
            .is_err());
        assert!(ArForecaster::default()
            .forecast(&ts((0..30).map(f64::from).collect()), 0)
            .is_err());
    }

    #[test]
    fn forecasts_never_explode() {
        // Near-unit-root data; iterated forecasts must stay within the clamp.
        let values: Vec<f64> = (0..50).map(|t| t as f64 * 3.0).collect();
        let fc = ArForecaster::new(4)
            .unwrap()
            .forecast(&ts(values), 100)
            .unwrap();
        for &v in fc.values() {
            assert!(v.is_finite());
            assert!(v <= 147.0 + 2.0 * 147.0 + 1.0);
        }
    }
}
