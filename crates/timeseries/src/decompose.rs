//! Additive season/trend/remainder decomposition.
//!
//! The classical decomposition used by Telescope-style hybrids:
//!
//! 1. estimate the trend with a centered moving average of one season
//!    length (with end-point padding so the trend covers the whole series),
//! 2. average the detrended values per seasonal position to get the
//!    seasonal component (normalized to sum to zero),
//! 3. the remainder is what is left.

use crate::error::ForecastError;
use crate::series::TimeSeries;
use crate::stats::mean;

/// The result of an additive decomposition: `y_t = trend_t + seasonal_t +
/// remainder_t`, all three the same length as the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Season length in observations.
    pub period: usize,
    /// Smooth trend component.
    pub trend: Vec<f64>,
    /// Zero-mean seasonal component, periodic with `period`.
    pub seasonal: Vec<f64>,
    /// Remainder (irregular) component.
    pub remainder: Vec<f64>,
}

impl Decomposition {
    /// The seasonal value at a *future* index `len + h` (h ≥ 0), continuing
    /// the periodic pattern.
    pub fn seasonal_at(&self, index: usize) -> f64 {
        if self.seasonal.is_empty() || self.period == 0 {
            return 0.0;
        }
        // Use the last full season as the pattern to continue.
        let n = self.seasonal.len();
        let pattern_start = n - self.period.min(n);
        let offset = (index + self.period - (pattern_start % self.period)) % self.period;
        self.seasonal[pattern_start + offset.min(n - pattern_start - 1)]
    }

    /// Reconstructs the original series values (`trend + seasonal +
    /// remainder`).
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.seasonal)
            .zip(&self.remainder)
            .map(|((t, s), r)| t + s + r)
            .collect()
    }
}

/// Decomposes a series additively along the given season length.
///
/// # Errors
///
/// Returns [`ForecastError::TooShort`] if the series does not contain at
/// least two full seasons, and [`ForecastError::InvalidParameter`] for a
/// period below 2.
///
/// # Examples
///
/// ```
/// use chamulteon_forecast::{decompose_additive, TimeSeries};
///
/// let values: Vec<f64> = (0..48)
///     .map(|t| t as f64 * 0.5 + [0.0, 5.0, -5.0, 0.0][t % 4])
///     .collect();
/// let ts = TimeSeries::from_values(60.0, values)?;
/// let d = decompose_additive(&ts, 4)?;
/// assert_eq!(d.trend.len(), 48);
/// // Seasonal component is zero-mean per construction.
/// let sum: f64 = d.seasonal[..4].iter().sum();
/// assert!(sum.abs() < 1e-9);
/// # Ok::<(), chamulteon_forecast::ForecastError>(())
/// ```
pub fn decompose_additive(
    series: &TimeSeries,
    period: usize,
) -> Result<Decomposition, ForecastError> {
    if period < 2 {
        return Err(ForecastError::InvalidParameter {
            name: "period",
            value: period as f64,
        });
    }
    let values = series.values();
    let n = values.len();
    if n < 2 * period {
        return Err(ForecastError::TooShort {
            have: n,
            need: 2 * period,
        });
    }

    // 1. Centered moving average of window `period` (period-and-a-step for
    //    even periods, i.e. the classical 2×m MA).
    let trend = centered_moving_average(values, period);

    // 2. Seasonal means of the detrended series, per position in the cycle.
    let mut sums = vec![0.0; period];
    let mut counts = vec![0usize; period];
    for (t, (&y, &tr)) in values.iter().zip(&trend).enumerate() {
        sums[t % period] += y - tr;
        counts[t % period] += 1;
    }
    let mut pattern: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Normalize to zero mean so the trend keeps the level.
    let pattern_mean = mean(&pattern);
    for p in &mut pattern {
        *p -= pattern_mean;
    }

    let seasonal: Vec<f64> = (0..n).map(|t| pattern[t % period]).collect();
    let remainder: Vec<f64> = values
        .iter()
        .zip(&trend)
        .zip(&seasonal)
        .map(|((&y, &tr), &s)| y - tr - s)
        .collect();

    Ok(Decomposition {
        period,
        trend,
        seasonal,
        remainder,
    })
}

/// Centered moving average with edge padding: interior points get the full
/// symmetric window (2×m MA for even m), edges reuse the nearest full
/// window value so the trend spans the whole series.
// The even-period branch reads `values` at asymmetric offsets around `t`;
// index form is the clearer notation.
#[allow(clippy::needless_range_loop)]
fn centered_moving_average(values: &[f64], period: usize) -> Vec<f64> {
    let n = values.len();
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    if period % 2 == 1 {
        for (t, slot) in trend.iter_mut().enumerate().take(n - half).skip(half) {
            *slot = mean(&values[t - half..=t + half]);
        }
    } else {
        // Classical 2×m moving average: average of two adjacent m-windows,
        // giving half-weight to the extreme points.
        for t in half..n - half {
            let lo = t - half;
            let hi = t + half; // inclusive index of the extra point
            let mut sum = values[lo] * 0.5 + values[hi] * 0.5;
            for v in &values[lo + 1..hi] {
                sum += v;
            }
            trend[t] = sum / period as f64;
        }
    }
    // Pad the edges with the nearest defined value.
    let first_defined = trend.iter().position(|v| v.is_finite()).unwrap_or(0);
    let last_defined = trend
        .iter()
        .rposition(|v| v.is_finite())
        .unwrap_or(n.saturating_sub(1));
    let first_val = trend.get(first_defined).copied().unwrap_or(mean(values));
    let last_val = trend.get(last_defined).copied().unwrap_or(mean(values));
    for item in trend.iter_mut().take(first_defined) {
        *item = first_val;
    }
    for item in trend.iter_mut().skip(last_defined + 1) {
        *item = last_val;
    }
    trend
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(1.0, values).unwrap()
    }

    #[test]
    fn recovers_planted_components() {
        let season = [10.0, -5.0, -10.0, 5.0];
        let values: Vec<f64> = (0..80)
            .map(|t| 100.0 + 0.25 * t as f64 + season[t % 4])
            .collect();
        let d = decompose_additive(&ts(values.clone()), 4).unwrap();
        // Seasonal pattern recovered (zero-mean version of the planted one).
        for (pos, &expected) in season.iter().enumerate() {
            assert!(
                (d.seasonal[pos] - expected).abs() < 0.5,
                "pos={pos}: {} vs {expected}",
                d.seasonal[pos]
            );
        }
        // Trend is close to the planted line in the interior.
        for t in 10..70 {
            let planted = 100.0 + 0.25 * t as f64;
            assert!((d.trend[t] - planted).abs() < 1.0, "t={t}");
        }
        // Exact reconstruction.
        let rec = d.reconstruct();
        for (a, b) in rec.iter().zip(&values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn component_lengths_match_input() {
        let values: Vec<f64> = (0..30).map(|t| (t % 5) as f64).collect();
        let d = decompose_additive(&ts(values), 5).unwrap();
        assert_eq!(d.trend.len(), 30);
        assert_eq!(d.seasonal.len(), 30);
        assert_eq!(d.remainder.len(), 30);
        assert!(d.trend.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn seasonal_component_is_zero_mean() {
        let values: Vec<f64> = (0..60).map(|t| 50.0 + [3.0, 1.0, -4.0][t % 3]).collect();
        let d = decompose_additive(&ts(values), 3).unwrap();
        let s: f64 = d.seasonal[..3].iter().sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn rejects_short_series_and_bad_period() {
        let values: Vec<f64> = (0..7).map(f64::from).collect();
        assert!(matches!(
            decompose_additive(&ts(values.clone()), 4),
            Err(ForecastError::TooShort { .. })
        ));
        assert!(matches!(
            decompose_additive(&ts(values), 1),
            Err(ForecastError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn odd_period_supported() {
        let values: Vec<f64> = (0..35)
            .map(|t| [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0][t % 7])
            .collect();
        let d = decompose_additive(&ts(values), 7).unwrap();
        // Constant trend, the pattern carries all structure.
        for t in 5..30 {
            assert!(
                (d.trend[t] - 4.0).abs() < 0.01,
                "t={t} trend={}",
                d.trend[t]
            );
        }
    }

    #[test]
    fn seasonal_at_continues_pattern() {
        let values: Vec<f64> = (0..40).map(|t| [2.0, -2.0][t % 2] + 10.0).collect();
        let d = decompose_additive(&ts(values), 2).unwrap();
        // Future indices continue alternating.
        assert!((d.seasonal_at(40) - d.seasonal[38]).abs() < 1e-9);
        assert!((d.seasonal_at(41) - d.seasonal[39]).abs() < 1e-9);
        assert!((d.seasonal_at(42) - d.seasonal[38]).abs() < 1e-9);
    }
}
