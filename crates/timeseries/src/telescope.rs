//! The Telescope-style hybrid forecaster used by Chamulteon's proactive
//! cycle.
//!
//! Telescope (Züfle et al., ITISE 2017) is a decomposition-based hybrid:
//! it detects the dominant frequency, splits the series into season, trend
//! and remainder, forecasts each component with a method suited to it, and
//! recomposes. Our implementation mirrors that structure:
//!
//! 1. **Season detection** — periodogram peak confirmed by the ACF
//!    ([`crate::season::detect_season_length`]).
//! 2. **Season forecast** — the last observed seasonal pattern is continued
//!    (seasonal naive on the seasonal component).
//! 3. **Trend forecast** — damped Holt on the trend component, which reacts
//!    to level shifts but does not extrapolate aggressively (important for
//!    auto-scaling: runaway trend forecasts cause huge over-provisioning).
//! 4. **Remainder forecast** — a short AR model; if the remainder carries
//!    no structure this degenerates to (almost) zero.
//!
//! When no seasonality is detectable the method falls back to damped Holt
//! on the raw series, and for very short histories to the naive forecast —
//! matching the paper's observation that with less than two days of history
//! the forecasts contain "only trend and noise components" (§III-D).

use crate::decompose::decompose_additive;
use crate::error::ForecastError;
use crate::methods::{
    holdout_mase, ArForecaster, Forecast, Forecaster, HoltForecaster, NaiveForecaster,
};
use crate::season::detect_season_length;
use crate::series::TimeSeries;

/// The hybrid decomposition forecaster (Telescope-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelescopeForecaster {
    /// Forecaster applied to the trend component (and the fallback when no
    /// season is found).
    pub trend_method: HoltForecaster,
    /// Order of the AR model applied to the remainder.
    pub remainder_order: usize,
    /// Fixed season length override; when `None` the season is detected.
    pub season_override: Option<usize>,
}

impl Default for TelescopeForecaster {
    fn default() -> Self {
        TelescopeForecaster {
            trend_method: HoltForecaster {
                alpha: 0.4,
                beta: 0.2,
                phi: 0.9,
            },
            remainder_order: 3,
            season_override: None,
        }
    }
}

impl TelescopeForecaster {
    /// Creates a forecaster with a fixed, known season length (e.g. one day
    /// of observations), skipping detection.
    pub fn with_season(period: usize) -> Self {
        TelescopeForecaster {
            season_override: Some(period),
            ..TelescopeForecaster::default()
        }
    }

    /// The season length this forecaster would use for `history`: the
    /// override if set, otherwise the detected one.
    pub fn season_for(&self, history: &TimeSeries) -> Option<usize> {
        match self.season_override {
            Some(p) if p >= 2 && history.len() >= 2 * p => Some(p),
            Some(_) => None,
            None => detect_season_length(history),
        }
    }
}

impl Forecaster for TelescopeForecaster {
    fn name(&self) -> &str {
        "telescope"
    }

    fn forecast(&self, history: &TimeSeries, horizon: usize) -> Result<Forecast, ForecastError> {
        if horizon == 0 {
            return Err(ForecastError::EmptyHorizon);
        }
        if history.is_empty() {
            return Err(ForecastError::TooShort { have: 0, need: 1 });
        }
        // Very short history: naive fallback.
        if history.len() < 8 {
            let fc = NaiveForecaster.forecast(history, horizon)?;
            return Ok(Forecast::new(self.name(), fc.values().to_vec(), None));
        }

        let season = self.season_for(history);
        let values = match season {
            Some(period) => {
                let d = decompose_additive(history, period)?;
                let n = history.len();

                // Trend: damped Holt on the extracted trend.
                let trend_series = TimeSeries::from_values(history.step(), d.trend.clone())?;
                let trend_fc = self
                    .trend_method
                    .forecast(&trend_series, horizon)
                    .or_else(|_| NaiveForecaster.forecast(&trend_series, horizon))?;

                // Remainder: AR(p), falling back to zeros when too short or
                // structureless.
                let remainder_series =
                    TimeSeries::from_values(history.step(), d.remainder.clone())?;
                let remainder_values: Vec<f64> = ArForecaster::new(self.remainder_order)
                    .and_then(|ar| ar.forecast_signed(&remainder_series, horizon))
                    .unwrap_or_else(|_| vec![0.0; horizon]);

                // Season: continue the periodic pattern.
                (0..horizon)
                    .map(|h| {
                        let s = d.seasonal[(n + h) % period];
                        trend_fc.values()[h] + s + remainder_values[h]
                    })
                    .collect()
            }
            None => {
                // No season: damped Holt on the raw series (trend + noise).
                let fc = self
                    .trend_method
                    .forecast(history, horizon)
                    .or_else(|_| NaiveForecaster.forecast(history, horizon))?;
                fc.values().to_vec()
            }
        };

        let m = holdout_mase(self, history, season.unwrap_or(1));
        Ok(Forecast::new(self.name(), values, m))
    }
}

impl ArForecaster {
    /// Like [`Forecaster::forecast`] but without the non-negativity clamp of
    /// [`Forecast::new`] — decomposition remainders are naturally signed.
    fn forecast_signed(
        &self,
        history: &TimeSeries,
        horizon: usize,
    ) -> Result<Vec<f64>, ForecastError> {
        // Re-run the AR logic on a level-shifted series so the clamp in
        // `Forecast::new` cannot bite, then shift back.
        let offset = history
            .values()
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min)
            .min(0.0)
            .abs()
            + 1.0;
        let shifted: Vec<f64> = history.values().iter().map(|v| v + offset).collect();
        let shifted_series = TimeSeries::from_values(history.step(), shifted)?;
        let fc = Forecaster::forecast(self, &shifted_series, horizon)?;
        Ok(fc.values().iter().map(|v| v - offset).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(60.0, values).unwrap()
    }

    fn seasonal_signal(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                100.0
                    + 30.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                    + 0.05 * t as f64
            })
            .collect()
    }

    #[test]
    fn continues_seasonal_signal() {
        let period = 24;
        let values = seasonal_signal(96, period);
        let fc = TelescopeForecaster::default()
            .forecast(&ts(values), period)
            .unwrap();
        for (h, &v) in fc.values().iter().enumerate() {
            let t = 96 + h;
            let expect = 100.0
                + 30.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                + 0.05 * t as f64;
            assert!((v - expect).abs() < 10.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn beats_naive_on_seasonal_data() {
        let period = 24;
        let full = seasonal_signal(120, period);
        let history = ts(full[..96].to_vec());
        let actual = &full[96..120];

        let telescope = TelescopeForecaster::default()
            .forecast(&history, 24)
            .unwrap();
        let naive = NaiveForecaster.forecast(&history, 24).unwrap();

        let err_t = crate::accuracy::mae(actual, telescope.values());
        let err_n = crate::accuracy::mae(actual, naive.values());
        assert!(
            err_t < err_n,
            "telescope MAE {err_t} should beat naive MAE {err_n}"
        );
    }

    #[test]
    fn fixed_season_override_used() {
        let f = TelescopeForecaster::with_season(24);
        let series = ts(seasonal_signal(96, 24));
        assert_eq!(f.season_for(&series), Some(24));
        // Override too long for the history is ignored.
        let short = ts(seasonal_signal(30, 24));
        assert_eq!(
            TelescopeForecaster::with_season(24).season_for(&short),
            None
        );
    }

    #[test]
    fn no_season_falls_back_to_trend_method() {
        let line: Vec<f64> = (0..60).map(|t| 10.0 + 0.5 * t as f64).collect();
        let fc = TelescopeForecaster::default()
            .forecast(&ts(line), 5)
            .unwrap();
        // A damped-Holt continuation keeps rising at first.
        assert!(fc.values()[0] > 38.0);
        assert!(fc.values()[4] >= fc.values()[0]);
    }

    #[test]
    fn short_history_uses_naive() {
        let fc = TelescopeForecaster::default()
            .forecast(&ts(vec![3.0, 4.0, 5.0]), 4)
            .unwrap();
        assert_eq!(fc.values(), &[5.0; 4]);
    }

    #[test]
    fn empty_history_rejected() {
        assert!(TelescopeForecaster::default()
            .forecast(&ts(vec![]), 1)
            .is_err());
        assert!(TelescopeForecaster::default()
            .forecast(&ts(vec![1.0; 20]), 0)
            .is_err());
    }

    #[test]
    fn forecasts_are_nonnegative() {
        // A plunging series must not forecast negative arrival rates.
        let values: Vec<f64> = (0..40).map(|t| (40 - t) as f64 * 2.0).collect();
        let fc = TelescopeForecaster::default()
            .forecast(&ts(values), 30)
            .unwrap();
        for &v in fc.values() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn reports_in_sample_accuracy_on_long_series() {
        let fc = TelescopeForecaster::default()
            .forecast(&ts(seasonal_signal(96, 24)), 10)
            .unwrap();
        let m = fc.in_sample_mase().expect("long series should backtest");
        assert!(m.is_finite());
    }
}
